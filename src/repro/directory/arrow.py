"""Arrow-style spanning-tree directory for mobile objects.

The distributed bucket scheduler must *discover* where each object
currently is.  Its default mechanism probes the object's last-known
position — which the simulation reads from ground truth (an idealization
documented in DESIGN.md).  This module provides the honest alternative in
the tradition the paper builds on (Herlihy & Sun [17], Sharma & Busch
[28], both rooted in the Arrow protocol of Demmer & Herlihy):

* a spanning tree of ``G`` (a shortest-path tree from a chosen root);
* per object, every node holds a *pointer* to the neighbouring tree edge
  leading toward the object's tree position;
* a **find** from any node follows pointers hop by hop and terminates at
  the node the pointers converge on;
* a **move** of the object from ``u`` to ``w`` re-aims the pointers along
  the tree path between them (in deployments this piggybacks on the
  object's own journey; we count those pointer updates as maintenance
  messages).

Invariant (tested, including under hypothesis-generated move sequences):
after any sequence of moves, a find from any source terminates at the
object's current tree home in at most ``diameter_T`` hops.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._types import NodeId, ObjectId, Weight
from repro.errors import GraphError
from repro.network.graph import Graph


class SpanningTree:
    """A shortest-path spanning tree of ``G`` rooted at ``root``.

    Tree paths are what directory messages travel; their total weight
    (the *stretch* relative to shortest paths in ``G``) is the structural
    price of the directory.
    """

    def __init__(self, graph: Graph, root: NodeId = 0) -> None:
        self.graph = graph
        self.root = root
        self.parent: List[Optional[NodeId]] = list(graph.predecessors(root))
        self.parent[root] = None
        self._depth: List[int] = [0] * graph.num_nodes
        order = sorted(graph.nodes(), key=lambda v: graph.distances_from(root)[v])
        self._children: List[List[NodeId]] = [[] for _ in graph.nodes()]
        for v in order:
            p = self.parent[v]
            self._depth[v] = 0 if p is None else self._depth[p] + 1
            if p is not None:
                self._children[p].append(v)

    def neighbors(self, v: NodeId) -> List[NodeId]:
        """Tree neighbours of ``v`` (parent + children)."""
        out = []
        if self.parent[v] is not None:
            out.append(self.parent[v])
        out.extend(self._children[v])
        return out

    def path(self, u: NodeId, w: NodeId) -> List[NodeId]:
        """The unique tree path from ``u`` to ``w`` (inclusive)."""
        up_u: List[NodeId] = [u]
        up_w: List[NodeId] = [w]
        a, b = u, w
        while a != b:
            if self._depth[a] >= self._depth[b]:
                a = self.parent[a]  # type: ignore[assignment]
                up_u.append(a)
            else:
                b = self.parent[b]  # type: ignore[assignment]
                up_w.append(b)
        # up_u ends at the LCA; up_w ends at the LCA too.
        return up_u + up_w[-2::-1]

    def path_weight(self, u: NodeId, w: NodeId) -> Weight:
        """Total edge weight of the tree path (message latency)."""
        p = self.path(u, w)
        return sum(self.graph.neighbors(a)[b] for a, b in zip(p, p[1:]))

    def stretch(self, u: NodeId, w: NodeId) -> float:
        """Tree-path weight over shortest-path distance."""
        d = self.graph.distance(u, w)
        return self.path_weight(u, w) / d if d else 1.0


class ArrowDirectory:
    """Per-object pointer machinery over one spanning tree.

    ``find`` and ``move`` return the traversed paths so callers can charge
    real latencies and message counts.
    """

    def __init__(self, graph: Graph, root: NodeId = 0) -> None:
        self.tree = SpanningTree(graph, root)
        self.graph = graph
        #: pointers[oid][v] = next tree hop toward the object, or v itself
        self._pointers: Dict[ObjectId, Dict[NodeId, NodeId]] = {}
        self.maintenance_messages = 0
        self.find_messages = 0

    # ------------------------------------------------------------------
    def register(self, oid: ObjectId, node: NodeId) -> None:
        """Install pointers for a new object resting at ``node``."""
        if oid in self._pointers:
            raise GraphError(f"object {oid} already registered")
        ptrs: Dict[NodeId, NodeId] = {}
        # Aim every node's pointer along its tree path toward `node`:
        # walking from `node` outward, each visited vertex points back the
        # way we came.
        ptrs[node] = node
        stack = [(node, node)]
        seen = {node}
        while stack:
            v, toward = stack.pop()
            for u in self.tree.neighbors(v):
                if u not in seen:
                    seen.add(u)
                    ptrs[u] = v
                    stack.append((u, v))
        self._pointers[oid] = ptrs

    def home(self, oid: ObjectId) -> NodeId:
        """The node the pointers currently converge on."""
        ptrs = self._pointers[oid]
        for v, nxt in ptrs.items():
            if nxt == v:
                return v
        raise GraphError(f"object {oid}: no sink pointer (corrupt directory)")

    def find(self, oid: ObjectId, source: NodeId) -> List[NodeId]:
        """Follow pointers from ``source``; returns the traversed node
        sequence ending at the directory home of the object."""
        ptrs = self._pointers[oid]
        path = [source]
        v = source
        for _ in range(self.graph.num_nodes + 1):
            nxt = ptrs[v]
            if nxt == v:
                self.find_messages += max(0, len(path) - 1)
                return path
            path.append(nxt)
            v = nxt
        raise GraphError(f"object {oid}: pointer cycle detected")

    def find_latency(self, oid: ObjectId, source: NodeId) -> Weight:
        """Total edge weight a find from ``source`` traverses."""
        path = self.find(oid, source)
        return sum(self.graph.neighbors(a)[b] for a, b in zip(path, path[1:]))

    def move(self, oid: ObjectId, new_node: NodeId) -> List[NodeId]:
        """Re-aim pointers after the object settled at ``new_node``.

        Flips pointers along the tree path from the old home to the new
        one; every flip is one maintenance message (piggybacked on the
        object's journey in a deployment).  Returns the updated path.
        """
        ptrs = self._pointers[oid]
        old = self.home(oid)
        if old == new_node:
            return [old]
        path = self.tree.path(old, new_node)
        for a, b in zip(path, path[1:]):
            ptrs[a] = b
        ptrs[new_node] = new_node
        self.maintenance_messages += len(path) - 1
        return path
