"""Distributed object directories (tracking mobile objects honestly)."""

from repro.directory.arrow import ArrowDirectory, SpanningTree

__all__ = ["ArrowDirectory", "SpanningTree"]
