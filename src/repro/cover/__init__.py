"""Hierarchical sparse covers (substrate for Algorithm 3, Section V)."""

from repro.cover.decomposition import greedy_ball_partition, padded_decomposition
from repro.cover.sparse_cover import Cluster, SparseCover, build_sparse_cover

__all__ = [
    "padded_decomposition",
    "greedy_ball_partition",
    "Cluster",
    "SparseCover",
    "build_sparse_cover",
]
