"""Hierarchical sparse cover (paper Section V, after [14]/[28]).

``H1 = floor(log2 D) + 2`` layers; at layer ``l`` every node needs a *home
cluster* containing its ``(2**l - 1)``-neighborhood.  A layer consists of
``H2 = O(log n)`` *sub-layers*, each a partition of ``G`` into clusters of
weak diameter ``O(2**l log n)``; a node's home cluster at layer ``l`` is
one (the first) sub-layer cluster that pads it.  Each cluster designates a
*leader* node which will host partial buckets for Algorithm 3.

Construction: repeated randomized padded decompositions
(:func:`repro.cover.decomposition.padded_decomposition`).  Nodes still
unpadded after the random rounds get *forced* sub-layers (their pad-ball
carved out verbatim) — this keeps the construction total without breaking
the partition property.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro._types import NodeId, Weight
from repro.errors import CoverError
from repro.network.graph import Graph
from repro.cover.decomposition import greedy_ball_partition, padded_decomposition


@dataclass(frozen=True)
class Cluster:
    """One cluster of the hierarchy.

    ``height`` is the paper's lexicographic pair ``(layer, sublayer)``
    used to order partial buckets in the distributed analysis (Lemma 8).
    """

    layer: int
    sublayer: int
    index: int
    nodes: FrozenSet[NodeId]
    leader: NodeId

    @property
    def height(self) -> Tuple[int, int]:
        return (self.layer, self.sublayer)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes


class SparseCover:
    """The assembled hierarchy with home-cluster lookup."""

    def __init__(
        self,
        graph: Graph,
        layers: List[List[List[Cluster]]],
        home: Dict[Tuple[int, NodeId], Cluster],
    ) -> None:
        self.graph = graph
        self.layers = layers
        self._home = home

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def sublayer_count(self, layer: int) -> int:
        """Number of sub-layers (partitions) at ``layer``."""
        return len(self.layers[layer])

    @property
    def max_sublayers(self) -> int:
        """The paper's ``H2``."""
        return max(len(subs) for subs in self.layers)

    def pad_of_layer(self, layer: int) -> int:
        """The padding radius ``2**layer - 1`` of ``layer``."""
        return (1 << layer) - 1

    def home_cluster(self, node: NodeId, layer: int) -> Cluster:
        """The home cluster of ``node`` at ``layer`` (contains its
        ``(2**layer - 1)``-neighborhood)."""
        return self._home[(layer, node)]

    def lowest_layer_covering(self, node: NodeId, radius: Weight) -> int:
        """Algorithm 3 line 5: smallest layer whose home cluster of
        ``node`` contains the ``radius``-neighborhood."""
        for layer in range(self.num_layers):
            if self.pad_of_layer(layer) >= radius:
                return layer
        return self.num_layers - 1

    def all_clusters(self) -> List[Cluster]:
        """Every cluster across all layers and sub-layers."""
        return [c for subs in self.layers for part in subs for c in part]

    # ------------------------------------------------------------------
    def verify(self) -> List[str]:
        """Check the sparse-cover properties; returns human-readable
        problems (empty = all good).  Exercised by tests and bench E12."""
        problems: List[str] = []
        nodes = set(self.graph.nodes())
        for layer, subs in enumerate(self.layers):
            pad = self.pad_of_layer(layer)
            for si, part in enumerate(subs):
                seen: Set[NodeId] = set()
                for c in part:
                    if c.leader not in c.nodes:
                        problems.append(f"L{layer}/S{si}: leader {c.leader} outside cluster")
                    overlap = seen & c.nodes
                    if overlap:
                        problems.append(f"L{layer}/S{si}: overlap {sorted(overlap)[:4]}")
                    seen |= c.nodes
                if seen != nodes:
                    problems.append(f"L{layer}/S{si}: not a partition (missing {len(nodes - seen)})")
            for v in nodes:
                home = self._home.get((layer, v))
                if home is None:
                    problems.append(f"L{layer}: node {v} has no home cluster")
                    continue
                ball = set(self.graph.ball(v, pad))
                if not ball <= home.nodes:
                    problems.append(f"L{layer}: node {v} pad-ball escapes its home cluster")
        return problems

    def cluster_diameter(self, cluster: Cluster) -> Weight:
        """Weak diameter (distances measured in ``G``)."""
        members = sorted(cluster.nodes)
        best: Weight = 0
        for u in members:
            d = self.graph.distances_from(u)
            best = max(best, max(d[v] for v in members))
        return best


def _leader_of(graph: Graph, nodes: Set[NodeId]) -> NodeId:
    """Member minimising its eccentricity within the cluster (weak)."""
    members = sorted(nodes)
    if len(members) == 1:
        return members[0]
    best, best_ecc = members[0], math.inf
    for u in members:
        d = graph.distances_from(u)
        ecc = max(d[v] for v in members)
        if ecc < best_ecc:
            best, best_ecc = u, ecc
    return best


def build_sparse_cover(
    graph: Graph,
    seed: Optional[int] = None,
    *,
    max_random_sublayers: Optional[int] = None,
    max_forced_sublayers: int = 64,
    construction: str = "mpx",
) -> SparseCover:
    """Build the full hierarchy for ``graph``.

    Layer 0 (pad 0) is the singleton partition.  Any layer whose pad
    reaches the diameter is the single all-nodes cluster.  Intermediate
    layers repeat padded decompositions with carving radius
    ``2**l * ceil(log2(n+1))`` until every node is padded, then force
    sub-layers for stragglers.

    ``construction``: ``"mpx"`` (exponential shifts, weak diameter) or
    ``"greedy"`` (ball carving, strong diameter); both satisfy the
    properties Algorithm 3 consumes (bench E12b compares their quality).
    """
    if construction not in ("mpx", "greedy"):
        raise CoverError(f"unknown cover construction {construction!r}")
    decompose = padded_decomposition if construction == "mpx" else greedy_ball_partition
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    diameter = max(1, graph.diameter())
    h1 = int(math.floor(math.log2(diameter))) + 2
    logn = max(1, math.ceil(math.log2(n + 1)))
    if max_random_sublayers is None:
        max_random_sublayers = 4 * logn

    layers: List[List[List[Cluster]]] = []
    home: Dict[Tuple[int, NodeId], Cluster] = {}

    for layer in range(h1):
        pad = (1 << layer) - 1
        sublayers: List[List[Cluster]] = []
        if pad == 0:
            part = [
                Cluster(layer, 0, i, frozenset({v}), v) for i, v in enumerate(graph.nodes())
            ]
            sublayers.append(part)
            for c in part:
                home[(layer, c.leader)] = c
        elif pad >= diameter:
            whole = Cluster(layer, 0, 0, frozenset(graph.nodes()), _leader_of(graph, set(graph.nodes())))
            sublayers.append([whole])
            for v in graph.nodes():
                home[(layer, v)] = whole
        else:
            radius = (1 << layer) * logn
            unpadded: Set[NodeId] = set(graph.nodes())
            for si in range(max_random_sublayers):
                raw, padded, _ = decompose(graph, radius, pad, rng)
                part = [
                    Cluster(layer, si, i, frozenset(cl), _leader_of(graph, cl))
                    for i, cl in enumerate(raw)
                ]
                sublayers.append(part)
                for c in part:
                    for v in padded & c.nodes:
                        if (layer, v) not in home:
                            home[(layer, v)] = c
                unpadded -= padded
                if not unpadded:
                    break
            forced_rounds = 0
            while unpadded:
                forced_rounds += 1
                if forced_rounds > max_forced_sublayers:
                    raise CoverError(
                        f"layer {layer}: {len(unpadded)} nodes unpadded after "
                        f"{max_random_sublayers} random + {max_forced_sublayers} forced sub-layers"
                    )
                si = len(sublayers)
                taken: Set[NodeId] = set()
                carved: List[Set[NodeId]] = []
                newly_padded: List[NodeId] = []
                for v in sorted(unpadded):
                    ball = set(graph.ball(v, pad))
                    if ball & taken:
                        continue
                    carved.append(ball)
                    taken |= ball
                    newly_padded.append(v)
                rest = set(graph.nodes()) - taken
                part_sets = carved + [{v} for v in sorted(rest)]
                part = [
                    Cluster(layer, si, i, frozenset(cl), _leader_of(graph, cl))
                    for i, cl in enumerate(part_sets)
                ]
                sublayers.append(part)
                for v in newly_padded:
                    for c in part:
                        if v in c.nodes:
                            home[(layer, v)] = c
                            break
                unpadded -= set(newly_padded)
        layers.append(sublayers)
    return SparseCover(graph, layers, home)
