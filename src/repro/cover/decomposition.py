"""Low-diameter padded decompositions (Miller–Peng–Xu style).

A *(radius, pad)-padded decomposition* partitions the nodes into clusters
of weak diameter at most ``2 * radius`` such that each node's ``pad``-ball
lands inside a single cluster with constant probability.  Repeating the
decomposition a logarithmic number of times pads every node — which is how
:mod:`repro.cover.sparse_cover` builds the sub-layers the paper's
Algorithm 3 requires (each sub-layer is a partition of ``G``; every node
has a *home cluster* containing its ``(2**l - 1)``-neighborhood).

The construction: every node draws an exponential shift
``delta_u ~ Exp(lambda)`` truncated at ``radius``; node ``v`` joins the
cluster of the node ``u`` maximising ``delta_u - d(u, v)`` (ties broken by
id).  Shifted distances differ by more than ``2 * pad`` from the runner-up
iff the whole pad-ball joins the same cluster.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro._types import NodeId, Weight
from repro.network.graph import Graph


def padded_decomposition(
    graph: Graph,
    radius: Weight,
    pad: Weight,
    rng: np.random.Generator,
) -> Tuple[List[Set[NodeId]], Set[NodeId], Dict[int, NodeId]]:
    """One randomized partition of ``graph``.

    Returns ``(clusters, padded_nodes, centers)`` where ``clusters`` is a
    partition of the nodes, ``padded_nodes`` are the nodes whose
    ``pad``-ball is entirely inside their own cluster, and ``centers`` maps
    cluster index to its carving center (used as leader seed).

    Cluster *weak* radius is at most ``radius`` by construction (a node
    only joins a center within shifted distance, and shifts are truncated
    at ``radius``).
    """
    n = graph.num_nodes
    lam = max(1e-9, math.log(n + 1) / max(1, radius))
    shifts = np.minimum(rng.exponential(1.0 / lam, size=n), float(radius))
    # For each node, find the best and second-best shifted center.
    best_center = [-1] * n
    best_val = [-math.inf] * n
    second_val = [-math.inf] * n
    for c in range(n):
        d = graph.distances_from(c)
        sc = shifts[c]
        for v in range(n):
            val = sc - d[v]
            if val < -1e-12:  # centers beyond their shift never capture v
                continue
            if val > best_val[v] or (val == best_val[v] and c < best_center[v]):
                second_val[v] = best_val[v]
                best_val[v] = val
                best_center[v] = c
            elif val > second_val[v]:
                second_val[v] = val
    # Every node captures itself with val = shifts[v] >= 0.
    groups: Dict[NodeId, Set[NodeId]] = {}
    for v in range(n):
        groups.setdefault(best_center[v], set()).add(v)
    clusters = [groups[c] for c in sorted(groups)]
    centers = {i: c for i, (c, _) in enumerate(sorted(groups.items()))}
    index_of: Dict[NodeId, int] = {}
    for i, cl in enumerate(clusters):
        for v in cl:
            index_of[v] = i
    padded: Set[NodeId] = set()
    for v in range(n):
        if second_val[v] == -math.inf or best_val[v] - second_val[v] > 2 * pad:
            # Margin criterion is sufficient; verify exactly for safety.
            if _ball_inside(graph, v, pad, clusters[index_of[v]]):
                padded.add(v)
        elif _ball_inside(graph, v, pad, clusters[index_of[v]]):
            padded.add(v)
    return clusters, padded, centers


def _ball_inside(graph: Graph, v: NodeId, pad: Weight, cluster: Set[NodeId]) -> bool:
    if pad <= 0:
        return True
    return all(u in cluster for u in graph.ball(v, pad))


def greedy_ball_partition(
    graph: Graph,
    radius: Weight,
    pad: Weight,
    rng: np.random.Generator,
) -> Tuple[List[Set[NodeId]], Set[NodeId], Dict[int, NodeId]]:
    """Strong-diameter alternative to :func:`padded_decomposition`.

    Repeatedly pick a random unassigned center and carve the ball of
    ``radius`` *within the remaining induced subgraph* (so every cluster
    is connected and its strong diameter is at most ``2 * radius``).
    Padding is evaluated against balls in the full graph, exactly as the
    sparse-cover consumer requires.

    Compared to the exponential-shift construction this gives strong
    (induced-subgraph) diameters — the property the [14]/[28]
    constructions actually provide — at the cost of a weaker padding
    probability for late-carved nodes (measured in bench E12b).
    """
    import heapq as _heapq

    n = graph.num_nodes
    unassigned: Set[NodeId] = set(graph.nodes())
    order = [int(v) for v in rng.permutation(n)]
    clusters: List[Set[NodeId]] = []
    centers: Dict[int, NodeId] = {}
    for center in order:
        if center not in unassigned:
            continue
        # Dijkstra restricted to unassigned nodes.
        dist: Dict[NodeId, Weight] = {center: 0}
        heap: List[Tuple[Weight, NodeId]] = [(0, center)]
        members: Set[NodeId] = set()
        while heap:
            d, u = _heapq.heappop(heap)
            if d > dist.get(u, float("inf")) or d > radius:
                continue
            members.add(u)
            for v, w in graph.neighbors(u).items():
                if v in unassigned and d + w < dist.get(v, float("inf")) and d + w <= radius:
                    dist[v] = d + w
                    _heapq.heappush(heap, (d + w, v))
        centers[len(clusters)] = center
        clusters.append(members)
        unassigned -= members
    index_of: Dict[NodeId, int] = {}
    for i, cl in enumerate(clusters):
        for v in cl:
            index_of[v] = i
    padded = {
        v for v in graph.nodes() if _ball_inside(graph, v, pad, clusters[index_of[v]])
    }
    return clusters, padded, centers
