"""repro — Dynamic Scheduling in Distributed Transactional Memory.

A production-quality reproduction of Busch, Herlihy, Popovic & Sharma,
*Dynamic Scheduling in Distributed Transactional Memory* (IPDPS 2020):
online schedulers for the data-flow DTM model (greedy coloring, bucket
conversion of offline schedulers, and a decentralised bucket scheduler on a
sparse-cover hierarchy), together with the synchronous simulator, topology
library, offline batch schedulers, baselines, workload generators and
lower-bound machinery needed to evaluate them.

Quickstart::

    from repro import GreedyScheduler, Simulator, topologies, workloads

    g = topologies.clique(16)
    wl = workloads.BatchWorkload.uniform(g, num_objects=8, k=2, seed=0)
    sim = Simulator(g, GreedyScheduler(), wl)
    trace = sim.run()
    print(trace.makespan(), trace.max_latency())
"""

from repro._types import DeparturePolicy, NodeId, ObjectId, Time, TxnId, TxnState
from repro.faults import CrashWindow, FaultInjector, FaultPlan, PartitionWindow
from repro.core import (
    BucketScheduler,
    CoordinatedGreedyScheduler,
    DistributedBucketScheduler,
    GreedyScheduler,
    OnlineScheduler,
)
from repro.network import Graph, topologies
from repro.parallel import WorkerPool, pmap, resolve_jobs
from repro.service import ServiceConfig
from repro.sim import (
    DirectTransport,
    ExecutionTrace,
    HopTransport,
    SharedObject,
    SimConfig,
    Simulator,
    Transaction,
    Transport,
    certify_trace,
)
from repro.sim.transactions import TxnSpec

__version__ = "0.1.0"

__all__ = [
    "Graph",
    "topologies",
    "SimConfig",
    "Simulator",
    "Transaction",
    "TxnSpec",
    "SharedObject",
    "ExecutionTrace",
    "certify_trace",
    "Transport",
    "DirectTransport",
    "HopTransport",
    "ServiceConfig",
    "FaultPlan",
    "CrashWindow",
    "PartitionWindow",
    "FaultInjector",
    "WorkerPool",
    "pmap",
    "resolve_jobs",
    "OnlineScheduler",
    "GreedyScheduler",
    "CoordinatedGreedyScheduler",
    "BucketScheduler",
    "DistributedBucketScheduler",
    "NodeId",
    "ObjectId",
    "TxnId",
    "Time",
    "TxnState",
    "DeparturePolicy",
    "__version__",
]
