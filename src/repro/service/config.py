"""ServiceConfig: one frozen value object for every ingestion knob."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro._types import Time
from repro.errors import ServiceError

#: Admission policies understood by :class:`repro.service.admission.AdmissionQueue`.
POLICY_NAMES = ("fifo", "lifo-shed", "deadline-edf", "priority-class")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the ingestion front-end (:mod:`repro.service`).

    Attributes
    ----------
    policy:
        Admission-queue discipline: ``"fifo"`` (reject newcomers when
        full), ``"lifo-shed"`` (admit newest first, displace the oldest
        when full), ``"deadline-edf"`` (earliest absolute deadline
        first, displace the latest-deadline entry for a tighter one),
        or ``"priority-class"`` (highest :attr:`TxnSpec.priority`
        first, displace the lowest-priority entry for a better one).
    queue_cap:
        Bound on the admission queue depth.  The queue never exceeds
        it; overflow is resolved by shedding per ``policy``.
    deadline:
        Relative deadline (steps after submission) stamped onto
        admitted specs that do not already carry an absolute one, or
        ``None`` to leave workload deadlines alone.
    deadline_frac:
        Fraction of deadline-less specs that receive the stamped
        ``deadline`` (seeded coin per submission, drawn in arrival
        order).  ``1.0`` stamps every spec without drawing.
    controller:
        Enable the graceful-degradation controller: admissions are
        metered by a token bucket whose rate tracks ``headroom`` times
        a seeded EWMA of the observed commit rate.  ``False`` admits
        up to ``queue_cap`` specs per step (queue-bound only).
    ewma_alpha:
        Smoothing factor of the commit-rate EWMA in ``(0, 1]``; larger
        reacts faster, smaller resists tail-latency noise.
    headroom:
        Multiplier applied to the EWMA estimate to obtain the admission
        rate.  Slightly above 1 keeps the scheduler probing for spare
        capacity instead of locking in a transient low estimate.
    backpressure_high / backpressure_low:
        Queue-depth hysteresis thresholds as fractions of ``queue_cap``:
        backpressure engages at depth >= ``high * cap`` and releases at
        depth <= ``low * cap`` (the gap prevents flapping).  A second,
        backlog-growth trigger engages when the engine's live backlog
        grows materially over a sampling window and releases when it
        stops growing.
    backpressure_slowdown:
        Multiplier in ``(0, 1]`` applied to the admission rate while
        backpressure is engaged.  Under *sustained* overload the depth
        trigger stays engaged (the bounded queue is always full), so
        steady-state goodput approaches ``headroom * slowdown`` times
        the sustainable commit rate — the default ``1.1 * 0.75 =
        0.825`` keeps degraded goodput above 80% of capacity.
    seed:
        Seed of the service's private RNG (the deadline-stamping coin).
        The controller itself is deterministic given the commit stream.
    """

    policy: str = "fifo"
    queue_cap: int = 64
    deadline: Optional[Time] = None
    deadline_frac: float = 1.0
    controller: bool = True
    ewma_alpha: float = 0.2
    headroom: float = 1.1
    backpressure_high: float = 0.75
    backpressure_low: float = 0.5
    backpressure_slowdown: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical knob combinations with a clear
        :class:`~repro.errors.ServiceError` before they can surface as
        deep engine failures."""
        if self.policy not in POLICY_NAMES:
            raise ServiceError(
                f"unknown admission policy {self.policy!r} "
                f"(choose one of {', '.join(POLICY_NAMES)})"
            )
        if self.queue_cap < 1:
            raise ServiceError(f"queue_cap must be >= 1, got {self.queue_cap}")
        if self.deadline is not None and self.deadline < 1:
            raise ServiceError(f"deadline must be >= 1 step, got {self.deadline}")
        if not (0.0 <= self.deadline_frac <= 1.0):
            raise ServiceError(
                f"deadline_frac must be in [0, 1], got {self.deadline_frac}"
            )
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ServiceError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.headroom <= 0.0:
            raise ServiceError(f"headroom must be > 0, got {self.headroom}")
        if not (0.0 <= self.backpressure_low <= self.backpressure_high <= 1.0):
            raise ServiceError(
                "backpressure thresholds must satisfy "
                "0 <= low <= high <= 1, got "
                f"low={self.backpressure_low}, high={self.backpressure_high}"
            )
        if not (0.0 < self.backpressure_slowdown <= 1.0):
            raise ServiceError(
                f"backpressure_slowdown must be in (0, 1], got "
                f"{self.backpressure_slowdown}"
            )

    def replace(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)
