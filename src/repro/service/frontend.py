"""ServiceFrontEnd: the ingestion runtime bolted onto the engine.

The engine hands every popped arrival spec to :meth:`offer` instead of
generating it immediately, then drains :meth:`admit` once per step; the
front-end decides — deterministically — which specs enter the scheduler
and when, sheds the rest, and cancels admitted transactions whose
deadlines expire mid-flight (:meth:`expire_due` feeds
``Simulator._expire``).

Degradation control: a token bucket meters admissions at ``headroom``
times a seeded EWMA of the observed commit rate, so past the stability
frontier lambda* the scheduler keeps operating near its sustainable
throughput instead of drowning.  Backpressure (queue-depth and
backlog-growth triggers, both with hysteresis) halves the rate again
while the system is visibly behind.

Everything here is picklable so checkpoint/restore (PR 8) captures the
service mid-run: the RNG, the queue, the token bucket, and the deadline
heap all round-trip through ``pickle``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro._types import Time
from repro.service.admission import AdmissionQueue
from repro.service.config import ServiceConfig
from repro.sim.trace import ShedRecord
from repro.sim.transactions import Transaction, TxnSpec

#: Steps between backlog samples for the backlog-growth trigger.
_BACKLOG_WINDOW = 32
#: Live-backlog growth (txns) over one window that engages backpressure.
_BACKLOG_GROWTH = 16


class ServiceFrontEnd:
    """Admission control + deadline tracking for one simulation run.

    Owned by the :class:`~repro.sim.engine.Simulator` when
    ``SimConfig.service`` is set; never shared across runs.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = AdmissionQueue(config.policy, config.queue_cap)
        self._sim = None
        self._seq = 0
        self._rng = random.Random(f"{config.seed}|service|deadline")
        # Same-step pass-through buffer: while nothing is queued and no
        # backpressure is up, offered specs wait here instead of in the
        # sorted queue — admit() (later the same step) admits or spills
        # them, so the buffer never persists across steps.
        self._direct: List[Tuple[int, TxnSpec]] = []
        #: fast-path watermark: below this depth the bucket never binds
        self._fast_cap = max(1, int(config.backpressure_low * config.queue_cap))
        #: next step at which the engine must call admit() even with an
        #: empty queue (backlog-window controller tick) — the engine
        #: skips the call entirely between ticks while idle.
        self._next_check: float = float("-inf")
        # -- controller state ------------------------------------------
        self._ewma: Optional[float] = None  # commits per step
        self._tokens = 0.0
        self._last_t: Optional[Time] = None
        self._commits_since = 0
        self._seen_commit = False
        # -- backpressure state ----------------------------------------
        self._bp_depth = False
        self._bp_growth = False
        self._bp_engaged = False
        self._backlog_mark: Optional[Tuple[Time, int]] = None
        # -- deadline tracking -----------------------------------------
        self._deadline_heap: List[Tuple[Time, int]] = []
        # -- counters --------------------------------------------------
        self.submitted = 0
        self.admitted = 0
        self.shed = 0
        self.shed_by_reason: Dict[str, int] = {}
        self.expired = 0
        self.deadline_commits = 0
        self.queue_peak = 0
        self.backpressure_steps = 0
        self.backpressure_transitions = 0

    # ------------------------------------------------------------------
    # engine wiring
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        self._sim = sim

    def idle(self) -> bool:
        """True when the queue is drained (quiescence gate)."""
        return not (self.queue._entries or self._direct)

    # ------------------------------------------------------------------
    # ingestion path
    # ------------------------------------------------------------------
    def offer(self, spec: TxnSpec, t: Time) -> None:
        """Submit one arriving spec to the front door at step ``t``.

        Stamps a deadline when configured (seeded coin, drawn in
        submission order), then enqueues or sheds per the admission
        policy.  The spec keeps its original ``gen_time``, so queue
        wait counts toward commit latency.
        """
        self.submitted += 1
        seq = self._seq
        self._seq += 1
        deadline = self.config.deadline
        if deadline is not None and spec.deadline is None:
            frac = self.config.deadline_frac
            stamp = frac >= 1.0 or (frac > 0.0 and self._rng.random() < frac)
            if stamp:
                spec = replace(spec, deadline=t + deadline)
        queue = self.queue
        if (not self._bp_engaged and not queue._entries
                and len(self._direct) < self._fast_cap):
            # Keeping up: nothing queued and no pressure, so this spec
            # will be admitted wholesale by this step's admit() — skip
            # the sorted-queue round-trip (policy order is applied at
            # the batch admit).
            self._direct.append((seq, spec))
            depth = len(self._direct)
        else:
            if self._direct:
                self._spill(t)
            for victim, reason in queue.offer(spec, seq):
                self._record_shed(victim, reason, t)
            depth = len(queue._entries)
        if depth > self.queue_peak:
            self.queue_peak = depth
        # No alarm here: the engine always calls admit() later this same
        # step, and admit() schedules the wake-up iff anything is left.

    def admit(self, t: Time) -> List[TxnSpec]:
        """Specs to generate at step ``t``, in admission order.

        Called by the engine once per step (after arrivals were
        offered).  Purges queue entries whose deadline already passed,
        updates the commit-rate EWMA and the backpressure state, then
        pops up to the token bucket's whole-token quota.
        """
        sim = self._sim
        queue = self.queue
        if queue._deadlined:
            for victim in queue.shed_expired(t):
                self._record_shed(victim, "expired-in-queue", t)
        cfg = self.config
        depth = len(queue._entries) + len(self._direct)
        # -- backpressure triggers (every step) ------------------------
        if self._bp_depth:
            if depth <= cfg.backpressure_low * cfg.queue_cap:
                self._bp_depth = False
        elif depth >= cfg.backpressure_high * cfg.queue_cap:
            self._bp_depth = True
        mark = self._backlog_mark
        if mark is None:
            self._backlog_mark = (t, len(sim.live))
            if self._last_t is None:
                self._last_t = t
        elif t - mark[0] >= _BACKLOG_WINDOW:
            self._fold(t)
            backlog = len(sim.live)
            growth = backlog - mark[1]
            if growth > _BACKLOG_GROWTH:
                self._bp_growth = True
            elif growth <= 0:
                self._bp_growth = False
            self._backlog_mark = (t, backlog)
        engaged = self._bp_depth or self._bp_growth
        if engaged != self._bp_engaged:
            self.backpressure_transitions += 1
            self._bp_engaged = engaged
        if engaged:
            self.backpressure_steps += 1
        self._next_check = self._backlog_mark[0] + _BACKLOG_WINDOW
        if depth == 0:
            return []
        # -- admission -------------------------------------------------
        if not engaged and depth < cfg.backpressure_low * cfg.queue_cap:
            # Keeping up: the queue is shallow and no pressure trigger
            # is engaged, so metering would only add queue wait (and
            # alarm churn) without protecting anything.  Admit it all;
            # the token bucket binds only once the queue visibly backs
            # up, which is when throttling has something to do.
            self._tokens = 0.0
            direct = self._direct
            if direct:
                # Buffer and queue never coexist (offer spills); apply
                # the policy order to the batch before admitting it.
                if len(direct) > 1 and queue.policy != "fifo":
                    direct.sort(key=lambda e: queue._key(e[1], e[0]))
                    if queue.policy == "lifo-shed":
                        direct.reverse()
                out = [spec for _, spec in direct]
                direct.clear()
            else:
                out = queue.drain()
        else:
            if self._direct:
                # Pressure engaged since the offers landed: meter them.
                self._spill(t)
                depth = len(queue._entries)
                if depth == 0:
                    return []
            self._fold(t)
            rate = self._admission_rate()
            self._tokens += rate
            quota = int(self._tokens)
            self._tokens -= quota
            if quota == 0 and not sim.live:
                # Nothing in flight and nothing committing to feed the
                # EWMA: without this floor a drained scheduler and a
                # near-zero estimate would livelock the queue.  Admit one.
                quota = 1
                self._tokens = 0.0
            out = []
            for _ in range(min(quota, depth)):
                spec = queue.pop()
                if spec is None:
                    break
                out.append(spec)
        self.admitted += len(out)
        if queue._entries:
            sim.add_alarm(t + 1)
        return out

    def _spill(self, t: Time) -> None:
        """Move the pass-through buffer into the sorted queue (pressure
        appeared mid-step); keeps the invariant that the buffer and the
        queue never hold entries at the same time."""
        queue = self.queue
        for seq, spec in self._direct:
            for victim, reason in queue.offer(spec, seq):
                self._record_shed(victim, reason, t)
        self._direct.clear()

    def _admission_rate(self) -> float:
        cfg = self.config
        if not cfg.controller or self._ewma is None:
            # Warm-up (no commit observed yet) or controller disabled:
            # only the queue bound throttles.
            rate = float(cfg.queue_cap)
        else:
            rate = self._ewma * cfg.headroom
        if self._bp_engaged:
            rate *= cfg.backpressure_slowdown
        return rate

    def _fold(self, t: Time) -> None:
        """Fold commits observed since the last fold into the commit-rate
        EWMA.  Called lazily — from the metering path and once per
        backlog window — so keeping-up steps skip the arithmetic; the
        sample is the mean rate over the elapsed span, so the estimate
        is the same average either way.
        """
        last = self._last_t
        if last is None:
            self._last_t = t
            return
        if t <= last:
            return
        sample = self._commits_since / (t - last)
        if self._seen_commit:
            if self._ewma is None:
                self._ewma = sample
            elif sample >= self._ewma or not self._bp_engaged:
                # While backpressure is engaged, commits are being
                # suppressed by our own throttle; folding the low
                # sample back in would make the loop gain
                # headroom * slowdown < 1 and collapse the rate to
                # zero.  Hold the estimate down-side until released
                # (up-side samples are always genuine capacity).
                a = self.config.ewma_alpha
                self._ewma = a * sample + (1.0 - a) * self._ewma
        self._commits_since = 0
        self._last_t = t

    def _record_shed(self, spec: TxnSpec, reason: str, t: Time) -> None:
        self.shed += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        sim = self._sim
        sim.trace.sheds.append(
            ShedRecord(
                time=t,
                home=spec.home,
                gen_time=spec.gen_time,
                reason=reason,
                priority=spec.priority,
            )
        )
        if sim._obs is not None:
            sim._obs.on_shed(t, spec.home, reason, spec.priority)

    # ------------------------------------------------------------------
    # deadline tracking for admitted transactions
    # ------------------------------------------------------------------
    def track(self, txn: Transaction) -> None:
        """Start watching an admitted transaction's deadline."""
        if txn.deadline is None:
            return
        heapq.heappush(self._deadline_heap, (txn.deadline, txn.tid))
        self._sim.add_alarm(txn.deadline)

    def expire_due(self, t: Time) -> List[Transaction]:
        """Live transactions whose deadline has passed at step ``t``.

        A transaction scheduled to execute *exactly at* its deadline
        gets its commit attempt this step (the paper's model commits
        instantly once objects are assembled): it stays tracked and is
        re-examined next step, by which point it either committed or —
        having missed — was expired by the engine's miss path.
        """
        sim = self._sim
        keep: List[Tuple[Time, int]] = []
        due: List[Transaction] = []
        heap = self._deadline_heap
        while heap and heap[0][0] <= t:
            d, tid = heapq.heappop(heap)
            txn = sim.live.get(tid)
            if txn is None or not txn.is_live:
                continue
            if d == t and txn.exec_time == t:
                keep.append((d, tid))
                continue
            due.append(txn)
        for item in keep:
            heapq.heappush(heap, item)
        if keep:
            sim.add_alarm(t + 1)
        return due

    def note_commit(self, txn: Transaction, t: Time) -> None:
        """A transaction committed at step ``t``.

        The engine inlines this body into its commit path (per-commit
        call overhead is measurable); this method is the reference
        implementation, kept for tests and external drivers.
        """
        self._commits_since += 1
        self._seen_commit = True
        if txn.deadline is not None:
            self.deadline_commits += 1

    def note_expired(self, txn: Transaction, t: Time) -> None:
        """Engine callback: an admitted transaction was cancelled."""
        self.expired += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Deterministic run summary, recorded as ``trace.meta["service"]``."""
        return {
            "policy": self.config.policy,
            "queue_cap": self.config.queue_cap,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "expired": self.expired,
            "deadline_commits": self.deadline_commits,
            "queue_peak": self.queue_peak,
            # still waiting at the horizon: closes the conservation
            # identity submitted == admitted + shed + queue_final
            "queue_final": len(self.queue._entries) + len(self._direct),
            "backpressure_steps": self.backpressure_steps,
            "backpressure_transitions": self.backpressure_transitions,
            "ewma_commit_rate": round(self._ewma, 6) if self._ewma is not None else None,
        }
