"""Ingestion service: an admission front door for the engine.

Open-system workloads (PR 6) revealed the stability frontier lambda*;
past it the scheduler falls behind and backlog grows without bound.
This package puts a deterministic, seedable front-end between arriving
transaction specs and the engine:

* :class:`~repro.service.config.ServiceConfig` — one frozen value
  object for every service knob (admission policy, queue bound,
  deadlines, controller gains).
* :class:`~repro.service.admission.AdmissionQueue` — the bounded queue
  with pluggable policies (``fifo``, ``lifo-shed``, ``deadline-edf``,
  ``priority-class``).
* :class:`~repro.service.frontend.ServiceFrontEnd` — the runtime: it
  offers arriving specs to the queue, meters admissions with a token
  bucket tracking an EWMA of the observed commit rate, raises
  backpressure with hysteresis, and cancels admitted transactions whose
  deadlines expire mid-flight.

Enable it by passing ``SimConfig(service=ServiceConfig(...))``; with
``service=None`` (the default) the engine takes a zero-overhead path and
traces stay byte-identical with pre-service builds.
"""

from repro.service.admission import POLICIES, AdmissionQueue
from repro.service.config import POLICY_NAMES, ServiceConfig
from repro.service.frontend import ServiceFrontEnd

__all__ = [
    "POLICIES",
    "POLICY_NAMES",
    "AdmissionQueue",
    "ServiceConfig",
    "ServiceFrontEnd",
]
