"""The bounded admission queue and its pluggable shedding policies.

Entries are kept sorted by a policy-specific key so the next admission
is always the head (tail for ``lifo-shed``); the queue is bounded by
``cap`` and overflow is resolved *inside* :meth:`AdmissionQueue.offer`
so the caller sees exactly which spec was shed and why.  All operations
are deterministic: ties break on the monotone submission sequence
number, never on object identity.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro._types import Time
from repro.service.config import POLICY_NAMES
from repro.sim.transactions import TxnSpec

#: Admission policies, re-exported for discoverability.
POLICIES = POLICY_NAMES

#: Sort key placed ahead of any real deadline by ``deadline-edf``.
_NO_DEADLINE = float("inf")


class AdmissionQueue:
    """A bounded, policy-ordered queue of not-yet-admitted specs.

    Internally a sorted list of ``(key, seq, spec)`` entries — ``cap``
    is small (tens), so O(cap) inserts beat heap bookkeeping and keep
    iteration order obvious.  ``seq`` is the submission sequence number
    assigned by the front-end; it makes every key unique, so specs are
    never compared.
    """

    __slots__ = ("policy", "cap", "_entries", "_deadlined")

    def __init__(self, policy: str, cap: int) -> None:
        self.policy = policy
        self.cap = cap
        self._entries: List[Tuple[tuple, int, TxnSpec]] = []
        #: queued specs carrying a deadline — lets the front-end skip
        #: the expiry scan entirely on the (common) deadline-free path.
        self._deadlined = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, spec: TxnSpec, seq: int) -> tuple:
        if self.policy == "deadline-edf":
            d = _NO_DEADLINE if spec.deadline is None else spec.deadline
            return (d, seq)
        if self.policy == "priority-class":
            return (-spec.priority, seq)
        # fifo and lifo-shed both order by arrival; they differ in
        # which end pop() takes and which entry overflow evicts.
        return (seq,)

    def offer(self, spec: TxnSpec, seq: int) -> List[Tuple[TxnSpec, str]]:
        """Enqueue ``spec`` (or shed per policy); return the sheds.

        The returned list holds ``(victim_spec, reason)`` pairs — empty
        when the spec was enqueued without evicting anything, otherwise
        exactly one entry: either ``(spec, "queue-full")`` (the offered
        spec was rejected) or ``(older, "displaced")`` (a queued entry
        was evicted to make room).
        """
        key = self._key(spec, seq)
        if len(self._entries) >= self.cap:
            if self.policy == "fifo":
                return [(spec, "queue-full")]
            if self.policy == "lifo-shed":
                victim = self._entries.pop(0)  # oldest waits longest: evict it
                bisect.insort(self._entries, (key, seq, spec))
                self._note_swap(spec, victim[2])
                return [(victim[2], "displaced")]
            # deadline-edf / priority-class: displace the worst queued
            # entry iff the newcomer outranks it, else reject newcomer.
            worst = self._entries[-1]
            if key < worst[0]:
                self._entries.pop()
                bisect.insort(self._entries, (key, seq, spec))
                self._note_swap(spec, worst[2])
                return [(worst[2], "displaced")]
            return [(spec, "queue-full")]
        bisect.insort(self._entries, (key, seq, spec))
        if spec.deadline is not None:
            self._deadlined += 1
        return []

    def _note_swap(self, entered: TxnSpec, evicted: TxnSpec) -> None:
        if entered.deadline is not None:
            self._deadlined += 1
        if evicted.deadline is not None:
            self._deadlined -= 1

    def shed_expired(self, t: Time) -> List[TxnSpec]:
        """Remove (and return, in queue order) every entry whose
        deadline has already passed — it could not commit even if
        admitted this step."""
        if not self._deadlined:
            return []
        keep, dead = [], []
        for e in self._entries:
            d = e[2].deadline
            (dead if d is not None and d <= t else keep).append(e)
        if dead:
            self._entries = keep
            self._deadlined -= len(dead)
        return [e[2] for e in dead]

    def pop(self) -> Optional[TxnSpec]:
        """The next spec to admit (``None`` when empty)."""
        if not self._entries:
            return None
        if self.policy == "lifo-shed":
            spec = self._entries.pop()[2]  # newest first
        else:
            spec = self._entries.pop(0)[2]
        if spec.deadline is not None:
            self._deadlined -= 1
        return spec

    def drain(self) -> List[TxnSpec]:
        """Every queued spec at once, in admission order; empties the
        queue.  One call replaces ``len(queue)`` pops on the keeping-up
        fast path."""
        entries = self._entries
        if not entries:
            return []
        specs = [e[2] for e in entries]
        if self.policy == "lifo-shed":
            specs.reverse()
        self._entries = []
        self._deadlined = 0
        return specs

    def peek_all(self) -> List[TxnSpec]:
        """Queued specs in admission order (diagnostics/tests only)."""
        specs = [e[2] for e in self._entries]
        return specs[::-1] if self.policy == "lifo-shed" else specs
