"""Batch scheduler interface and shared planning machinery.

A batch scheduler plans execution times for a set of *pending* transactions
against a *state view* — either a live simulator (online usage inside the
bucket schedulers) or a standalone batch problem (offline usage, tests,
and ``F_A`` dry runs).  Plans never alter already-committed times: new
transactions are fitted around them (the paper's first Section IV-A
modification; in the worst case they land strictly after, which at most
doubles the batch's execution time, leaving ``A``'s asymptotics intact).

All concrete schedulers here are *coloring-based*: they assign each pending
transaction the smallest valid color of the extended dependency graph, in a
scheduler-specific order.  Ordering is where topology knowledge enters —
e.g. sweeping a line graph left to right yields the pipelined schedules of
Busch et al. [4].  Feasibility never depends on the order (any valid
coloring is feasible); only the approximation quality does.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId, Weight
from repro.core.coloring import Constraint, min_valid_color
from repro.network.graph import Graph
from repro.network.oracles import OracleRow
from repro.sim.transactions import Transaction


class StateView(Protocol):
    """What a batch planner needs to know about the world."""

    graph: Graph
    object_speed_den: int

    def scheduled_requesters(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        """Live, already-scheduled *writers* of ``oid`` as
        ``(remaining_time, home)`` pairs (remaining = exec - now)."""

    def scheduled_readers(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        """Live, already-scheduled *readers* of ``oid``."""

    def holder_bound(self, oid: ObjectId, home: NodeId) -> Time:
        """Upper bound on the time for ``oid`` (or a copy of it) to reach
        ``home`` from its current position (covers at-rest and in-transit
        states)."""


class SimStateView:
    """State view over a live :class:`repro.sim.engine.Simulator`.

    Per-object query results are memoized: a view is only valid within a
    single time step (the bucket scheduler's ``F_A`` dry runs re-plan the
    same buckets many times per step, and the underlying state cannot
    change mid-step).  Profiling (docs/performance.md) showed these
    lookups dominating bucket insertions before the cache.
    """

    def __init__(self, sim, now: Time) -> None:
        self._sim = sim
        self.now = now
        self.graph = sim.graph
        self.object_speed_den = sim.object_speed_den
        # Pending index (repro.core.pending): scheduled waiting accessors
        # per object, maintained incrementally by the engine — the query
        # below becomes proportional to the *scheduled* waiters instead
        # of filtering every live accessor.  Plain-simulator fallbacks
        # (tests, hand-rolled sims) take the filtering path.
        self._pending = getattr(sim, "pending", None)
        self._req_cache: dict = {}
        self._reader_cache: dict = {}

    def scheduled_requesters(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        cached = self._req_cache.get(oid)
        if cached is None:
            index = self._pending
            if index is not None:
                obj = self._sim.objects.get(oid)
                cached = (
                    [] if obj is None
                    else index.scheduled_writer_pairs(obj.index, self.now)
                )
            else:
                cached = [
                    (txn.exec_time - self.now, txn.home)
                    for txn in self._sim.live_requesters(oid)
                    if txn.exec_time is not None
                ]
            self._req_cache[oid] = cached
        return cached

    def scheduled_readers(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        cached = self._reader_cache.get(oid)
        if cached is None:
            index = self._pending
            if index is not None:
                obj = self._sim.objects.get(oid)
                cached = (
                    [] if obj is None
                    else index.scheduled_reader_pairs(obj.index, self.now)
                )
            else:
                cached = [
                    (txn.exec_time - self.now, txn.home)
                    for txn in self._sim.live_readers(oid)
                    if txn.exec_time is not None
                ]
            self._reader_cache[oid] = cached
        return cached

    def holder_bound(self, oid: ObjectId, home: NodeId) -> Time:
        return self._sim.object_time_to_reach(oid, home)


class StandaloneView:
    """State view for a pure batch problem: objects at rest, nothing
    scheduled.  Used by tests and by offline-vs-online comparisons."""

    def __init__(
        self,
        graph: Graph,
        placement: Mapping[ObjectId, NodeId],
        object_speed_den: int = 1,
    ) -> None:
        self.graph = graph
        self.placement = dict(placement)
        self.object_speed_den = object_speed_den

    def scheduled_requesters(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        return []

    def scheduled_readers(self, oid: ObjectId) -> List[Tuple[Time, NodeId]]:
        return []

    def holder_bound(self, oid: ObjectId, home: NodeId) -> Time:
        return self.object_speed_den * self.graph.distance(self.placement[oid], home)


class BatchScheduler(abc.ABC):
    """Base class: plan pending transactions against a state view.

    Subclasses override :meth:`order` (and may override :meth:`plan` for
    non-coloring strategies).
    """

    name = "batch"

    @abc.abstractmethod
    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        """The order in which pending transactions are colored."""

    def plan(
        self,
        view: StateView,
        txns: Sequence[Transaction],
        *,
        floor: Time = 1,
    ) -> Dict[TxnId, Time]:
        """Relative execution offsets (from "now") for ``txns``.

        ``floor`` is the minimum offset, used by the distributed scheduler
        to reserve time for schedule-dissemination messages.  The returned
        offsets, added to the current time, extend the committed schedule
        feasibly (tests certify this through the engine and the trace
        certifier).
        """
        speed = view.object_speed_den
        colors: Dict[TxnId, Time] = {}
        writers_of: Dict[ObjectId, List[Transaction]] = {}
        readers_of: Dict[ObjectId, List[Transaction]] = {}
        for txn in txns:
            for oid in txn.objects:
                writers_of.setdefault(oid, []).append(txn)
            for oid in txn.reads:
                readers_of.setdefault(oid, []).append(txn)
        graph = view.graph
        oracle = graph.oracle
        for txn in self.order(view, txns):
            cons: List[Constraint] = []
            seen: set = set()
            # One cached distance row per transaction instead of millions
            # of distance() calls (hot path; see docs/performance.md) —
            # unless an oracle answers point queries in O(1), in which
            # case no O(n) row is ever materialised.
            if oracle is not None:
                drow = OracleRow(oracle, txn.home)
            else:
                drow = graph.distances_from(txn.home)

            def add_scheduled(pairs) -> None:
                for rem, home in pairs:
                    key = ("s", rem, home)
                    if key not in seen:
                        seen.add(key)
                        cons.append((rem, speed * drow[home]))

            def add_pending(others) -> None:
                for other in others:
                    if other.tid != txn.tid and other.tid in colors and ("p", other.tid) not in seen:
                        seen.add(("p", other.tid))
                        cons.append((colors[other.tid], speed * drow[other.home]))

            # Writes conflict with every accessor; reads only with writers.
            for oid in txn.objects:
                add_scheduled(view.scheduled_requesters(oid))
                add_scheduled(view.scheduled_readers(oid))
                add_pending(writers_of.get(oid, ()))
                add_pending(readers_of.get(oid, ()))
            for oid in txn.reads:
                add_scheduled(view.scheduled_requesters(oid))
                add_pending(writers_of.get(oid, ()))
            for oid in txn.all_objects:
                cons.append((0, view.holder_bound(oid, txn.home)))
            colors[txn.tid] = min_valid_color(cons, floor=floor)
        return colors

    def completion_time(
        self, view: StateView, txns: Sequence[Transaction], *, floor: Time = 1
    ) -> Time:
        """``F_A``: time (from now) to execute all of ``txns`` under this
        scheduler, given the fixed already-scheduled transactions.

        Note on the paper's notation: Algorithm 2 writes
        ``F_A(T^s ∪ B_i ∪ {T})`` but the insertion rule reads "the
        offline execution time *of that bucket*" — we therefore measure
        the completion of the *pending* set given ``T^s`` as constraints,
        which preserves the property that weakly-conflicting transactions
        keep landing in low buckets.
        """
        if not txns:
            return 0
        return max(self.plan(view, txns, floor=floor).values())


def batch_completion_time(plan: Mapping[TxnId, Time]) -> Time:
    """Makespan (relative) of a plan; 0 for an empty plan."""
    return max(plan.values()) if plan else 0


def _suffix_placement(
    view: StandaloneView, order: Sequence[Transaction], start: int
) -> Dict[ObjectId, NodeId]:
    """Object positions when the suffix at ``start`` begins: each object
    sits at the home of its last prefix writer (or its initial node)."""
    placement = dict(view.placement)
    for txn in order[:start]:
        for oid in txn.objects:
            placement[oid] = txn.home
    return placement


def check_suffix_property(
    scheduler: BatchScheduler,
    view: StandaloneView,
    txns: Sequence[Transaction],
    *,
    slack: float = 1.0,
    plan: Optional[Dict[TxnId, Time]] = None,
) -> List[Tuple[int, Time, Time]]:
    """Verify the Section IV-A suffix property of a standalone plan.

    For every suffix ``X'`` of the schedule (in execution order), the
    suffix must complete within ``slack * F_A(X')`` when ``A`` schedules
    ``X'`` alone from the object positions left by the prefix.  Returns a
    list of violations ``(suffix_start_index, actual, allowed)``.

    Coloring-based planners satisfy the property with ``slack = 1``
    structurally: colors of a suffix, re-based to the suffix start, remain
    a valid coloring no worse than re-planning — tests exercise this on
    random instances.  Pass ``plan`` to check an explicit plan instead of
    re-deriving the scheduler's.
    """
    full = dict(plan) if plan is not None else scheduler.plan(view, txns)
    order = sorted(txns, key=lambda x: (full[x.tid], x.tid))
    violations = []
    for start in range(1, len(order)):
        suffix = order[start:]
        base = full[order[start].tid]
        sub_view = StandaloneView(
            view.graph, _suffix_placement(view, order, start), view.object_speed_den
        )
        alone = scheduler.completion_time(sub_view, suffix)
        actual = max(full[x.tid] for x in suffix) - base + 1
        if actual > slack * alone:
            violations.append((start, actual, alone))
    return violations


def enforce_suffix_property(
    scheduler: BatchScheduler,
    view: StandaloneView,
    txns: Sequence[Transaction],
    *,
    slack: float = 1.0,
    max_rounds: int = 32,
) -> Dict[TxnId, Time]:
    """The paper's second Section IV-A modification, constructively.

    "If a batch schedule S does not satisfy the suffix property, then it
    can be easily modified ... by repeatedly applying algorithm A to any
    suffix that violates the property, starting from the longest suffix."

    Re-plans the longest violating suffix alone (from the object positions
    the prefix leaves behind), appended after the prefix, until no suffix
    violates within ``slack``.  Returns the repaired plan; coloring-based
    planners typically need zero repair rounds (tested).
    """
    plan = scheduler.plan(view, txns)
    by_tid = {t.tid: t for t in txns}
    for _ in range(max_rounds):
        violations = check_suffix_property(
            scheduler, view, txns, slack=slack, plan=plan
        )
        if not violations:
            return plan
        start = min(v[0] for v in violations)  # longest violating suffix
        order = sorted(txns, key=lambda x: (plan[x.tid], x.tid))
        suffix = order[start:]
        prefix_end = max((plan[x.tid] for x in order[:start]), default=0)
        sub_view = StandaloneView(
            view.graph, _suffix_placement(view, order, start), view.object_speed_den
        )
        sub_plan = scheduler.plan(sub_view, suffix)
        for txn in suffix:
            plan[txn.tid] = prefix_end + sub_plan[txn.tid]
    return plan
