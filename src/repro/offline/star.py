"""Star-graph batch scheduler (stand-in for Busch et al. [4]).

A star has a central node and alpha rays of beta nodes (Section IV-D).
Objects travelling between rays must pass the center, so good schedules
serve rays one at a time, sweeping each ray outward-in or inward-out;
coloring in (ray, depth) order produces these ray-banded pipelines.  The
center node (ray ``None``) is served first — it is on every route.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.network.topologies import StarLayout
from repro.offline.base import BatchScheduler, StateView
from repro.sim.transactions import Transaction


class StarBatchScheduler(BatchScheduler):
    """Ray-banded coloring scheduler for star graphs."""

    name = "star-banded"

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        layout = getattr(view.graph, "layout", None)
        if not isinstance(layout, StarLayout):
            return sorted(txns, key=lambda x: (x.home, x.tid))

        def key(txn: Transaction):
            ray = layout.ray_of(txn.home)
            # center first (ray None -> -1), then ray by ray, inner nodes first
            return (-1 if ray is None else ray, txn.home, txn.tid)

        return sorted(txns, key=key)
