"""Line-graph batch scheduler (stand-in for Busch et al. [4], O(1)-approx).

On a line, near-optimal batch schedules *sweep*: objects flow monotonically
along the line, and each object serves its requesters in positional order,
so the total travel per object is O(span) instead of O(span * requesters).
Greedy coloring in left-to-right home order produces exactly this pipelined
behaviour: consecutive colors differ by consecutive-node distances, whose
sum telescopes to the span.

A second refinement follows [4]'s intuition: choosing the sweep direction
per batch (left-to-right vs right-to-left) by which endpoint is closer to
the centroid of initial object positions saves up to the initial approach
distance.  Both directions are valid colorings; we keep the cheaper plan.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro._types import Time, TxnId
from repro.offline.base import BatchScheduler, StateView
from repro.sim.transactions import Transaction


class LineBatchScheduler(BatchScheduler):
    """Positional sweep scheduler for line graphs.

    Works on any graph whose node ids are ordered along a dominant path
    (line, ring); on other graphs it degenerates to home-ordered coloring,
    which is still feasible.
    """

    name = "line-sweep"

    def __init__(self, direction: str = "auto") -> None:
        if direction not in ("auto", "ltr", "rtl"):
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        ltr = sorted(txns, key=lambda x: (x.home, x.tid))
        if self.direction == "ltr":
            return ltr
        if self.direction == "rtl":
            return ltr[::-1]
        return ltr  # plan() overrides "auto" by trying both

    def plan(self, view: StateView, txns: Sequence[Transaction], *, floor: Time = 1) -> Dict[TxnId, Time]:
        if self.direction != "auto" or not txns:
            return super().plan(view, txns, floor=floor)
        ltr = LineBatchScheduler("ltr").plan(view, txns, floor=floor)
        rtl = LineBatchScheduler("rtl").plan(view, txns, floor=floor)
        return ltr if max(ltr.values()) <= max(rtl.values()) else rtl
