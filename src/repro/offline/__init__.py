"""Offline batch schedulers — the algorithm ``A`` of Section IV.

These stand in for the batch algorithms of Busch et al. [4] (SPAA 2017):
feasible batch schedulers with the two Section IV-A modifications
(append-after operation against already-scheduled transactions, and the
suffix property).  See DESIGN.md "Substitutions".
"""

from repro.offline.base import (
    BatchScheduler,
    SimStateView,
    StandaloneView,
    batch_completion_time,
    check_suffix_property,
    enforce_suffix_property,
)
from repro.offline.coloring_batch import ColoringBatchScheduler
from repro.offline.line import LineBatchScheduler
from repro.offline.cluster import ClusterBatchScheduler
from repro.offline.star import StarBatchScheduler
from repro.offline.improver import ImprovedBatchScheduler

__all__ = [
    "BatchScheduler",
    "SimStateView",
    "StandaloneView",
    "batch_completion_time",
    "check_suffix_property",
    "enforce_suffix_property",
    "ColoringBatchScheduler",
    "LineBatchScheduler",
    "ClusterBatchScheduler",
    "StarBatchScheduler",
    "ImprovedBatchScheduler",
]
