"""Cluster-graph batch scheduler (stand-in for Busch et al. [4]).

A cluster graph is alpha cliques of beta nodes joined through bridge nodes
by edges of weight gamma >= beta (Section IV-D).  Good schedules are
*two-phase*: handle intra-clique conflicts with cheap unit-distance moves
first, and amortise the expensive gamma-weight bridge crossings by serving
whole cliques at a time.  Coloring in (clique, node) order realises this:
transactions of one clique occupy a contiguous band of colors, and the
inter-clique distance is paid once per clique transition instead of per
transaction.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.network.topologies import ClusterLayout
from repro.offline.base import BatchScheduler, StateView
from repro.sim.transactions import Transaction


class ClusterBatchScheduler(BatchScheduler):
    """Clique-banded coloring scheduler for cluster graphs.

    Requires the graph to carry a :class:`ClusterLayout` (as built by
    :func:`repro.network.topologies.cluster_graph`); without one it falls
    back to home order, which remains feasible on any graph.
    """

    name = "cluster-banded"

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        layout = getattr(view.graph, "layout", None)
        if not isinstance(layout, ClusterLayout):
            return sorted(txns, key=lambda x: (x.home, x.tid))
        beta = len(layout.cliques[0]) if layout.cliques else 1

        def key(txn: Transaction):
            clique = txn.home // beta  # constructor packs cliques contiguously
            return (clique, txn.home, txn.tid)

        return sorted(txns, key=key)
