"""Generic coloring batch scheduler for arbitrary graphs.

Orders transactions by a simple heuristic and colors them greedily.  This
is the fallback ``A`` for topologies without a specialised scheduler; its
approximation ratio is measured, not proven (the paper's hardness result —
reduction from vertex coloring, [5] — rules out good worst-case bounds on
arbitrary graphs anyway).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.offline.base import BatchScheduler, StateView
from repro.sim.transactions import Transaction


class ColoringBatchScheduler(BatchScheduler):
    """Greedy coloring in a configurable order.

    ``order_by``:

    * ``"arrival"`` — transaction id order (deterministic default);
    * ``"degree"``  — most-conflicting first (classic largest-first
      coloring heuristic: hot transactions grab small colors before the
      schedule fills up);
    * ``"home"``    — by home node id (matches a sweep on path-like
      node numberings).
    """

    name = "coloring"

    def __init__(self, order_by: str = "arrival") -> None:
        if order_by not in ("arrival", "degree", "home"):
            raise ValueError(f"unknown order {order_by!r}")
        self.order_by = order_by

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        txns = list(txns)
        if self.order_by == "arrival":
            txns.sort(key=lambda x: x.tid)
        elif self.order_by == "home":
            txns.sort(key=lambda x: (x.home, x.tid))
        else:
            counts = {}
            for txn in txns:
                for oid in txn.objects:
                    counts[oid] = counts.get(oid, 0) + 1
            txns.sort(key=lambda x: (-sum(counts[o] for o in x.objects), x.tid))
        return txns
