"""Local-search improvement of batch plans.

Theorem 4 makes the offline approximation ratio ``b_A`` a multiplicative
factor of the online competitive ratio, so any improvement to the batch
scheduler propagates through the bucket conversion for free.  This module
wraps any coloring-based :class:`BatchScheduler` with a seeded
hill-climbing search over *coloring orders*: swap two transactions in the
order, replan, keep the better makespan.  Every plan it returns is a plan
of the base scheduler for *some* order, hence exactly as feasible.

The search is deterministic given the seed, per the library-wide
reproducibility rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._types import Time, TxnId
from repro.offline.base import BatchScheduler, StateView
from repro.sim.transactions import Transaction


class ImprovedBatchScheduler(BatchScheduler):
    """Hill-climbing order search around a base batch scheduler.

    Parameters
    ----------
    base:
        The batch scheduler providing the initial order and the planner.
    iterations:
        Number of candidate swaps to try per plan (default 60).  Each
        costs one replan; keep modest inside bucket insertion loops.
    seed:
        Seed for the swap proposals.
    restarts:
        Additional random-order starting points (default 1: also try one
        shuffled order — cheap insurance against pathological base
        orders).
    """

    name = "improved"

    def __init__(
        self,
        base: BatchScheduler,
        iterations: int = 60,
        seed: Optional[int] = 0,
        restarts: int = 1,
    ) -> None:
        if iterations < 0 or restarts < 0:
            raise ValueError("iterations and restarts must be non-negative")
        self.base = base
        self.iterations = iterations
        self.seed = seed
        self.restarts = restarts

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        return self.base.order(view, txns)

    def _makespan(self, plan: Dict[TxnId, Time]) -> Time:
        return max(plan.values()) if plan else 0

    def _plan_order(self, view, order_list, floor):
        # Re-plan with an explicit order by temporarily monkey-free
        # delegation: BatchScheduler.plan consults self.order(), so we use
        # a tiny adapter around the base planner.
        return _FixedOrder(self.base, order_list).plan(view, order_list, floor=floor)

    def plan(self, view: StateView, txns: Sequence[Transaction], *, floor: Time = 1) -> Dict[TxnId, Time]:
        txns = list(txns)
        if len(txns) <= 2 or self.iterations == 0:
            return self.base.plan(view, txns, floor=floor)
        rng = np.random.default_rng(self.seed)
        best_order = self.base.order(view, txns)
        best_plan = self._plan_order(view, best_order, floor)
        best = self._makespan(best_plan)
        starts = [list(best_order)]
        for _ in range(self.restarts):
            shuffled = list(best_order)
            rng.shuffle(shuffled)
            starts.append(shuffled)
        for start in starts:
            order_list = list(start)
            plan = self._plan_order(view, order_list, floor)
            score = self._makespan(plan)
            if score < best:
                best, best_plan, best_order = score, plan, list(order_list)
            for _ in range(self.iterations):
                i, j = rng.integers(0, len(order_list), size=2)
                if i == j:
                    continue
                order_list[i], order_list[j] = order_list[j], order_list[i]
                plan = self._plan_order(view, order_list, floor)
                score = self._makespan(plan)
                if score < best:
                    best, best_plan, best_order = score, plan, list(order_list)
                else:
                    order_list[i], order_list[j] = order_list[j], order_list[i]
        return best_plan


class _FixedOrder(BatchScheduler):
    """Plan with the base scheduler's machinery but a pinned order."""

    name = "fixed-order"

    def __init__(self, base: BatchScheduler, order_list: Sequence[Transaction]) -> None:
        self.base = base
        self._order = list(order_list)

    def order(self, view: StateView, txns: Sequence[Transaction]) -> List[Transaction]:
        wanted = {t.tid for t in txns}
        return [t for t in self._order if t.tid in wanted]
