"""``repro.chaos`` — chaos search, runtime invariants, minimizing reproducers.

PR 3's fault layer (:mod:`repro.faults`) made single hand-written fault
plans injectable; this package turns that into *continuously verified
robustness*:

* :mod:`repro.chaos.invariants` — an :class:`InvariantMonitor` probe
  that re-derives the engine's safety invariants every step (single
  holder, object conservation, commit presence, reschedule budget,
  monotone time) plus a liveness watchdog, raising structured
  :class:`InvariantViolation`\\ s with step/txn/object context;
* :mod:`repro.chaos.search` — seeded random fault plans (crashes +
  drops + delays + partitions) swept across schedulers and workloads,
  every episode monitored, certified, and checked for full commitment;
* :mod:`repro.chaos.shrink` — a delta-debugging shrinker that minimizes
  any failing plan to a smallest still-failing reproducer;
* :mod:`repro.chaos.artifact` — replayable JSON artifacts
  (``repro.chaos/1``) that re-run bit-for-bit via
  ``repro chaos replay``.

CLI: ``repro chaos sweep`` / ``repro chaos replay`` (see ``repro.cli``).
"""

from repro.chaos.artifact import (
    SCHEMA as ARTIFACT_SCHEMA,
    artifact_dict,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.chaos.invariants import InvariantMonitor, InvariantViolation
from repro.chaos.search import (
    DEFAULT_SCHEDULERS,
    EpisodeResult,
    EpisodeSpec,
    SweepResult,
    episode_spec,
    run_episode,
    run_sweep,
)
from repro.chaos.shrink import plan_size, shrink_plan, shrink_spec

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "EpisodeSpec",
    "EpisodeResult",
    "SweepResult",
    "episode_spec",
    "run_episode",
    "run_sweep",
    "DEFAULT_SCHEDULERS",
    "shrink_plan",
    "shrink_spec",
    "plan_size",
    "ARTIFACT_SCHEMA",
    "artifact_dict",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
]
