"""Delta-debugging shrinker for failing fault plans.

Given an episode whose fault plan provokes a violation, the shrinker
searches for a *smaller* plan that still provokes the same violation
kind, in the spirit of ddmin: try removing whole fault dimensions first
(all probabilistic faults, all crash windows, all partition windows),
then individual windows, then individual cut edges, then shrink the
surviving intervals.  Every candidate is tested by actually re-running
the episode — determinism of the engine makes the test a pure predicate
of the plan — and each greedy pass repeats until a fixpoint, so the
result is minimal under the move set and, crucially, *deterministic*:
the same failing episode always shrinks to the same reproducer.

The final plan is what lands in the replay artifact
(:mod:`repro.chaos.artifact`); a typical planted crash+partition
violation minimizes from a dozen windows and three probabilities to a
two-window plan with everything else zeroed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.faults import CrashWindow, FaultPlan, PartitionWindow

#: Predicate: does this plan still provoke the target violation?
StillFails = Callable[[FaultPlan], bool]


def _zero_probabilities(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Try zeroing drop/delay probabilities, jointly then individually."""
    if plan.drop_prob or plan.delay_prob:
        candidate = replace(plan, drop_prob=0.0, delay_prob=0.0, max_delay=0)
        if fails(candidate):
            return candidate
    if plan.drop_prob:
        candidate = replace(plan, drop_prob=0.0)
        if fails(candidate):
            plan = candidate
    if plan.delay_prob:
        candidate = replace(plan, delay_prob=0.0, max_delay=0)
        if fails(candidate):
            plan = candidate
    return plan


def _drop_window_classes(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Try removing all crash windows, then all partition windows."""
    if plan.crashes:
        candidate = replace(plan, crashes=())
        if fails(candidate):
            plan = candidate
    if plan.partitions:
        candidate = replace(plan, partitions=())
        if fails(candidate):
            plan = candidate
    return plan


def _drop_individual_windows(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Remove single windows while the plan keeps failing (to fixpoint)."""
    changed = True
    while changed:
        changed = False
        for i in range(len(plan.crashes)):
            crashes = plan.crashes[:i] + plan.crashes[i + 1:]
            candidate = replace(plan, crashes=crashes)
            if fails(candidate):
                plan = candidate
                changed = True
                break
        else:
            for i in range(len(plan.partitions)):
                parts = plan.partitions[:i] + plan.partitions[i + 1:]
                candidate = replace(plan, partitions=parts)
                if fails(candidate):
                    plan = candidate
                    changed = True
                    break
    return plan


def _shrink_cuts(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Remove individual edges from partition cuts (to fixpoint)."""
    changed = True
    while changed:
        changed = False
        for i, p in enumerate(plan.partitions):
            if len(p.cut) <= 1:
                continue
            for j in range(len(p.cut)):
                cut = p.cut[:j] + p.cut[j + 1:]
                smaller = PartitionWindow(cut, p.start, p.end)
                parts = plan.partitions[:i] + (smaller,) + plan.partitions[i + 1:]
                candidate = replace(plan, partitions=parts)
                if fails(candidate):
                    plan = candidate
                    changed = True
                    break
            if changed:
                break
    return plan


def _shrink_intervals(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Halve window durations while the plan keeps failing (to fixpoint)."""
    changed = True
    while changed:
        changed = False
        for i, w in enumerate(plan.crashes):
            if w.duration <= 1:
                continue
            half = CrashWindow(w.node, w.start, w.start + (w.duration + 1) // 2)
            crashes = plan.crashes[:i] + (half,) + plan.crashes[i + 1:]
            candidate = replace(plan, crashes=crashes)
            if fails(candidate):
                plan = candidate
                changed = True
                break
        else:
            for i, p in enumerate(plan.partitions):
                if p.duration <= 1:
                    continue
                half = PartitionWindow(
                    p.cut, p.start, p.start + (p.duration + 1) // 2
                )
                parts = plan.partitions[:i] + (half,) + plan.partitions[i + 1:]
                candidate = replace(plan, partitions=parts)
                if fails(candidate):
                    plan = candidate
                    changed = True
                    break
    return plan


#: Greedy passes, cheapest-win-first; the driver repeats the whole
#: sequence until one full round makes no progress.
_PASSES: List[Callable[[FaultPlan, StillFails], FaultPlan]] = [
    _zero_probabilities,
    _drop_window_classes,
    _drop_individual_windows,
    _shrink_cuts,
    _shrink_intervals,
]


def plan_size(plan: FaultPlan) -> int:
    """Shrink metric: windows + cut edges + active probability knobs."""
    return (
        len(plan.crashes)
        + len(plan.partitions)
        + sum(len(p.cut) - 1 for p in plan.partitions)
        + (1 if plan.drop_prob else 0)
        + (1 if plan.delay_prob else 0)
    )


def shrink_plan(
    plan: FaultPlan,
    fails: StillFails,
    *,
    max_rounds: int = 16,
) -> FaultPlan:
    """Minimize ``plan`` under the move set while ``fails`` stays true.

    ``fails(plan)`` must be true on entry (the caller observed the
    violation); the returned plan also satisfies it.  Runs the greedy
    passes to a global fixpoint, ``max_rounds`` bounding the outer loop
    against pathological ping-ponging (never hit in practice — each pass
    only ever removes or shortens).
    """
    for _ in range(max_rounds):
        before = plan_size(plan)
        for p in _PASSES:
            plan = p(plan, fails)
        if plan_size(plan) == before:
            break
    return plan


def shrink_spec(spec, invariant: str, *, max_rounds: int = 16):
    """Shrink a failing :class:`~repro.chaos.search.EpisodeSpec`'s plan.

    The predicate re-runs the episode with the candidate plan and checks
    that the *same invariant kind* still trips — a candidate that fails
    differently (or passes) is rejected, so the reproducer reproduces
    the original bug, not merely *a* bug.  Returns a new spec carrying
    the minimized plan.
    """
    from repro.chaos.search import rerun_with_plan

    def fails(candidate: FaultPlan) -> bool:
        result = rerun_with_plan(spec, candidate)
        return (
            result.violation is not None
            and result.violation["invariant"] == invariant
        )

    small = shrink_plan(spec.plan, fails, max_rounds=max_rounds)
    return replace(spec, plan=small)
