"""Delta-debugging shrinker for failing fault plans.

Given an episode whose fault plan provokes a violation, the shrinker
searches for a *smaller* plan that still provokes the same violation
kind, in the spirit of ddmin: try removing whole fault dimensions first
(all probabilistic faults, all crash windows, all partition windows),
then individual windows, then individual cut edges, then shrink the
surviving intervals.  Every candidate is tested by actually re-running
the episode — determinism of the engine makes the test a pure predicate
of the plan — and each greedy pass repeats until a fixpoint, so the
result is minimal under the move set and, crucially, *deterministic*:
the same failing episode always shrinks to the same reproducer.

The greedy fixpoint passes are phrased as "generate the orderd candidate
list for this round, accept the *first* failing candidate"; that framing
admits speculative parallelism (:func:`shrink_spec`'s ``pool``): a batch
evaluator may test all candidates of a round concurrently and take the
lowest failing index — by construction the same candidate a serial scan
would accept, so parallel and serial shrinking produce identical
reproducers.

The final plan is what lands in the replay artifact
(:mod:`repro.chaos.artifact`); a typical planted crash+partition
violation minimizes from a dozen windows and three probabilities to a
two-window plan with everything else zeroed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence

from repro.faults import CrashWindow, FaultPlan, PartitionWindow

#: Predicate: does this plan still provoke the target violation?
StillFails = Callable[[FaultPlan], bool]

#: Batch predicate: per-candidate :data:`StillFails` flags, evaluated
#: together (e.g. on a worker pool).  Must be pointwise-equal to mapping
#: the serial predicate.
StillFailsMany = Callable[[Sequence[FaultPlan]], List[bool]]


def _first_failing(
    candidates: Sequence[FaultPlan],
    fails: StillFails,
    fails_many: Optional[StillFailsMany],
) -> Optional[int]:
    """Index of the first candidate that still fails, or ``None``.

    Serial mode scans in order and short-circuits; batch mode evaluates
    every candidate (speculatively, in parallel) and picks the lowest
    failing index — the identical outcome, bought with extra work.
    """
    if not candidates:
        return None
    if fails_many is None:
        for i, candidate in enumerate(candidates):
            if fails(candidate):
                return i
        return None
    flags = fails_many(candidates)
    for i, flag in enumerate(flags):
        if flag:
            return i
    return None


def _zero_probabilities(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Try zeroing drop/delay probabilities, jointly then individually.

    Each try conditions on the previous outcome, so this pass stays
    serial — it is at most three episode runs.
    """
    if plan.drop_prob or plan.delay_prob:
        candidate = replace(plan, drop_prob=0.0, delay_prob=0.0, max_delay=0)
        if fails(candidate):
            return candidate
    if plan.drop_prob:
        candidate = replace(plan, drop_prob=0.0)
        if fails(candidate):
            plan = candidate
    if plan.delay_prob:
        candidate = replace(plan, delay_prob=0.0, max_delay=0)
        if fails(candidate):
            plan = candidate
    return plan


def _drop_window_classes(plan: FaultPlan, fails: StillFails) -> FaultPlan:
    """Try removing all crash windows, then all partition windows.

    The second try depends on whether the first was accepted (two runs
    total), so this pass also stays serial.
    """
    if plan.crashes:
        candidate = replace(plan, crashes=())
        if fails(candidate):
            plan = candidate
    if plan.partitions:
        candidate = replace(plan, partitions=())
        if fails(candidate):
            plan = candidate
    return plan


def _drop_individual_windows(
    plan: FaultPlan, fails: StillFails, fails_many: Optional[StillFailsMany] = None
) -> FaultPlan:
    """Remove single windows while the plan keeps failing (to fixpoint)."""
    while True:
        candidates = [
            replace(plan, crashes=plan.crashes[:i] + plan.crashes[i + 1:])
            for i in range(len(plan.crashes))
        ] + [
            replace(plan, partitions=plan.partitions[:i] + plan.partitions[i + 1:])
            for i in range(len(plan.partitions))
        ]
        hit = _first_failing(candidates, fails, fails_many)
        if hit is None:
            return plan
        plan = candidates[hit]


def _shrink_cuts(
    plan: FaultPlan, fails: StillFails, fails_many: Optional[StillFailsMany] = None
) -> FaultPlan:
    """Remove individual edges from partition cuts (to fixpoint)."""
    while True:
        candidates: List[FaultPlan] = []
        for i, p in enumerate(plan.partitions):
            if len(p.cut) <= 1:
                continue
            for j in range(len(p.cut)):
                smaller = PartitionWindow(p.cut[:j] + p.cut[j + 1:], p.start, p.end)
                parts = plan.partitions[:i] + (smaller,) + plan.partitions[i + 1:]
                candidates.append(replace(plan, partitions=parts))
        hit = _first_failing(candidates, fails, fails_many)
        if hit is None:
            return plan
        plan = candidates[hit]


def _shrink_intervals(
    plan: FaultPlan, fails: StillFails, fails_many: Optional[StillFailsMany] = None
) -> FaultPlan:
    """Halve window durations while the plan keeps failing (to fixpoint)."""
    while True:
        candidates: List[FaultPlan] = []
        for i, w in enumerate(plan.crashes):
            if w.duration <= 1:
                continue
            half = CrashWindow(w.node, w.start, w.start + (w.duration + 1) // 2)
            crashes = plan.crashes[:i] + (half,) + plan.crashes[i + 1:]
            candidates.append(replace(plan, crashes=crashes))
        for i, p in enumerate(plan.partitions):
            if p.duration <= 1:
                continue
            half = PartitionWindow(p.cut, p.start, p.start + (p.duration + 1) // 2)
            parts = plan.partitions[:i] + (half,) + plan.partitions[i + 1:]
            candidates.append(replace(plan, partitions=parts))
        hit = _first_failing(candidates, fails, fails_many)
        if hit is None:
            return plan
        plan = candidates[hit]


def plan_size(plan: FaultPlan) -> int:
    """Shrink metric: windows + cut edges + active probability knobs."""
    return (
        len(plan.crashes)
        + len(plan.partitions)
        + sum(len(p.cut) - 1 for p in plan.partitions)
        + (1 if plan.drop_prob else 0)
        + (1 if plan.delay_prob else 0)
    )


def shrink_plan(
    plan: FaultPlan,
    fails: StillFails,
    *,
    max_rounds: int = 16,
    fails_many: Optional[StillFailsMany] = None,
) -> FaultPlan:
    """Minimize ``plan`` under the move set while ``fails`` stays true.

    ``fails(plan)`` must be true on entry (the caller observed the
    violation); the returned plan also satisfies it.  Runs the greedy
    passes to a global fixpoint, ``max_rounds`` bounding the outer loop
    against pathological ping-ponging (never hit in practice — each pass
    only ever removes or shortens).

    ``fails_many``, when given, batch-evaluates candidate lists (see
    :data:`StillFailsMany`); the result is identical to the serial scan.
    """
    for _ in range(max_rounds):
        before = plan_size(plan)
        plan = _zero_probabilities(plan, fails)
        plan = _drop_window_classes(plan, fails)
        plan = _drop_individual_windows(plan, fails, fails_many)
        plan = _shrink_cuts(plan, fails, fails_many)
        plan = _shrink_intervals(plan, fails, fails_many)
        if plan_size(plan) == before:
            break
    return plan


def shrink_spec(spec, invariant: str, *, max_rounds: int = 16, pool=None):
    """Shrink a failing :class:`~repro.chaos.search.EpisodeSpec`'s plan.

    The predicate re-runs the episode with the candidate plan and checks
    that the *same invariant kind* still trips — a candidate that fails
    differently (or passes) is rejected, so the reproducer reproduces
    the original bug, not merely *a* bug.  Returns a new spec carrying
    the minimized plan.

    ``pool`` is an optional :class:`repro.parallel.WorkerPool` bound to
    :func:`~repro.chaos.search.run_episode`; when given (and running
    more than one job), each shrink round's candidate plans are
    evaluated concurrently.  The accepted candidate is always the one
    the serial scan would accept, so the reproducer is unchanged.
    """
    from repro.chaos.search import rerun_with_plan

    def _trips(result) -> bool:
        return (
            result.violation is not None
            and result.violation["invariant"] == invariant
        )

    def fails(candidate: FaultPlan) -> bool:
        return _trips(rerun_with_plan(spec, candidate))

    fails_many = None
    if pool is not None and pool.jobs > 1:
        def fails_many(candidates: Sequence[FaultPlan]) -> List[bool]:
            results = pool.map([replace(spec, plan=p) for p in candidates])
            return [_trips(r) for r in results]

    small = shrink_plan(spec.plan, fails, max_rounds=max_rounds, fails_many=fails_many)
    return replace(spec, plan=small)
