"""Runtime invariant monitors (``repro.chaos``).

The certifier (:func:`repro.sim.validate.certify_trace`) checks a run
*after* it finishes, from the trace alone.  The :class:`InvariantMonitor`
checks the engine's *live state* every step, so a safety violation is
caught at the step it happens — with the transaction, object, and node
that broke it — instead of surfacing hundreds of steps later as a
mysterious certification failure.  It is an ordinary observability probe
(:class:`repro.obs.probe.Probe`): wire it via ``SimConfig.probe`` (alone
or inside a :class:`~repro.obs.probe.MultiProbe`), and a run without it
is byte-identical to an unmonitored run.

Checked invariants
------------------
``single-holder``
    At most one live transaction holds a writable object: an object's
    ``holder_txn`` must name a known transaction, and while that holder
    is still live nobody else may have popped the object's queue head.
``conservation``
    Objects are conserved across legs and crashes: every registered
    object is either at rest on a real node of ``G`` or in transit to a
    real node with an arrival no earlier than now — never both, never
    neither, never duplicated.  Under elastic membership
    (:class:`repro.faults.MembershipPlan`) an object may never *rest* on
    a departed node: the engine must have a recovery leg in flight by
    the end of the step the leave fired.
``commit-presence``
    A transaction commits only with *all* its written objects at rest at
    its home node (checked independently of the engine's own
    ``_missing_objects`` bookkeeping).
``budget``
    The recovery layer respects ``FaultPlan.max_reschedules``: no
    transaction's reschedule count may exceed the budget.
``monotone-time``
    Steps are observed in strictly increasing time order.
``stall``
    Liveness watchdog: with live transactions present, some transaction
    must commit at least every ``stall_k`` *active steps*; ``stall_k``
    active steps without a commit flag a global stall.  A deadline
    cancellation (:mod:`repro.service`) counts as progress — the system
    resolved a transaction, just not by committing it.
``planted``
    Test-only hook (see :meth:`InvariantMonitor.__init__`): fires when a
    chosen node is crashed while a chosen edge is cut in the same step.
    Exists so the chaos shrinker has a deterministic, minimizable
    target; never enabled outside tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId, TxnState
from repro.errors import ReproError
from repro.obs.probe import Probe


class InvariantViolation(ReproError):
    """A runtime safety/liveness invariant broke mid-run.

    Carries structured context so the chaos harness can match, shrink,
    and replay the exact failure:

    ``invariant``
        The invariant name (``"single-holder"``, ``"conservation"``,
        ``"commit-presence"``, ``"budget"``, ``"monotone-time"``,
        ``"stall"``, ``"planted"``).
    ``step`` / ``tid`` / ``oid`` / ``node``
        Where it happened; ``None`` where not applicable.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        step: Time,
        tid: Optional[TxnId] = None,
        oid: Optional[ObjectId] = None,
        node: Optional[NodeId] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.step = step
        self.tid = tid
        self.oid = oid
        self.node = node
        ctx = [f"t={step}"]
        if tid is not None:
            ctx.append(f"txn={tid}")
        if oid is not None:
            ctx.append(f"oid={oid}")
        if node is not None:
            ctx.append(f"node={node}")
        super().__init__(f"invariant {invariant!r} violated ({', '.join(ctx)}): {detail}")


class InvariantMonitor(Probe):
    """Probe that re-derives the engine's safety invariants every step.

    Parameters
    ----------
    stall_k:
        Liveness watchdog window: this many consecutive *active* steps
        with live transactions but no commit raise a ``"stall"``
        violation.  Sized generously by default — recovery backoff plus
        a long partition can legitimately idle a run for
        ``backoff_cap + longest window`` steps.
    planted:
        Test-only violation hook for the shrinker demo:
        ``{"node": n, "edge": (u, v)}`` raises a ``"planted"`` violation
        at the first step where node ``n`` is crashed *and* edge
        ``(u, v)`` is cut by an active partition.  ``None`` (default)
        disables the hook.
    """

    enabled = True

    def __init__(
        self,
        *,
        stall_k: int = 512,
        planted: Optional[Dict[str, object]] = None,
    ) -> None:
        if stall_k < 1:
            raise ValueError(f"stall_k must be >= 1, got {stall_k}")
        self.stall_k = stall_k
        self.planted = planted
        self.checks_run = 0
        self.sim = None
        self._last_step: Optional[Time] = None
        self._idle_steps = 0
        self._committed_this_step = False

    # -- run lifecycle --------------------------------------------------
    def on_run_begin(self, sim) -> None:
        self.sim = sim
        self._last_step = None
        self._idle_steps = 0

    # -- step structure -------------------------------------------------
    def on_step_begin(self, t: Time) -> None:
        if self._last_step is not None and t <= self._last_step:
            raise InvariantViolation(
                "monotone-time",
                f"step {t} observed after step {self._last_step}",
                step=t,
            )
        self._last_step = t
        self._committed_this_step = False

    def on_step_end(self, t: Time) -> None:
        sim = self.sim
        if sim is None:  # not bound to an engine; nothing to check
            return
        self.checks_run += 1
        self._check_objects(sim, t)
        self._check_budget(sim, t)
        self._check_stall(sim, t)
        if self.planted is not None:
            self._check_planted(sim, t)

    # -- transaction lifecycle ------------------------------------------
    def on_commit(self, txn, t: Time) -> None:
        self._committed_this_step = True
        sim = self.sim
        if sim is None:
            return
        for oid in txn.objects:
            obj = sim.objects[oid]
            if obj.in_transit or obj.location != txn.home:
                where = (
                    f"in transit to {obj.dest}" if obj.in_transit
                    else f"at rest at {obj.location}"
                )
                raise InvariantViolation(
                    "commit-presence",
                    f"txn {txn.tid} committed at home {txn.home} while object "
                    f"{oid} was {where}",
                    step=t,
                    tid=txn.tid,
                    oid=oid,
                    node=txn.home,
                )

    def on_expire(self, tid, t: Time, deadline: Time) -> None:
        # A deadline cancellation resolves a transaction without a
        # commit; the stall watchdog must not count the step as idle.
        self._committed_this_step = True

    # -- individual checks ----------------------------------------------
    def _check_objects(self, sim, t: Time) -> None:
        n = sim.graph.num_nodes
        departed = getattr(sim, "_departed", ())
        for oid, obj in sim.objects.items():
            if obj.oid != oid:
                raise InvariantViolation(
                    "conservation",
                    f"registry key {oid} maps to object {obj.oid}",
                    step=t,
                    oid=oid,
                )
            if obj.in_transit:
                if not 0 <= obj.dest < n:
                    raise InvariantViolation(
                        "conservation",
                        f"object {oid} in transit to non-node {obj.dest}",
                        step=t,
                        oid=oid,
                    )
                if obj.arrive_time < t:
                    raise InvariantViolation(
                        "conservation",
                        f"object {oid} in transit with arrival "
                        f"{obj.arrive_time} in the past",
                        step=t,
                        oid=oid,
                    )
            elif not 0 <= obj.location < n:
                raise InvariantViolation(
                    "conservation",
                    f"object {oid} at rest at non-node {obj.location}",
                    step=t,
                    oid=oid,
                )
            elif obj.location in departed:
                # In-transit *to* a departed node is legal (the arrival
                # handler re-homes the leg); resting there is not.
                raise InvariantViolation(
                    "conservation",
                    f"object {oid} at rest on departed node {obj.location}",
                    step=t,
                    oid=oid,
                    node=obj.location,
                )
            holder = obj.holder_txn
            if holder is not None:
                txn = sim.txns.get(holder)
                if txn is None:
                    raise InvariantViolation(
                        "single-holder",
                        f"object {oid} held by unknown txn {holder}",
                        step=t,
                        oid=oid,
                    )
                # While the holder is live the object may not be in
                # transit away from it: that would put the same writable
                # object in two transactions' hands.
                if txn.state is not TxnState.EXECUTED and obj.in_transit:
                    raise InvariantViolation(
                        "single-holder",
                        f"object {oid} departed while holder txn {holder} "
                        "is still live",
                        step=t,
                        oid=oid,
                        tid=holder,
                    )

    def _check_budget(self, sim, t: Time) -> None:
        inj = sim.faults
        if inj is None or inj.plan.max_reschedules is None:
            return
        budget = inj.plan.max_reschedules
        for tid, count in inj.reschedule_counts.items():
            if count > budget:
                raise InvariantViolation(
                    "budget",
                    f"txn {tid} rescheduled {count} times, budget {budget}",
                    step=t,
                    tid=tid,
                )

    def _check_stall(self, sim, t: Time) -> None:
        if self._committed_this_step or not sim.live:
            self._idle_steps = 0
            return
        self._idle_steps += 1
        if self._idle_steps >= self.stall_k:
            stuck = sorted(sim.live)[:8]
            raise InvariantViolation(
                "stall",
                f"{len(sim.live)} live transactions (e.g. {stuck}) made no "
                f"commit for {self._idle_steps} active steps",
                step=t,
                tid=stuck[0] if stuck else None,
            )

    def _check_planted(self, sim, t: Time) -> None:
        inj = sim.faults
        if inj is None:
            return
        node = self.planted.get("node")
        edge = self.planted.get("edge")
        if node is None or edge is None:
            return
        u, v = edge
        key: Tuple[NodeId, NodeId] = (u, v) if u < v else (v, u)
        if inj.node_down(node, t) and key in inj.active_cut(t):
            raise InvariantViolation(
                "planted",
                f"node {node} crashed while edge {key} cut (test hook)",
                step=t,
                node=node,
            )
