"""Replayable chaos artifacts (schema ``repro.chaos/1``).

A failing (usually shrunk) episode is archived as one self-contained
JSON file: the full :class:`~repro.chaos.search.EpisodeSpec` (topology
spec, scheduler name, workload parameters, serialized fault plan,
monitor options) plus the violation that was observed.  Because an
episode is a pure function of its spec, ``repro chaos replay art.json``
re-runs it bit-for-bit and checks the violation reproduces — same
invariant, same step, same message — making artifacts durable bug
reports that survive across machines and CI runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.chaos.search import EpisodeResult, EpisodeSpec, run_episode
from repro.errors import ReproError

SCHEMA = "repro.chaos/1"


def artifact_dict(result: EpisodeResult) -> Dict[str, object]:
    """The archive form of a failing episode."""
    if result.violation is None:
        raise ReproError("cannot archive a clean episode (no violation)")
    return {
        "schema": SCHEMA,
        "spec": result.spec.to_dict(),
        "violation": dict(result.violation),
    }


def save_artifact(
    result: EpisodeResult, directory: str, *, name: Optional[str] = None
) -> str:
    """Write ``result`` under ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    if name is None:
        inv = result.violation["invariant"] if result.violation else "clean"
        name = f"chaos-{inv}-{result.spec.plan.seed}.json"
    path = os.path.join(directory, name)
    with open(path, "w") as fh:
        json.dump(artifact_dict(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> Tuple[EpisodeSpec, Dict[str, object]]:
    """Read an artifact; returns ``(spec, recorded_violation)``."""
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema != SCHEMA:
        raise ReproError(
            f"artifact {path!r} has schema {schema!r}, expected {SCHEMA!r}"
        )
    return EpisodeSpec.from_dict(data["spec"]), data["violation"]


def replay_artifact(path: str) -> Tuple[EpisodeResult, bool]:
    """Re-run an archived episode and compare against the record.

    Returns ``(result, reproduced)`` where ``reproduced`` is True when
    the replay hit the same violation — byte-identical message, same
    invariant, same step.  A replay that passes cleanly or fails
    differently returns False (the bug moved: environment drift or a
    fix landed).
    """
    spec, recorded = load_artifact(path)
    result = run_episode(spec)
    reproduced = (
        result.violation is not None
        and result.violation["invariant"] == recorded.get("invariant")
        and result.violation["message"] == recorded.get("message")
        and result.violation["step"] == recorded.get("step")
    )
    return result, reproduced
