"""Chaos-search harness: seeded fault sweeps with invariant monitoring.

One **episode** is a full simulation run — topology, scheduler, seeded
workload — under a seeded :class:`repro.faults.FaultPlan` mixing every
fault class (crashes, drops, delays, partitions), with an
:class:`~repro.chaos.invariants.InvariantMonitor` wired in as the probe.
A **sweep** runs many episodes, rotating schedulers and re-drawing the
plan and workload from the episode seed, and collects every failure:
invariant violations, engine errors, uncommitted transactions, and
post-hoc certification failures all count.

Determinism is the contract: an episode is a pure function of its
parameters (the :class:`EpisodeSpec`), so any failing episode can be
re-run bit-for-bit from its spec alone — which is exactly what the
shrinker (:mod:`repro.chaos.shrink`) and replay artifacts
(:mod:`repro.chaos.artifact`) rely on.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.invariants import InvariantMonitor, InvariantViolation
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.parallel import WorkerPool
from repro.workloads.spec import WorkloadSpec

#: Per-process memo of parsed topologies.  A sweep re-runs hundreds of
#: episodes (and the shrinker thousands of candidates) on the same few
#: topology strings; sharing one :class:`~repro.network.graph.Graph` per
#: string also shares its Dijkstra cache.  Safe because graphs are
#: immutable after construction and their cached distances are pure.
_GRAPH_CACHE: Dict[str, object] = {}


def _cached_topology(topology: str):
    graph = _GRAPH_CACHE.get(topology)
    if graph is None:
        from repro.cli import parse_topology

        graph = _GRAPH_CACHE[topology] = parse_topology(topology)
    return graph


def _warm_worker(topology: str) -> None:
    """Pool initializer: build the sweep topology and every Dijkstra row
    once per worker process instead of once per episode."""
    graph = _cached_topology(topology)
    for node in graph.nodes():
        graph.distances_from(node)

#: Default scheduler rotation for sweeps: a cross-section of the bundled
#: families (greedy coloring, adaptive, coordinated, bucket conversion,
#: windowed batching, serial baseline).  All run at object speed 1 and
#: survive fault injection; the distributed schedulers (speed 2, message
#: heavy) can be opted in via the ``schedulers`` argument.
DEFAULT_SCHEDULERS = (
    "greedy",
    "greedy-degree",
    "adaptive",
    "coordinated",
    "bucket",
    "windowed",
    "fifo",
    "tsp",
)


@dataclass(frozen=True)
class EpisodeSpec:
    """Everything needed to re-run one episode bit-for-bit.

    ``workload`` is either a frozen :class:`~repro.workloads.spec.
    WorkloadSpec` or the legacy parameter dict ``{"kind", "objects",
    "k", "seed", ...}`` understood by :func:`make_workload`.  ``planted``
    is the test-only violation hook passed through to the monitor.

    ``lambda_mult`` scales the workload's arrival rate (2.0 = twice the
    drawn traffic — the overload regime); ``deadline_frac`` > 0 enables
    the ingestion front-end (:mod:`repro.service`) and stamps that
    fraction of submissions with a commit deadline, so sweeps exercise
    the shed/expire paths under faults.  Both default to the historical
    behavior (no scaling, no service).
    """

    topology: str
    scheduler: str
    workload: object
    plan: FaultPlan
    stall_k: int = 512
    monitor: bool = True
    planted: Optional[Dict[str, object]] = None
    lambda_mult: float = 1.0
    deadline_frac: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        workload = (
            {"spec": self.workload.to_dict()}
            if isinstance(self.workload, WorkloadSpec)
            else dict(self.workload)
        )
        out: Dict[str, object] = {
            "topology": self.topology,
            "scheduler": self.scheduler,
            "workload": workload,
            "plan": self.plan.to_dict(),
            "stall_k": self.stall_k,
            "monitor": self.monitor,
        }
        if self.planted is not None:
            planted = dict(self.planted)
            if "edge" in planted:
                planted["edge"] = list(planted["edge"])
            out["planted"] = planted
        # Emitted only when non-default so pre-service artifacts and
        # sweep logs round-trip byte-identically.
        if self.lambda_mult != 1.0:
            out["lambda_mult"] = self.lambda_mult
        if self.deadline_frac > 0.0:
            out["deadline_frac"] = self.deadline_frac
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EpisodeSpec":
        planted = data.get("planted")
        if planted is not None:
            planted = dict(planted)
            if "edge" in planted:
                planted["edge"] = tuple(planted["edge"])
        raw = dict(data["workload"])
        workload = (
            WorkloadSpec.from_dict(raw["spec"]) if set(raw) == {"spec"} else raw
        )
        return cls(
            topology=data["topology"],
            scheduler=data["scheduler"],
            workload=workload,
            plan=FaultPlan.from_dict(data["plan"]),
            stall_k=data.get("stall_k", 512),
            monitor=data.get("monitor", True),
            planted=planted,
            lambda_mult=float(data.get("lambda_mult", 1.0)),
            deadline_frac=float(data.get("deadline_frac", 0.0)),
        )


@dataclass
class EpisodeResult:
    """Outcome of one episode."""

    spec: EpisodeSpec
    committed: int = 0
    generated: int = 0
    makespan: int = 0
    end_time: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    reschedules: int = 0
    checks_run: int = 0
    #: service-mode outcomes (0 unless the episode enabled the
    #: ingestion front-end via ``deadline_frac``)
    expired: int = 0
    shed: int = 0
    #: structured failure, or None for a clean episode:
    #: {"invariant", "detail", "message", "step", "tid", "oid", "node"}
    violation: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def to_dict(self) -> Dict[str, object]:
        out = {
            "spec": self.spec.to_dict(),
            "committed": self.committed,
            "generated": self.generated,
            "makespan": self.makespan,
            "end_time": self.end_time,
            "fault_counts": dict(self.fault_counts),
            "reschedules": self.reschedules,
            "checks_run": self.checks_run,
            "violation": self.violation,
        }
        if self.expired:
            out["expired"] = self.expired
        if self.shed:
            out["shed"] = self.shed
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EpisodeResult":
        return cls(
            spec=EpisodeSpec.from_dict(data["spec"]),
            committed=data.get("committed", 0),
            generated=data.get("generated", 0),
            makespan=data.get("makespan", 0),
            end_time=data.get("end_time", 0),
            fault_counts=dict(data.get("fault_counts", {})),
            reschedules=data.get("reschedules", 0),
            checks_run=data.get("checks_run", 0),
            expired=data.get("expired", 0),
            shed=data.get("shed", 0),
            violation=data.get("violation"),
        )


def make_workload(graph, params):
    """Build the episode workload from its description.

    ``params`` is a :class:`~repro.workloads.spec.WorkloadSpec` (built
    directly) or the legacy parameter dict whose ``kind`` is ``"batch"``
    (all transactions at t=0) or ``"bernoulli"`` (per-node coin flips
    over ``horizon`` steps at ``rate``).
    """
    from repro.workloads import BatchWorkload, OnlineWorkload

    if isinstance(params, WorkloadSpec):
        return params.build(graph)
    kind = params.get("kind", "batch")
    objects = int(params.get("objects", 6))
    k = int(params.get("k", 2))
    seed = int(params.get("seed", 0))
    if kind == "batch":
        return BatchWorkload.uniform(graph, objects, k, seed=seed)
    if kind == "bernoulli":
        rate = float(params.get("rate", 1.0 / graph.num_nodes))
        horizon = int(params.get("horizon", 50))
        return OnlineWorkload.bernoulli(
            graph, objects, k, rate=rate, horizon=horizon, seed=seed
        )
    raise ReproError(f"unknown chaos workload kind {params.get('kind')!r}")


#: base value of each arrival-rate knob when the spec leaves it default
_RATE_DEFAULTS = {"lam": 0.5, "lam_on": 1.0, "rate": 0.5}


def _scale_rate(workload, mult: float, graph):
    """The episode workload with its arrival rate scaled by ``mult``."""
    if isinstance(workload, WorkloadSpec):
        if workload.kind == "bernoulli":
            knob, default = "rate", 0.05
        else:
            from repro.analysis.frontier import rate_knob

            knob = rate_knob(workload.kind)
            default = _RATE_DEFAULTS[knob]
        return workload.with_knobs(
            **{knob: float(workload.knob(knob, default)) * mult}
        )
    params = dict(workload)
    if params.get("kind", "batch") != "bernoulli":
        raise ReproError(
            "lambda_mult needs an arrival-rate workload "
            f"(got legacy kind {params.get('kind', 'batch')!r})"
        )
    base = float(params.get("rate", 1.0 / graph.num_nodes))
    params["rate"] = base * mult
    return params


def _violation_dict(exc: InvariantViolation) -> Dict[str, object]:
    return {
        "invariant": exc.invariant,
        "detail": exc.detail,
        "message": str(exc),
        "step": exc.step,
        "tid": exc.tid,
        "oid": exc.oid,
        "node": exc.node,
    }


def run_episode(spec: EpisodeSpec) -> EpisodeResult:
    """Run one episode; never raises on a fault-layer failure.

    Invariant violations, engine errors (deadlock, infeasibility,
    reschedule-budget exhaustion), uncommitted transactions at
    quiescence, and post-hoc certification failures are all folded into
    ``result.violation``; genuinely broken specs (unknown scheduler or
    topology) still raise.
    """
    # Function-level imports: repro.cli imports repro.chaos for the
    # ``chaos`` subcommand, so the factories are pulled lazily here to
    # keep the layering acyclic.
    from repro.cli import make_scheduler
    from repro.sim.config import SimConfig
    from repro.sim.engine import Simulator
    from repro.sim.validate import certify_trace

    graph = _cached_topology(spec.topology)
    if spec.plan.membership is not None and spec.plan.membership.joins:
        # Joins mutate the engine's graph (Graph.add_node); give such
        # episodes a private copy so the shared per-process cache stays
        # pristine.  The copy shares the cached oracle until the first
        # join detaches it.
        graph = graph.copy()
    scheduler, speed = make_scheduler(spec.scheduler, graph)
    workload_params = spec.workload
    if spec.lambda_mult != 1.0:
        workload_params = _scale_rate(workload_params, spec.lambda_mult, graph)
    workload = make_workload(graph, workload_params)
    probe = (
        InvariantMonitor(stall_k=spec.stall_k, planted=spec.planted)
        if spec.monitor
        else None
    )
    service = None
    if spec.deadline_frac > 0.0:
        from repro.service import ServiceConfig

        if isinstance(workload_params, WorkloadSpec):
            wl_seed = workload_params.seed
            horizon = int(workload_params.knob("horizon", 64))
        else:
            wl_seed = int(workload_params.get("seed", 0))
            horizon = int(workload_params.get("horizon", 64))
        service = ServiceConfig(
            policy="fifo",
            deadline=max(4, horizon // 4),
            deadline_frac=spec.deadline_frac,
            seed=wl_seed,
        )
    config = SimConfig(
        faults=spec.plan, probe=probe, object_speed_den=speed, service=service
    )
    result = EpisodeResult(spec=spec)
    try:
        sim = Simulator(graph, scheduler, workload, config=config)
        trace = sim.run()
    except InvariantViolation as exc:
        result.violation = _violation_dict(exc)
    except ReproError as exc:
        result.violation = {
            "invariant": "engine-error",
            "detail": f"{type(exc).__name__}: {exc}",
            "message": str(exc),
            "step": None,
            "tid": None,
            "oid": None,
            "node": None,
        }
    else:
        result.committed = trace.num_txns
        result.generated = len(sim.txns)
        result.makespan = trace.makespan()
        result.end_time = trace.end_time
        result.fault_counts = trace.fault_counts()
        result.reschedules = len(trace.reschedules)
        result.expired = len(trace.expiries)
        result.shed = len(trace.sheds)
        # Liveness counts *resolved* transactions: a deadline expiry
        # cancelled its transaction deliberately (service mode), so only
        # work that neither committed nor expired is left behind.
        if result.committed + result.expired < result.generated:
            expired_tids = {e.tid for e in trace.expiries}
            missing = sorted(
                tid
                for tid in sim.txns
                if tid not in trace.txns and tid not in expired_tids
            )[:8]
            result.violation = {
                "invariant": "liveness",
                "detail": (
                    f"{result.generated - result.committed - result.expired} "
                    f"of {result.generated} transactions never resolved "
                    f"(e.g. {missing})"
                ),
                "message": "uncommitted transactions at quiescence",
                "step": trace.end_time,
                "tid": missing[0] if missing else None,
                "oid": None,
                "node": None,
            }
        else:
            issues = certify_trace(graph, trace, raise_on_failure=False)
            if issues:
                result.violation = {
                    "invariant": "certify",
                    "detail": "; ".join(str(i) for i in issues[:5]),
                    "message": f"{len(issues)} certification issues",
                    "step": trace.end_time,
                    "tid": None,
                    "oid": None,
                    "node": None,
                }
    if probe is not None:
        result.checks_run = probe.checks_run
    return result


def episode_spec(
    index: int,
    *,
    seed: int = 0,
    topology: str = "ring:12",
    schedulers: Tuple[str, ...] = DEFAULT_SCHEDULERS,
    workload_kind: str = "bernoulli",
    objects: int = 6,
    k: int = 2,
    horizon: int = 40,
    drop: float = 0.05,
    delay: float = 0.1,
    max_delay: int = 3,
    crashes: int = 1,
    crash_len: int = 6,
    partitions: int = 1,
    partition_len: int = 8,
    joins: int = 0,
    leaves: int = 0,
    stall_k: int = 512,
    monitor: bool = True,
    planted: Optional[Dict[str, object]] = None,
    lambda_mult: float = 1.0,
    deadline_frac: float = 0.0,
) -> EpisodeSpec:
    """The ``index``-th episode of a sweep: scheduler rotates round-robin,
    fault plan and workload are drawn from a per-episode seed derived by
    the same string-keyed RNG the injector uses.  ``joins`` / ``leaves``
    add elastic-membership churn to every drawn plan.  ``planted``
    forwards the monitor's test-only violation hook to every generated
    spec.  ``lambda_mult`` / ``deadline_frac`` forward the overload and
    deadline knobs (see :class:`EpisodeSpec`)."""
    ep_seed = random.Random(f"{seed}|chaos-episode|{index}").randrange(2**31)
    graph = _cached_topology(topology)
    plan = FaultPlan.random(
        ep_seed,
        num_nodes=graph.num_nodes,
        horizon=horizon,
        drop_prob=drop,
        delay_prob=delay,
        max_delay=max_delay,
        crash_count=crashes,
        crash_len=crash_len,
        partition_count=partitions,
        partition_len=partition_len,
        join_count=joins,
        leave_count=leaves,
        edges=[(u, v) for u, v, _ in graph.edges()],
    )
    workload: Dict[str, object] = {
        "kind": workload_kind,
        "objects": objects,
        "k": k,
        "seed": ep_seed,
    }
    if workload_kind == "bernoulli":
        workload["horizon"] = horizon
    return EpisodeSpec(
        topology=topology,
        scheduler=schedulers[index % len(schedulers)],
        workload=workload,
        plan=plan,
        stall_k=stall_k,
        monitor=monitor,
        planted=planted,
        lambda_mult=lambda_mult,
        deadline_frac=deadline_frac,
    )


@dataclass
class SweepResult:
    """Outcome of a chaos sweep."""

    episodes: List[EpisodeResult] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[EpisodeResult]:
        return [r for r in self.episodes if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, object]:
        fault_totals: Dict[str, int] = {}
        for r in self.episodes:
            for kind, count in r.fault_counts.items():
                fault_totals[kind] = fault_totals.get(kind, 0) + count
        out = {
            "episodes": len(self.episodes),
            "violations": len(self.violations),
            "committed": sum(r.committed for r in self.episodes),
            "reschedules": sum(r.reschedules for r in self.episodes),
            "invariant_checks": sum(r.checks_run for r in self.episodes),
            "fault_counts": fault_totals,
            "schedulers": sorted({r.spec.scheduler for r in self.episodes}),
            "artifacts": list(self.artifacts),
        }
        expired = sum(r.expired for r in self.episodes)
        shed = sum(r.shed for r in self.episodes)
        if expired or shed:
            out["expired"] = expired
            out["shed"] = shed
        return out


def _load_sweep_log(path: str) -> Dict[int, Dict[str, object]]:
    """Completed-episode records from a resumable sweep log.

    One JSON object per line, keyed by episode index.  A torn final line
    (the writer was killed mid-append) is silently dropped — that episode
    simply re-runs.
    """
    done: Dict[int, Dict[str, object]] = {}
    try:
        fh = open(path)
    except FileNotFoundError:
        return done
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn final line from an interrupted run
            done[int(rec["index"])] = rec
    return done


def run_sweep(
    episodes: int,
    *,
    seed: int = 0,
    shrink: bool = False,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[EpisodeResult], None]] = None,
    jobs: int = 1,
    specs: Optional[Sequence[EpisodeSpec]] = None,
    resume_path: Optional[str] = None,
    **episode_kwargs,
) -> SweepResult:
    """Run ``episodes`` seeded chaos episodes; optionally minimize and
    archive every failure.

    With ``shrink=True`` each failing episode's fault plan is
    delta-debugged down to a smallest still-failing reproducer
    (:func:`repro.chaos.shrink.shrink_spec`); with ``artifact_dir`` set,
    each (minimized) failure is written as a replayable JSON artifact.
    ``episode_kwargs`` are forwarded to :func:`episode_spec`.

    ``jobs`` > 1 fans the episodes (and the shrinker's candidate plans)
    out over a process pool (:mod:`repro.parallel`).  Episodes are pure
    functions of their spec and results are merged by episode index, so
    the sweep result — episode order, shrunk plans, artifacts — is
    identical to a serial run for any worker count.

    ``specs`` overrides episode generation with an explicit list of
    :class:`EpisodeSpec` to run (``episodes``/``episode_kwargs`` are then
    ignored); artifacts and progress behave exactly as for generated
    specs.

    ``resume_path`` makes the sweep crash-resumable: each finished
    episode (post-shrink) is appended to the JSONL log as it completes,
    and a restarted sweep with the same path replays logged episodes
    from the log instead of re-running them.  Episodes are pure
    functions of their spec, so the merged result is identical to an
    uninterrupted sweep.
    """
    from repro.chaos.artifact import save_artifact
    from repro.chaos.shrink import shrink_spec

    if specs is None:
        specs = [episode_spec(i, seed=seed, **episode_kwargs) for i in range(episodes)]
    else:
        specs = list(specs)
    topology = specs[0].topology if specs else "ring:12"

    done: Dict[int, Dict[str, object]] = {}
    log_fh = None
    if resume_path is not None:
        done = _load_sweep_log(resume_path)
        log_fh = open(resume_path, "a")

    out = SweepResult()
    try:
        with WorkerPool(
            run_episode, jobs=jobs, initializer=_warm_worker, initargs=(topology,)
        ) as pool:
            # Serial runs stream episode-by-episode (progress fires as
            # each completes); parallel runs map everything first and
            # then post-process in episode order, which yields the same
            # results.  Already-logged episodes are never re-mapped.
            todo = [s for i, s in enumerate(specs) if i not in done]
            mapped = iter(pool.map(todo) if pool.jobs > 1 else [])
            for i, spec in enumerate(specs):
                if i in done:
                    rec = done[i]
                    result = EpisodeResult.from_dict(rec["result"])
                    if rec.get("artifact"):
                        out.artifacts.append(rec["artifact"])
                    out.episodes.append(result)
                    if progress is not None:
                        progress(result)
                    continue
                result = next(mapped) if pool.jobs > 1 else run_episode(spec)
                if result.violation is not None and shrink:
                    small = shrink_spec(
                        spec, result.violation["invariant"], pool=pool
                    )
                    result = run_episode(small)
                    if result.violation is None:  # shrink must preserve failure
                        result = run_episode(spec)
                artifact_path = None
                if result.violation is not None and artifact_dir is not None:
                    artifact_path = save_artifact(
                        result, artifact_dir, name=f"chaos-{seed}-{i:04d}.json"
                    )
                    out.artifacts.append(artifact_path)
                if log_fh is not None:
                    rec = {"index": i, "result": result.to_dict()}
                    if artifact_path is not None:
                        rec["artifact"] = artifact_path
                    log_fh.write(json.dumps(rec) + "\n")
                    log_fh.flush()
                out.episodes.append(result)
                if progress is not None:
                    progress(result)
    finally:
        if log_fh is not None:
            log_fh.close()
    return out


def rerun_with_plan(spec: EpisodeSpec, plan: FaultPlan) -> EpisodeResult:
    """Re-run ``spec`` with a substituted fault plan (shrinker probe)."""
    return run_episode(replace(spec, plan=plan))
