"""Deterministic, seeded fault injection (``repro.faults``).

The paper's model — and the engine's default mode — assumes a perfectly
reliable synchronous network: objects always arrive, nodes never crash,
and a missed execution time is a hard :class:`InfeasibleScheduleError`.
This module lets a run *violate* those assumptions on purpose, so the
recovery machinery (engine ``RESCHEDULE`` events + the
``OnlineScheduler.on_reschedule`` hook) can be exercised and measured:

* **Node crash-stop/restart** — a :class:`CrashWindow` takes one node
  offline for ``[start, end)``: nothing departs from it, arrivals and
  control-message deliveries addressed to it are suppressed until the
  restart step, generation and execution at the node are deferred.
* **Object-leg drops** — with probability ``drop_prob`` a planned master
  object leg is lost: the object silently stays at its source (the last
  confirmed holder) and nobody learns until a transaction misses its
  execution time; recovery then re-requests the object and reschedules.
* **Bounded delay jitter** — with probability ``delay_prob`` an object
  leg (or a control message) takes up to ``max_delay`` extra steps.

Every decision is drawn from ``random.Random`` seeded with a *string*
key derived from ``(plan.seed, decision kind, decision coordinates)``.
String seeding hashes via SHA-512, so the same :class:`FaultPlan` yields
byte-identical fault decisions across processes and runs regardless of
``PYTHONHASHSEED`` — the acceptance test for deterministic replay.

A frozen :class:`FaultPlan` travels on ``SimConfig.faults``; the engine
realizes it as a :class:`FaultInjector` (per-run mutable state: lost
objects, reschedule counts) plus a
:class:`~repro.sim.transport.FaultyTransport` decorator around the
configured transport.  ``faults=None`` (the default) leaves every code
path untouched and every golden trace byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.errors import WorkloadError


@dataclass(frozen=True)
class CrashWindow:
    """One crash-stop/restart interval: ``node`` is down for
    ``start <= t < end`` and processes its backlog at ``end``."""

    node: NodeId
    start: Time
    end: Time

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise WorkloadError(
                f"crash window [{self.start}, {self.end}) for node {self.node} is empty or negative"
            )

    @property
    def duration(self) -> Time:
        return self.end - self.start


@dataclass(frozen=True)
class FaultPlan:
    """Frozen description of every fault a run will suffer.

    Attributes
    ----------
    seed:
        Root of all randomness; two runs with equal plans (and equal
        graph/workload) produce byte-identical certified traces.
    drop_prob:
        Per-departure probability that a master object leg is lost.
        Must be < 1 so retransmissions eventually succeed (liveness).
    delay_prob:
        Per-departure (and per-message) probability of extra latency.
    max_delay:
        Upper bound, in steps, of the injected extra latency (>= 1 when
        ``delay_prob`` > 0).
    crashes:
        Crash-stop/restart windows (see :class:`CrashWindow`).
    backoff_base / backoff_cap:
        Exponential backoff of recovery reschedules: the ``n``-th
        reschedule of one transaction waits at least
        ``min(cap, base * 2**(n-1))`` steps.
    max_reschedules:
        Per-transaction reschedule budget; ``None`` (default) means
        recovery never gives up.  When exceeded the engine raises
        :class:`~repro.errors.InfeasibleScheduleError`.
    """

    seed: int = 0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: Time = 0
    crashes: Tuple[CrashWindow, ...] = ()
    backoff_base: Time = 1
    backoff_cap: Time = 64
    max_reschedules: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        if not 0.0 <= self.drop_prob < 1.0:
            raise WorkloadError(
                f"drop_prob must be in [0, 1) for liveness, got {self.drop_prob}"
            )
        if not 0.0 <= self.delay_prob <= 1.0:
            raise WorkloadError(f"delay_prob must be in [0, 1], got {self.delay_prob}")
        if self.max_delay < 0:
            raise WorkloadError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay < 1:
            raise WorkloadError("delay_prob > 0 requires max_delay >= 1")
        if self.backoff_base < 1:
            raise WorkloadError(f"backoff_base must be >= 1, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise WorkloadError("backoff_cap must be >= backoff_base")
        if self.max_reschedules is not None and self.max_reschedules < 1:
            raise WorkloadError("max_reschedules must be >= 1 (or None for unlimited)")

    @property
    def active(self) -> bool:
        """True when the plan can actually inject something."""
        return bool(self.drop_prob or self.delay_prob or self.crashes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_nodes: int,
        horizon: Time,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        max_delay: Time = 0,
        crash_count: int = 0,
        crash_len: Time = 8,
        **kwargs,
    ) -> "FaultPlan":
        """A plan whose crash windows are drawn from the seed.

        ``crash_count`` windows of ``crash_len`` steps each are placed on
        uniformly random nodes at uniformly random starts in
        ``[1, horizon]``.  Placement uses the same string-keyed RNG as
        runtime decisions, so the whole plan is one function of ``seed``.
        """
        if crash_count < 0 or crash_len < 1:
            raise WorkloadError("crash_count must be >= 0 and crash_len >= 1")
        if num_nodes < 1 or horizon < 1:
            raise WorkloadError("num_nodes and horizon must be >= 1")
        rng = random.Random(f"{seed}|crash-windows")
        windows = []
        for _ in range(crash_count):
            node = rng.randrange(num_nodes)
            start = rng.randint(1, horizon)
            windows.append(CrashWindow(node, start, start + crash_len))
        return cls(
            seed=seed,
            drop_prob=drop_prob,
            delay_prob=delay_prob,
            max_delay=max_delay,
            crashes=tuple(windows),
            **kwargs,
        )

    @classmethod
    def parse(cls, spec: str, *, num_nodes: int, horizon: Time) -> "FaultPlan":
        """Parse the CLI spelling ``seed=S,drop=P,delay=P,max-delay=N,crash=K,crash-len=L``.

        ``crash=K`` draws K random crash windows (see :meth:`random`);
        unknown keys raise :class:`~repro.errors.WorkloadError`.
        """
        known = {
            "seed": 0, "drop": 0.0, "delay": 0.0, "max-delay": 0,
            "crash": 0, "crash-len": 8, "backoff-cap": 64,
        }
        values = dict(known)
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, raw = part.partition("=")
            if not sep or key not in known:
                raise WorkloadError(
                    f"bad --faults entry {part!r} (known keys: {sorted(known)})"
                )
            try:
                values[key] = float(raw) if key in ("drop", "delay") else int(raw)
            except ValueError:
                raise WorkloadError(f"bad --faults value for {key!r}: {raw!r}") from None
        if values["delay"] > 0 and values["max-delay"] == 0:
            values["max-delay"] = 3  # a sensible default jitter bound
        return cls.random(
            int(values["seed"]),
            num_nodes=num_nodes,
            horizon=max(1, horizon),
            drop_prob=values["drop"],
            delay_prob=values["delay"],
            max_delay=int(values["max-delay"]),
            crash_count=int(values["crash"]),
            crash_len=int(values["crash-len"]),
            backoff_cap=int(values["backoff-cap"]),
        )


class FaultInjector:
    """Per-run realization of a :class:`FaultPlan`.

    Holds the mutable recovery state (lost objects, per-transaction
    reschedule counts) and answers the engine's and transport's fault
    queries.  All probabilistic answers are pure functions of
    ``(plan.seed, decision kind, decision coordinates)`` — see module
    docstring — so replaying the same run re-draws the same faults.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._windows: Dict[NodeId, List[CrashWindow]] = {}
        for w in plan.crashes:
            self._windows.setdefault(w.node, []).append(w)
        for windows in self._windows.values():
            windows.sort(key=lambda w: (w.start, w.end))
        #: oid -> node where the object actually remained when its leg
        #: was dropped (the last confirmed holder)
        self.lost: Dict[ObjectId, NodeId] = {}
        #: per-transaction reschedule counts (drives exponential backoff)
        self.reschedule_counts: Dict[TxnId, int] = {}

    # ------------------------------------------------------------------
    # seeded decisions
    # ------------------------------------------------------------------
    def _coin(self, *key: object) -> float:
        parts = "|".join(str(k) for k in (self.plan.seed,) + key)
        return random.Random(parts).random()

    def should_drop(self, oid: ObjectId, t: Time) -> bool:
        """Lose the master leg of ``oid`` departing at ``t``?"""
        p = self.plan.drop_prob
        return bool(p) and self._coin("drop", oid, t) < p

    def leg_delay(self, oid: ObjectId, t: Time) -> Time:
        """Extra steps injected into the leg of ``oid`` departing at ``t``."""
        return self._jitter("leg", oid, t)

    def message_delay(self, src: NodeId, dst: NodeId, kind: str, t: Time) -> Time:
        """Extra latency for a control message sent at ``t``."""
        return self._jitter("msg", src, dst, kind, t)

    def _jitter(self, *key: object) -> Time:
        p = self.plan.delay_prob
        if not p or self._coin("delay?", *key) >= p:
            return 0
        span = self.plan.max_delay
        return 1 + int(self._coin("delay", *key) * span) if span > 1 else 1

    # ------------------------------------------------------------------
    # crash windows
    # ------------------------------------------------------------------
    def node_down(self, node: NodeId, t: Time) -> bool:
        """Is ``node`` crashed at step ``t``?"""
        return self.restart_time(node, t) is not None

    def restart_time(self, node: NodeId, t: Time) -> Optional[Time]:
        """First step >= ``t`` at which ``node`` is up again, or ``None``
        if it is not down at ``t``.  Overlapping/adjacent windows chain."""
        windows = self._windows.get(node)
        if not windows:
            return None
        up: Time = t
        moved = True
        while moved:
            moved = False
            for w in windows:
                if w.start <= up < w.end:
                    up = w.end
                    moved = True
        return up if up != t else None

    # ------------------------------------------------------------------
    # recovery bookkeeping
    # ------------------------------------------------------------------
    def mark_lost(self, oid: ObjectId, node: NodeId) -> None:
        self.lost[oid] = node

    def clear_lost(self, oid: ObjectId) -> None:
        self.lost.pop(oid, None)

    def recover_lost(self, oid: ObjectId) -> Optional[NodeId]:
        """Pop and return the last confirmed holder of a lost object."""
        return self.lost.pop(oid, None)

    def bump_reschedules(self, tid: TxnId) -> int:
        """Count one more reschedule of ``tid``; returns the new count."""
        n = self.reschedule_counts.get(tid, 0) + 1
        self.reschedule_counts[tid] = n
        return n

    def backoff_for(self, n: int) -> Time:
        """Backoff before the ``n``-th reschedule: ``min(cap, base * 2**(n-1))``."""
        base, cap = self.plan.backoff_base, self.plan.backoff_cap
        return min(cap, base << min(n - 1, 40))

    @property
    def total_reschedules(self) -> int:
        return sum(self.reschedule_counts.values())
