"""Deterministic, seeded fault injection (``repro.faults``).

The paper's model — and the engine's default mode — assumes a perfectly
reliable synchronous network: objects always arrive, nodes never crash,
and a missed execution time is a hard :class:`InfeasibleScheduleError`.
This module lets a run *violate* those assumptions on purpose, so the
recovery machinery (engine ``RESCHEDULE`` events + the
``OnlineScheduler.on_reschedule`` hook) can be exercised and measured:

* **Node crash-stop/restart** — a :class:`CrashWindow` takes one node
  offline for ``[start, end)``: nothing departs from it, arrivals and
  control-message deliveries addressed to it are suppressed until the
  restart step, generation and execution at the node are deferred.
* **Object-leg drops** — with probability ``drop_prob`` a planned master
  object leg is lost: the object silently stays at its source (the last
  confirmed holder) and nobody learns until a transaction misses its
  execution time; recovery then re-requests the object and reschedules.
* **Bounded delay jitter** — with probability ``delay_prob`` an object
  leg (or a control message) takes up to ``max_delay`` extra steps.
* **Network partitions** — a :class:`PartitionWindow` severs a set of
  edges of ``G`` for ``[start, end)``: object legs whose shortest path
  crosses the cut are rerouted along an intact path (with recomputed,
  longer distances) or blocked until the heal step when the cut
  disconnects source from target; control messages addressed across the
  cut are deferred to heal time.

Every decision is drawn from ``random.Random`` seeded with a *string*
key derived from ``(plan.seed, decision kind, decision coordinates)``.
String seeding hashes via SHA-512, so the same :class:`FaultPlan` yields
byte-identical fault decisions across processes and runs regardless of
``PYTHONHASHSEED`` — the acceptance test for deterministic replay.

A frozen :class:`FaultPlan` travels on ``SimConfig.faults``; the engine
realizes it as a :class:`FaultInjector` (per-run mutable state: lost
objects, reschedule counts) plus a
:class:`~repro.sim.transport.FaultyTransport` decorator around the
configured transport.  ``faults=None`` (the default) leaves every code
path untouched and every golden trace byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.errors import WorkloadError
from repro.network.graph import normalize_cut


@dataclass(frozen=True)
class CrashWindow:
    """One crash-stop/restart interval: ``node`` is down for
    ``start <= t < end`` and processes its backlog at ``end``."""

    node: NodeId
    start: Time
    end: Time

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise WorkloadError(
                f"crash window [{self.start}, {self.end}) for node {self.node} is empty or negative"
            )

    @property
    def duration(self) -> Time:
        return self.end - self.start


@dataclass(frozen=True)
class PartitionWindow:
    """One network partition: the edges of ``cut`` are severed for
    ``start <= t < end`` and the graph heals at ``end``.

    ``cut`` is stored normalized — each edge as ``(min, max)``, sorted,
    deduplicated — so equal cuts compare and hash equal regardless of
    the spelling they were built from.
    """

    cut: Tuple[Tuple[NodeId, NodeId], ...]
    start: Time
    end: Time

    def __post_init__(self) -> None:
        edges = tuple(sorted(normalize_cut(self.cut)))
        object.__setattr__(self, "cut", edges)
        if not edges:
            raise WorkloadError(
                f"partition window [{self.start}, {self.end}) has an empty cut"
            )
        if self.start < 0 or self.end <= self.start:
            raise WorkloadError(
                f"partition window [{self.start}, {self.end}) is empty or negative"
            )

    @property
    def duration(self) -> Time:
        return self.end - self.start

    @property
    def cut_set(self) -> frozenset:
        """The cut as a normalized frozenset (graph cache key form)."""
        return frozenset(self.cut)


@dataclass(frozen=True)
class JoinEvent:
    """One node joining the graph at runtime.

    ``node`` must be the next unused id at join time (graph nodes stay
    dense); ``edges`` are ``(anchor, weight)`` pairs attaching it to
    existing members.  Multi-anchor joins must satisfy the **no-shortcut
    condition** — ``w_i + w_j >= d(a_i, a_j)`` for every anchor pair — so
    a join never shortens any distance between pre-existing nodes.  That
    invariant is what keeps already-planned legs, bucket levels, and the
    final-graph certification valid across churn; it is checked by
    :meth:`FaultPlan.validate_against`.
    """

    node: NodeId
    time: Time
    edges: Tuple[Tuple[NodeId, Time], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "edges", tuple(sorted((int(a), int(w)) for a, w in self.edges))
        )
        if self.time < 1:
            raise WorkloadError(f"join of node {self.node} must be at t >= 1, got {self.time}")
        if not self.edges:
            raise WorkloadError(f"join of node {self.node} has no anchor edges")
        for a, w in self.edges:
            if w < 1:
                raise WorkloadError(
                    f"join of node {self.node} has non-positive weight {w} to anchor {a}"
                )


@dataclass(frozen=True)
class LeaveEvent:
    """One node leaving the graph at runtime.

    ``graceful`` leaves drain first: the node stops accepting new
    transaction homes, existing work finishes, resting home objects are
    migrated, and only then does the node depart.  Abrupt leaves are a
    permanent crash: live transactions homed there are re-homed to the
    nearest member and resting objects are recovered from the node (their
    last confirmed position) immediately.
    """

    node: NodeId
    time: Time
    graceful: bool = False

    def __post_init__(self) -> None:
        if self.time < 1:
            raise WorkloadError(
                f"leave of node {self.node} must be at t >= 1, got {self.time}"
            )


@dataclass(frozen=True)
class MembershipPlan:
    """Elastic-membership schedule: nodes joining and leaving at runtime.

    Leaves are *data-plane* removals: the :class:`~repro.network.graph.
    Graph` object is not mutated (distances from/through the departed
    node stay defined for recovery legs), but the
    :class:`FaultInjector`'s *routing cut* permanently severs the node's
    incident edges for object motion, and the engine re-homes its work.
    Joins *do* mutate the graph (new node, cache flush, oracle
    invalidation) under the no-shortcut condition (:class:`JoinEvent`).
    """

    joins: Tuple[JoinEvent, ...] = ()
    leaves: Tuple[LeaveEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "joins", tuple(sorted(self.joins, key=lambda j: (j.time, j.node)))
        )
        object.__setattr__(
            self, "leaves", tuple(sorted(self.leaves, key=lambda l: (l.time, l.node)))
        )

    @property
    def active(self) -> bool:
        return bool(self.joins or self.leaves)

    def to_dict(self) -> Dict[str, object]:
        return {
            "joins": [[j.node, j.time, [list(e) for e in j.edges]] for j in self.joins],
            "leaves": [[l.node, l.time, l.graceful] for l in self.leaves],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MembershipPlan":
        return cls(
            joins=tuple(
                JoinEvent(n, t, tuple(tuple(e) for e in edges))
                for n, t, edges in data.get("joins", [])
            ),
            leaves=tuple(
                LeaveEvent(n, t, bool(g)) for n, t, g in data.get("leaves", [])
            ),
        )


def _connected_excluding(num_nodes, neighbors_of, removed) -> bool:
    """Do the nodes ``0..num_nodes-1`` minus ``removed`` form one
    connected component?  ``neighbors_of(u)`` yields u's neighbour ids;
    ids >= ``num_nodes`` (runtime-joined nodes) are ignored."""
    survivors = [v for v in range(num_nodes) if v not in removed]
    if not survivors:
        return False
    seen = {survivors[0]}
    stack = [survivors[0]]
    while stack:
        u = stack.pop()
        for v in neighbors_of(u):
            if v < num_nodes and v not in removed and v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(survivors)


def _survivors_connected(graph, removed) -> bool:
    return _connected_excluding(graph.num_nodes, graph.neighbors, removed)


#: Hard cap on the exponential-backoff shift: the floor grows at most to
#: ``base * 2**BACKOFF_SHIFT_CAP`` (= base * 1024) no matter how many
#: reschedules a pathological run accumulates, so the next attempt can
#: never be pushed astronomically past ``max_time`` by the exponent alone.
BACKOFF_SHIFT_CAP = 10


@dataclass(frozen=True)
class FaultPlan:
    """Frozen description of every fault a run will suffer.

    Attributes
    ----------
    seed:
        Root of all randomness; two runs with equal plans (and equal
        graph/workload) produce byte-identical certified traces.
    drop_prob:
        Per-departure probability that a master object leg is lost.
        Must be < 1 so retransmissions eventually succeed (liveness).
    delay_prob:
        Per-departure (and per-message) probability of extra latency.
    max_delay:
        Upper bound, in steps, of the injected extra latency (>= 1 when
        ``delay_prob`` > 0).
    crashes:
        Crash-stop/restart windows (see :class:`CrashWindow`).
    partitions:
        Network-partition windows (see :class:`PartitionWindow`): sets
        of edges severed for an interval, healed at its end.
    backoff_base / backoff_cap:
        Exponential backoff of recovery reschedules: the ``n``-th
        reschedule of one transaction waits at least
        ``min(cap, base * 2**min(n-1, BACKOFF_SHIFT_CAP))`` steps — the
        shift itself is capped at :data:`BACKOFF_SHIFT_CAP` (2**10) so a
        pathological reschedule count cannot push the floor past any
        realistic ``max_time``.
    max_reschedules:
        Per-transaction reschedule budget; ``None`` (default) means
        recovery never gives up.  When exceeded the engine raises
        :class:`~repro.errors.InfeasibleScheduleError`.
    membership:
        Optional :class:`MembershipPlan` of runtime joins and leaves
        (elastic membership).  ``None`` keeps the node set fixed and
        every pre-membership trace byte-identical.
    """

    seed: int = 0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: Time = 0
    crashes: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    backoff_base: Time = 1
    backoff_cap: Time = 64
    max_reschedules: Optional[int] = None
    membership: Optional[MembershipPlan] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        if not 0.0 <= self.drop_prob < 1.0:
            raise WorkloadError(
                f"drop_prob must be in [0, 1) for liveness, got {self.drop_prob}"
            )
        if not 0.0 <= self.delay_prob <= 1.0:
            raise WorkloadError(f"delay_prob must be in [0, 1], got {self.delay_prob}")
        if self.max_delay < 0:
            raise WorkloadError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.delay_prob > 0 and self.max_delay < 1:
            raise WorkloadError("delay_prob > 0 requires max_delay >= 1")
        if self.backoff_base < 1:
            raise WorkloadError(f"backoff_base must be >= 1, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise WorkloadError("backoff_cap must be >= backoff_base")
        if self.max_reschedules is not None and self.max_reschedules < 1:
            raise WorkloadError("max_reschedules must be >= 1 (or None for unlimited)")
        if self.membership is not None and not isinstance(self.membership, MembershipPlan):
            raise WorkloadError(
                "membership must be a MembershipPlan or None, "
                f"got {type(self.membership).__name__}"
            )

    @property
    def active(self) -> bool:
        """True when the plan can actually inject something."""
        return bool(
            self.drop_prob
            or self.delay_prob
            or self.crashes
            or self.partitions
            or (self.membership is not None and self.membership.active)
        )

    def validate_against(self, graph) -> None:
        """Check every node and edge the plan names against ``graph``.

        The engine calls this when it binds the plan, so a typo'd crash
        node or a partition edge that does not exist in ``G`` fails fast
        with an error naming the offending value instead of silently
        never firing.
        """
        n = graph.num_nodes
        for w in self.crashes:
            if not 0 <= w.node < n:
                raise WorkloadError(
                    f"fault plan crash window [{w.start}, {w.end}) names node "
                    f"{w.node}, outside the graph's 0..{n - 1}"
                )
        for p in self.partitions:
            for u, v in p.cut:
                if not (0 <= u < n and 0 <= v < n):
                    raise WorkloadError(
                        f"fault plan partition [{p.start}, {p.end}) cuts edge "
                        f"({u}, {v}) with a node outside the graph's 0..{n - 1}"
                    )
                if not graph.has_edge(u, v):
                    raise WorkloadError(
                        f"fault plan partition [{p.start}, {p.end}) cuts "
                        f"({u}, {v}), which is not an edge of {graph.name!r}"
                    )
        if self.membership is not None and self.membership.active:
            self._validate_membership(graph)

    def _validate_membership(self, graph) -> None:
        """Membership-vs-graph checks: node ranges, dense join ids, anchor
        validity, survivor connectivity after every leave prefix, and the
        no-shortcut condition for multi-anchor joins — each error names
        the offending node so a typo'd plan fails at bind, not mid-run."""
        m = self.membership
        n = graph.num_nodes
        seen: set = set()
        for l in m.leaves:
            if not 0 <= l.node < n:
                raise WorkloadError(
                    f"membership plan leave at t={l.time} names node {l.node}, "
                    f"outside the graph's 0..{n - 1} (joined nodes cannot leave)"
                )
            if l.node in seen:
                raise WorkloadError(
                    f"membership plan has duplicate leave of node {l.node}"
                )
            seen.add(l.node)
        if len(seen) >= n:
            raise WorkloadError(
                f"membership plan removes all {n} nodes of {graph.name!r}; "
                "at least one member must remain"
            )
        leave_time = {l.node: l.time for l in m.leaves}
        for i, j in enumerate(m.joins):
            expect = n + i
            if j.node != expect:
                raise WorkloadError(
                    f"membership plan join #{i} (t={j.time}) must use the next "
                    f"dense node id {expect}, got {j.node}"
                )
            for a, _w in j.edges:
                if not 0 <= a < expect:
                    raise WorkloadError(
                        f"membership plan join of node {j.node} anchors on node "
                        f"{a}, which does not exist at t={j.time} "
                        f"(ids 0..{expect - 1})"
                    )
                at = leave_time.get(a)
                if at is not None and at <= j.time:
                    raise WorkloadError(
                        f"membership plan join of node {j.node} at t={j.time} "
                        f"anchors on node {a}, which left at t={at}"
                    )
        # Survivor connectivity after every leave prefix (time order):
        # object routing avoids departed nodes' edges, so removing a
        # member must never disconnect the remaining original members.
        # (Joined nodes only ever add paths; ignoring them here is
        # conservative.)
        removed: set = set()
        for l in m.leaves:
            removed.add(l.node)
            if not _survivors_connected(graph, removed):
                raise WorkloadError(
                    f"membership plan leave of node {l.node} at t={l.time} "
                    f"disconnects the surviving members of {graph.name!r}"
                )
        # No-shortcut condition: a join must not shorten any distance
        # between pre-existing nodes (single-anchor joins are trivially
        # safe — the new node is a dead end for through-traffic).
        if any(len(j.edges) > 1 for j in m.joins):
            scratch = graph.copy(oracle=False)
            for j in m.joins:
                for i1 in range(len(j.edges)):
                    a1, w1 = j.edges[i1]
                    for i2 in range(i1 + 1, len(j.edges)):
                        a2, w2 = j.edges[i2]
                        d = scratch.distance(a1, a2)
                        if w1 + w2 < d:
                            raise WorkloadError(
                                f"membership plan join of node {j.node} violates "
                                f"the no-shortcut condition: anchors {a1} and "
                                f"{a2} with weights {w1}+{w2} < "
                                f"d({a1},{a2})={d} would shorten existing paths"
                            )
                scratch.add_node(j.edges)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_nodes: int,
        horizon: Time,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        max_delay: Time = 0,
        crash_count: int = 0,
        crash_len: Time = 8,
        partition_count: int = 0,
        partition_len: Time = 8,
        join_count: int = 0,
        leave_count: int = 0,
        edges=None,
        **kwargs,
    ) -> "FaultPlan":
        """A plan whose crash and partition windows are drawn from the seed.

        ``crash_count`` windows of ``crash_len`` steps each are placed on
        uniformly random nodes at uniformly random starts in
        ``[1, horizon]``.  ``partition_count`` windows of
        ``partition_len`` steps each cut either one uniformly random edge
        or (every other draw, roughly) every edge incident to one random
        node — the cut that actually splits ``G``.  Partition windows
        always heal by ``horizon + partition_len``.  Drawing partitions
        requires ``edges`` (the graph's ``(u, v)`` pairs, e.g.
        ``[(u, v) for u, v, _ in graph.edges()]``) because a cut must
        name real edges.  Placement uses the same string-keyed RNG as
        runtime decisions, so the whole plan is one function of ``seed``.

        ``join_count`` / ``leave_count`` draw elastic-membership churn: each
        join attaches a new node to one uniformly random anchor with a
        weight-1 edge (single-anchor joins satisfy the no-shortcut
        condition trivially); leaves pick random members, coin-flip
        graceful vs. abrupt, and re-draw any choice whose removal would
        disconnect the surviving members (requires ``edges``).  When no
        safe leave remains the plan carries fewer leaves than asked —
        liveness beats quota.
        """
        if crash_count < 0 or crash_len < 1:
            raise WorkloadError("crash_count must be >= 0 and crash_len >= 1")
        if partition_count < 0 or partition_len < 1:
            raise WorkloadError("partition_count must be >= 0 and partition_len >= 1")
        if join_count < 0 or leave_count < 0:
            raise WorkloadError("join_count and leave_count must be >= 0")
        if num_nodes < 1 or horizon < 1:
            raise WorkloadError("num_nodes and horizon must be >= 1")
        rng = random.Random(f"{seed}|crash-windows")
        windows = []
        for _ in range(crash_count):
            node = rng.randrange(num_nodes)
            start = rng.randint(1, horizon)
            windows.append(CrashWindow(node, start, start + crash_len))
        cuts: List[PartitionWindow] = []
        if partition_count:
            if not edges:
                raise WorkloadError(
                    "partition_count > 0 requires edges= (the graph's (u, v) "
                    "pairs) so the drawn cuts name real edges"
                )
            edge_list = sorted(normalize_cut(edges))
            prng = random.Random(f"{seed}|partition-windows")
            for _ in range(partition_count):
                start = prng.randint(1, horizon)
                if prng.random() < 0.5 and num_nodes > 1:
                    # Isolate one node: cut every edge incident to it.
                    node = prng.randrange(num_nodes)
                    cut = tuple(e for e in edge_list if node in e)
                    if not cut:  # isolated node has no edges; fall back
                        cut = (edge_list[prng.randrange(len(edge_list))],)
                else:
                    cut = (edge_list[prng.randrange(len(edge_list))],)
                cuts.append(PartitionWindow(cut, start, start + partition_len))
        membership = None
        if join_count or leave_count:
            mrng = random.Random(f"{seed}|membership")
            leaves: List[LeaveEvent] = []
            if leave_count:
                if not edges:
                    raise WorkloadError(
                        "leave_count > 0 requires edges= (the graph's (u, v) "
                        "pairs) so drawn leaves keep the survivors connected"
                    )
                adj: Dict[NodeId, List[NodeId]] = {}
                for u, v in normalize_cut(edges):
                    adj.setdefault(u, []).append(v)
                    adj.setdefault(v, []).append(u)
                removed: set = set()
                times = sorted(mrng.randint(1, horizon) for _ in range(leave_count))
                for t in times:
                    candidates = [v for v in range(num_nodes) if v not in removed]
                    mrng.shuffle(candidates)
                    chosen = None
                    for v in candidates:
                        trial = removed | {v}
                        if len(trial) < num_nodes and _connected_excluding(
                            num_nodes, lambda u: adj.get(u, ()), trial
                        ):
                            chosen = v
                            break
                    if chosen is None:
                        break  # no safe leave remains; carry fewer leaves
                    removed.add(chosen)
                    leaves.append(
                        LeaveEvent(chosen, t, graceful=mrng.random() < 0.5)
                    )
            leave_time = {l.node: l.time for l in leaves}
            joins: List[JoinEvent] = []
            # Times first, sorted: join ids must be dense in time order.
            jtimes = sorted(mrng.randint(1, horizon) for _ in range(join_count))
            for i, t in enumerate(jtimes):
                present = [
                    v for v in range(num_nodes)
                    if leave_time.get(v, horizon + t + 1) > t
                ]
                anchor = present[mrng.randrange(len(present))]
                joins.append(JoinEvent(num_nodes + i, t, ((anchor, 1),)))
            membership = MembershipPlan(joins=tuple(joins), leaves=tuple(leaves))
        return cls(
            seed=seed,
            drop_prob=drop_prob,
            delay_prob=delay_prob,
            max_delay=max_delay,
            crashes=tuple(windows),
            partitions=tuple(cuts),
            membership=membership,
            **kwargs,
        )

    @classmethod
    def parse(cls, spec: str, *, num_nodes: int, horizon: Time, edges=None) -> "FaultPlan":
        """Parse the CLI spelling
        ``seed=S,drop=P,delay=P,max-delay=N,crash=K,crash-len=L,partition=K,partition-len=L``.

        ``crash=K`` / ``partition=K`` draw K random crash / partition
        windows; ``join=K`` / ``leave=K`` draw K membership joins /
        leaves (see :meth:`random`; ``partition`` and ``leave`` require
        ``edges``).
        Unknown keys and *duplicate* keys raise
        :class:`~repro.errors.WorkloadError` naming the offending key —
        a silently ignored or last-write-wins entry would make a typo'd
        fault spec run a different experiment than the one asked for.
        """
        known = {
            "seed": 0, "drop": 0.0, "delay": 0.0, "max-delay": 0,
            "crash": 0, "crash-len": 8, "partition": 0, "partition-len": 8,
            "join": 0, "leave": 0, "backoff-cap": 64,
        }
        values = dict(known)
        seen = set()
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, raw = part.partition("=")
            if not sep or key not in known:
                raise WorkloadError(
                    f"bad --faults entry {part!r} (known keys: {sorted(known)})"
                )
            if key in seen:
                raise WorkloadError(f"duplicate --faults key {key!r}")
            seen.add(key)
            try:
                values[key] = float(raw) if key in ("drop", "delay") else int(raw)
            except ValueError:
                raise WorkloadError(f"bad --faults value for {key!r}: {raw!r}") from None
        if values["delay"] > 0 and values["max-delay"] == 0:
            values["max-delay"] = 3  # a sensible default jitter bound
        return cls.random(
            int(values["seed"]),
            num_nodes=num_nodes,
            horizon=max(1, horizon),
            drop_prob=values["drop"],
            delay_prob=values["delay"],
            max_delay=int(values["max-delay"]),
            crash_count=int(values["crash"]),
            crash_len=int(values["crash-len"]),
            partition_count=int(values["partition"]),
            partition_len=int(values["partition-len"]),
            join_count=int(values["join"]),
            leave_count=int(values["leave"]),
            edges=edges,
            backoff_cap=int(values["backoff-cap"]),
        )

    # ------------------------------------------------------------------
    # serialization (chaos artifacts; repro.chaos.artifact)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation; inverse of :meth:`from_dict`.

        The ``membership`` key is only present when the plan has churn,
        so pre-membership artifacts stay byte-identical."""
        data = {
            "seed": self.seed,
            "drop_prob": self.drop_prob,
            "delay_prob": self.delay_prob,
            "max_delay": self.max_delay,
            "crashes": [[w.node, w.start, w.end] for w in self.crashes],
            "partitions": [
                [[list(e) for e in p.cut], p.start, p.end] for p in self.partitions
            ],
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "max_reschedules": self.max_reschedules,
        }
        if self.membership is not None and self.membership.active:
            data["membership"] = self.membership.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict`."""
        return cls(
            seed=data.get("seed", 0),
            drop_prob=data.get("drop_prob", 0.0),
            delay_prob=data.get("delay_prob", 0.0),
            max_delay=data.get("max_delay", 0),
            crashes=tuple(
                CrashWindow(n, s, e) for n, s, e in data.get("crashes", [])
            ),
            partitions=tuple(
                PartitionWindow(tuple(tuple(e) for e in cut), s, e)
                for cut, s, e in data.get("partitions", [])
            ),
            backoff_base=data.get("backoff_base", 1),
            backoff_cap=data.get("backoff_cap", 64),
            max_reschedules=data.get("max_reschedules"),
            membership=(
                MembershipPlan.from_dict(data["membership"])
                if "membership" in data
                else None
            ),
        )


class FaultInjector:
    """Per-run realization of a :class:`FaultPlan`.

    Holds the mutable recovery state (lost objects, per-transaction
    reschedule counts) and answers the engine's and transport's fault
    queries.  All probabilistic answers are pure functions of
    ``(plan.seed, decision kind, decision coordinates)`` — see module
    docstring — so replaying the same run re-draws the same faults.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._windows: Dict[NodeId, List[CrashWindow]] = {}
        for w in plan.crashes:
            self._windows.setdefault(w.node, []).append(w)
        for windows in self._windows.values():
            windows.sort(key=lambda w: (w.start, w.end))
        self._partitions: Tuple[PartitionWindow, ...] = tuple(
            sorted(plan.partitions, key=lambda p: (p.start, p.end, p.cut))
        )
        #: memo of the last ``active_cut`` query — the same step asks
        #: several times (departures, message deliveries)
        self._cut_at: Optional[Time] = None
        self._cut_memo: frozenset = frozenset()
        #: oid -> node where the object actually remained when its leg
        #: was dropped (the last confirmed holder)
        self.lost: Dict[ObjectId, NodeId] = {}
        #: per-transaction reschedule counts (drives exponential backoff)
        self.reschedule_counts: Dict[TxnId, int] = {}
        #: node -> leave step for members that departed permanently
        #: (elastic membership; filled by the engine via mark_departed)
        self.departed: Dict[NodeId, Time] = {}
        #: permanent routing cut: every departed member's incident edges
        self._member_cut: frozenset = frozenset()

    # ------------------------------------------------------------------
    # seeded decisions
    # ------------------------------------------------------------------
    def _coin(self, *key: object) -> float:
        parts = "|".join(str(k) for k in (self.plan.seed,) + key)
        return random.Random(parts).random()

    def should_drop(self, oid: ObjectId, t: Time) -> bool:
        """Lose the master leg of ``oid`` departing at ``t``?"""
        p = self.plan.drop_prob
        return bool(p) and self._coin("drop", oid, t) < p

    def leg_delay(self, oid: ObjectId, t: Time) -> Time:
        """Extra steps injected into the leg of ``oid`` departing at ``t``."""
        return self._jitter("leg", oid, t)

    def message_delay(self, src: NodeId, dst: NodeId, kind: str, t: Time) -> Time:
        """Extra latency for a control message sent at ``t``."""
        return self._jitter("msg", src, dst, kind, t)

    def _jitter(self, *key: object) -> Time:
        p = self.plan.delay_prob
        if not p or self._coin("delay?", *key) >= p:
            return 0
        span = self.plan.max_delay
        return 1 + int(self._coin("delay", *key) * span) if span > 1 else 1

    # ------------------------------------------------------------------
    # crash windows
    # ------------------------------------------------------------------
    def node_down(self, node: NodeId, t: Time) -> bool:
        """Is ``node`` crashed at step ``t``?"""
        return self.restart_time(node, t) is not None

    def restart_time(self, node: NodeId, t: Time) -> Optional[Time]:
        """First step >= ``t`` at which ``node`` is up again, or ``None``
        if it is not down at ``t``.  Overlapping/adjacent windows chain."""
        windows = self._windows.get(node)
        if not windows:
            return None
        up: Time = t
        moved = True
        while moved:
            moved = False
            for w in windows:
                if w.start <= up < w.end:
                    up = w.end
                    moved = True
        return up if up != t else None

    # ------------------------------------------------------------------
    # partition windows
    # ------------------------------------------------------------------
    def active_cut(self, t: Time) -> frozenset:
        """Union of all cuts active at step ``t`` (normalized edge set;
        empty when no partition window covers ``t``)."""
        if t == self._cut_at:
            return self._cut_memo
        cut: set = set()
        for p in self._partitions:
            if p.start <= t < p.end:
                cut.update(p.cut)
        out = frozenset(cut)
        self._cut_at, self._cut_memo = t, out
        return out

    def heal_time(self, t: Time) -> Optional[Time]:
        """Earliest step > ``t`` at which the active cut *shrinks* — the
        nearest ``end`` among windows covering ``t`` — or ``None`` when
        no partition is active.  Blocked work retries there and
        re-checks: the remaining cut may still separate it."""
        ends = [p.end for p in self._partitions if p.start <= t < p.end]
        return min(ends) if ends else None

    # ------------------------------------------------------------------
    # elastic membership (engine-driven; see repro.faults.MembershipPlan)
    # ------------------------------------------------------------------
    def mark_departed(self, node: NodeId, edges, t: Time) -> None:
        """Record that ``node`` left at ``t``: its incident ``edges`` join
        the permanent routing cut applied to object legs.  Control
        messages are untouched — the message layer is membership-blind by
        design, so every scheduler protocol stays live across churn."""
        self.departed[node] = t
        self._member_cut = self._member_cut | normalize_cut(edges)

    def node_departed(self, node: NodeId) -> bool:
        """Has ``node`` permanently left the membership?"""
        return node in self.departed

    def routing_cut(self, t: Time) -> frozenset:
        """Edges an object leg must avoid at ``t``: the partition cut
        active at ``t`` plus every departed member's incident edges."""
        member = self._member_cut
        if not member:
            return self.active_cut(t)
        return self.active_cut(t) | member

    def partition_separates(self, graph, src: NodeId, dst: NodeId, t: Time) -> bool:
        """Does the cut active at ``t`` disconnect ``src`` from ``dst``?"""
        if src == dst:
            return False
        cut = self.active_cut(t)
        if not cut:
            return False
        return graph.distance_avoiding(src, dst, cut) == float("inf")

    # ------------------------------------------------------------------
    # recovery bookkeeping
    # ------------------------------------------------------------------
    def mark_lost(self, oid: ObjectId, node: NodeId) -> None:
        self.lost[oid] = node

    def clear_lost(self, oid: ObjectId) -> None:
        self.lost.pop(oid, None)

    def recover_lost(self, oid: ObjectId) -> Optional[NodeId]:
        """Pop and return the last confirmed holder of a lost object."""
        return self.lost.pop(oid, None)

    def bump_reschedules(self, tid: TxnId) -> int:
        """Count one more reschedule of ``tid``; returns the new count."""
        n = self.reschedule_counts.get(tid, 0) + 1
        self.reschedule_counts[tid] = n
        return n

    def backoff_for(self, n: int) -> Time:
        """Backoff before the ``n``-th reschedule:
        ``min(cap, base * 2**min(n-1, BACKOFF_SHIFT_CAP))``.

        The exponent is clamped at :data:`BACKOFF_SHIFT_CAP` (2**10)
        *before* the cap is applied, so even a plan with a huge
        ``backoff_cap`` cannot let a pathological reschedule count grow
        the floor geometrically forever.
        """
        base, cap = self.plan.backoff_base, self.plan.backoff_cap
        return min(cap, base << min(n - 1, BACKOFF_SHIFT_CAP))

    @property
    def total_reschedules(self) -> int:
        return sum(self.reschedule_counts.values())
