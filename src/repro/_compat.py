"""Small version-compatibility helpers.

The library supports Python >= 3.9; a few CPython niceties we want on
the hot path (``dataclass(slots=True)``) only exist from 3.10.  This
module centralizes the conditional so call sites stay declarative.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass


def slotted_dataclass(**kwargs):
    """``@dataclass(slots=True, **kwargs)`` where supported, else plain.

    ``slots=True`` removes the per-instance ``__dict__`` from hot classes
    (SharedObject, Transaction, trace records), shrinking memory and
    speeding attribute access.  On 3.9 the flag does not exist, so the
    decorator degrades to a regular dataclass — behaviour is identical,
    only the memory layout differs.
    """
    if sys.version_info >= (3, 10):
        return dataclass(slots=True, **kwargs)
    return dataclass(**kwargs)
