"""Weighted communication graph ``G = (V, E, w)`` (paper Section II).

The graph is immutable after construction.  Shortest-path distances are the
only geometry the schedulers consume, so :class:`Graph` centralises a lazily
cached single-source Dijkstra; repeated queries (the hot path of every
scheduler) are dictionary lookups.  Following the HPC guides, we avoid
recomputing anything inside scheduler loops: one Dijkstra per touched source,
ever.

Structured topologies go further: their constructors attach a
:class:`repro.network.oracles.DistanceOracle` with closed-form O(1)
distances, and :meth:`Graph.distance` / :meth:`distances_from` /
:meth:`diameter` / :meth:`eccentricity` / :meth:`ball` dispatch to it —
no Dijkstra row is ever built, which is what lets the kernel run at
10^4-10^6 nodes.  Oracle answers are bit-identical to the fallback (see
the exactness contract in :mod:`repro.network.oracles`), so traces do not
change.  Cut-aware queries (partition windows) always take the explicit
path: a cut invalidates any closed form.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro._types import NodeId, Weight
from repro.errors import GraphError

_Edge = Tuple[NodeId, NodeId, Weight]

#: A normalized edge cut: frozenset of ``(u, v)`` pairs with ``u < v``.
Cut = frozenset


def normalize_cut(edges: Iterable[Tuple[NodeId, NodeId]]) -> Cut:
    """Canonical form of an edge set: ``frozenset`` of ``(min, max)`` pairs.

    Used as the cache key for cut-aware shortest paths and as the stored
    form of :class:`repro.faults.PartitionWindow` cuts, so two spellings
    of the same cut share one Dijkstra cache entry.
    """
    return frozenset((u, v) if u < v else (v, u) for u, v in edges)


class Graph:
    """An undirected, connected, positively weighted graph.

    Parameters
    ----------
    num_nodes:
        Nodes are ``0 .. num_nodes-1``.
    edges:
        Iterable of ``(u, v, w)`` triples with ``w > 0``.  Parallel edges
        keep the minimum weight; self-loops are rejected.
    name:
        Optional human-readable label (topology constructors set this).
    oracle:
        Optional :class:`repro.network.oracles.DistanceOracle` answering
        distance queries in closed form (attached by the structured
        topology constructors; ``None`` for arbitrary graphs).
    """

    #: Max cached cut-aware Dijkstra results (per ``(cut, src)`` pair).
    #: Plain ``_dist`` rows stay unbounded — there are at most ``n`` of
    #: them — but a long chaos sweep can touch thousands of distinct
    #: cuts, so ``_cut_sssp`` evicts least-recently-used entries past
    #: this cap.  Eviction only discards cached work; distances are
    #: recomputed identically on the next query.
    CUT_CACHE_MAX = 256

    #: Max cached oracle-built distance rows.  Unlike Dijkstra rows
    #: (expensive to rebuild, hence unbounded) an oracle row is O(n)
    #: arithmetic, so the cache is purely a hot-loop convenience and can
    #: be evicted freely — at n = 10^5 an unbounded row cache would
    #: quietly re-materialize the O(n^2) matrix the oracle exists to
    #: avoid.
    ORACLE_ROW_CACHE_MAX = 64

    def __init__(
        self, num_nodes: int, edges: Iterable[_Edge], name: str = "", oracle=None
    ) -> None:
        if num_nodes <= 0:
            raise GraphError(f"graph needs at least one node, got {num_nodes}")
        self._n = int(num_nodes)
        self.name = name or f"graph(n={num_nodes})"
        self._adj: List[Dict[NodeId, Weight]] = [dict() for _ in range(self._n)]
        for u, v, w in edges:
            self._check_node(u)
            self._check_node(v)
            if u == v:
                raise GraphError(f"self-loop at node {u}")
            if w <= 0:
                raise GraphError(f"edge ({u},{v}) has non-positive weight {w}")
            old = self._adj[u].get(v)
            if old is None or w < old:
                self._adj[u][v] = w
                self._adj[v][u] = w
        #: closed-form distance oracle (None = Dijkstra fallback)
        self.oracle = oracle
        # Lazy caches.
        self._dist: Dict[NodeId, List[Weight]] = {}
        self._pred: Dict[NodeId, List[Optional[NodeId]]] = {}
        self._oracle_rows: "OrderedDict[NodeId, List[Weight]]" = OrderedDict()
        self._cut_sssp: "OrderedDict[Tuple[Cut, NodeId], Tuple[List[Weight], List[Optional[NodeId]]]]" = OrderedDict()
        self._diameter: Optional[Weight] = None
        if self._n > 1 and all(not a for a in self._adj):
            raise GraphError("graph with more than one node has no edges")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    def __len__(self) -> int:
        return self._n

    def nodes(self) -> range:
        """All node ids, ``0 .. n-1``."""
        return range(self._n)

    def edges(self) -> Iterator[_Edge]:
        """Each undirected edge once, as ``(u, v, w)`` with ``u < v``."""
        for u in range(self._n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(a) for a in self._adj) // 2

    def neighbors(self, u: NodeId) -> Dict[NodeId, Weight]:
        """Adjacency map ``{v: w(u,v)}`` of ``u`` (do not mutate)."""
        self._check_node(u)
        return self._adj[u]

    def degree(self, u: NodeId) -> int:
        """Number of neighbours of ``u``."""
        return len(self.neighbors(u))

    # ------------------------------------------------------------------
    # elastic membership (repro.faults joins)
    # ------------------------------------------------------------------
    def add_node(self, edges: Iterable[Tuple[NodeId, Weight]]) -> NodeId:
        """Attach one new node with anchor ``(node, weight)`` edges; returns
        the new node's id (always the next dense id ``n``).

        This is the single sanctioned mutation of an otherwise immutable
        graph, used by elastic membership joins.  All distance caches are
        flushed and any closed-form oracle is detached — a mutated
        structured topology no longer matches its closed forms, so queries
        fall back to (re-)cached Dijkstra.  Callers enforce the no-shortcut
        condition (new edges never shorten existing pairwise distances) so
        previously returned distances stay valid even though the caches
        are rebuilt.
        """
        anchors = list(edges)
        if not anchors:
            raise GraphError("add_node needs at least one anchor edge")
        new = self._n
        for a, w in anchors:
            self._check_node(a)
            if w <= 0:
                raise GraphError(f"edge ({a},{new}) has non-positive weight {w}")
        self._n = new + 1
        self._adj.append({})
        for a, w in anchors:
            old = self._adj[new].get(a)
            if old is None or w < old:
                self._adj[new][a] = w
                self._adj[a][new] = w
        self.oracle = None
        self._dist.clear()
        self._pred.clear()
        self._oracle_rows.clear()
        self._cut_sssp.clear()
        self._diameter = None
        return new

    def copy(self, *, oracle: bool = True) -> "Graph":
        """Fresh :class:`Graph` with the same nodes/edges (caches empty).

        ``oracle=False`` drops the closed-form oracle so the copy can be
        mutated (membership validation dry-runs joins on such a scratch
        copy without touching the caller's graph).
        """
        return Graph(
            self._n,
            self.edges(),
            name=self.name,
            oracle=self.oracle if oracle else None,
        )

    def _check_node(self, u: NodeId) -> None:
        if not 0 <= u < self._n:
            raise GraphError(f"node {u} outside 0..{self._n - 1}")

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def _sssp(self, src: NodeId) -> List[Weight]:
        """Single-source Dijkstra with predecessor recording, cached."""
        cached = self._dist.get(src)
        if cached is not None:
            return cached
        inf = float("inf")
        dist: List[Weight] = [inf] * self._n
        pred: List[Optional[NodeId]] = [None] * self._n
        dist[src] = 0
        heap: List[Tuple[Weight, NodeId]] = [(0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u].items():
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, v))
        if any(d == inf for d in dist):
            raise GraphError(f"graph {self.name!r} is disconnected (from node {src})")
        self._dist[src] = dist
        self._pred[src] = pred
        return dist

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        """Shortest-path distance ``d_G(u, v)``."""
        # Hot path 1: closed-form oracle — O(1), no row ever built.
        orc = self.oracle
        if orc is not None:
            if 0 <= u < self._n and 0 <= v < self._n:
                return orc.distance(u, v)
            self._check_node(u)
            self._check_node(v)
        # Hot path 2: one dict probe when the source row is already cached.
        row = self._dist.get(u)
        if row is not None:
            if 0 <= v < self._n:
                return row[v]
            self._check_node(v)
        self._check_node(u)
        self._check_node(v)
        # Reuse whichever endpoint is already cached to keep the cache small.
        if v in self._dist:
            u, v = v, u
        return self._sssp(u)[v]

    def distances_from(self, src: NodeId) -> Sequence[Weight]:
        """Distances from ``src`` to every node (cached; do not mutate).

        With an oracle the row is filled by closed-form arithmetic (O(n),
        no heap) and cached in a small LRU — cheap to rebuild, and an
        unbounded cache would re-materialize the O(n^2) matrix at scale.
        Dijkstra rows (arbitrary graphs) stay unbounded as before: there
        are at most n of them and each is expensive to recompute.
        """
        self._check_node(src)
        orc = self.oracle
        if orc is not None:
            rows = self._oracle_rows
            row = rows.get(src)
            if row is None:
                row = orc.row(src)
                rows[src] = row
                while len(rows) > self.ORACLE_ROW_CACHE_MAX:
                    rows.popitem(last=False)
            else:
                rows.move_to_end(src)
            return row
        return self._sssp(src)

    def predecessors(self, src: NodeId) -> List[Optional[NodeId]]:
        """Shortest-path-tree predecessor array rooted at ``src``.

        Always runs (and caches) the explicit Dijkstra even when a
        distance oracle is attached: callers such as the Arrow directory
        need the tree *structure*, which the closed forms don't carry.
        Do not mutate the returned list.
        """
        self._check_node(src)
        if src not in self._pred:
            self._sssp(src)
        return self._pred[src]

    def shortest_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """One shortest path from ``u`` to ``v`` as a node list (inclusive)."""
        self._check_node(u)
        self._check_node(v)
        self._sssp(u)
        pred = self._pred[u]
        path = [v]
        while path[-1] != u:
            p = pred[path[-1]]
            assert p is not None
            path.append(p)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # cut-aware shortest paths (repro.faults partition windows)
    # ------------------------------------------------------------------
    def _sssp_avoiding(
        self, src: NodeId, cut: Cut
    ) -> Tuple[List[Weight], List[Optional[NodeId]]]:
        """Dijkstra from ``src`` ignoring the edges of ``cut``.

        Unlike :meth:`_sssp`, unreachable nodes keep distance ``inf``
        instead of raising — a partition *is* a temporary disconnection.
        Results are cached per ``(cut, src)`` with LRU eviction past
        :data:`CUT_CACHE_MAX`: during a partition window the same few
        cuts are queried every step, while a long chaos sweep cycling
        through thousands of distinct cuts must not grow without bound.
        """
        cached = self._cut_sssp.get((cut, src))
        if cached is not None:
            self._cut_sssp.move_to_end((cut, src))
            return cached
        inf = float("inf")
        dist: List[Weight] = [inf] * self._n
        pred: List[Optional[NodeId]] = [None] * self._n
        dist[src] = 0
        heap: List[Tuple[Weight, NodeId]] = [(0, src)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u].items():
                if ((u, v) if u < v else (v, u)) in cut:
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, v))
        self._cut_sssp[(cut, src)] = (dist, pred)
        while len(self._cut_sssp) > self.CUT_CACHE_MAX:
            self._cut_sssp.popitem(last=False)
        return dist, pred

    def distance_avoiding(self, u: NodeId, v: NodeId, cut: Cut) -> Weight:
        """Shortest-path distance in ``G`` minus the edges of ``cut``.

        Returns ``float('inf')`` when the cut separates ``u`` from ``v``.
        ``cut`` must be normalized (see :func:`normalize_cut`); an empty
        cut falls back to the plain cached :meth:`distance`.
        """
        if not cut:
            return self.distance(u, v)
        self._check_node(u)
        self._check_node(v)
        return self._sssp_avoiding(u, cut)[0][v]

    def shortest_path_avoiding(
        self, u: NodeId, v: NodeId, cut: Cut
    ) -> Optional[List[NodeId]]:
        """One shortest ``u``-``v`` path avoiding ``cut``, or ``None``
        when the cut separates the endpoints."""
        if not cut:
            return self.shortest_path(u, v)
        self._check_node(u)
        self._check_node(v)
        dist, pred = self._sssp_avoiding(u, cut)
        if dist[v] == float("inf"):
            return None
        path = [v]
        while path[-1] != u:
            p = pred[path[-1]]
            assert p is not None
            path.append(p)
        path.reverse()
        return path

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when ``{u, v}`` is an edge of ``G``."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def eccentricity(self, u: NodeId) -> Weight:
        """Maximum distance from ``u`` to any node (closed form with an
        oracle; max over the cached Dijkstra row otherwise)."""
        if self.oracle is not None:
            self._check_node(u)
            return self.oracle.eccentricity(u)
        return max(self.distances_from(u))

    def diameter(self) -> Weight:
        """Graph diameter ``D`` (maximum pairwise shortest-path distance).

        O(1) with an oracle; the fallback materializes every Dijkstra row
        (O(n^2)) exactly as before — one reason arbitrary graphs stay
        small while structured topologies scale.
        """
        if self._diameter is None:
            if self.oracle is not None:
                self._diameter = self.oracle.diameter()
            else:
                self._diameter = max(self.eccentricity(u) for u in self.nodes())
        return self._diameter

    def ball(self, u: NodeId, radius: Weight) -> List[NodeId]:
        """Nodes within distance ``radius`` of ``u`` (the *r-neighborhood*)."""
        d = self.distances_from(u)
        return [v for v in self.nodes() if d[v] <= radius]

    #: Alias matching the paper's "r-neighborhood" vocabulary.
    neighborhood = ball

    # ------------------------------------------------------------------
    # derived metrics used by lower bounds
    # ------------------------------------------------------------------
    def metric_mst_weight(self, subset: Sequence[NodeId]) -> Weight:
        """Weight of the minimum spanning tree of ``subset`` in the metric
        induced by shortest-path distances.

        Any walk that visits all of ``subset`` has length at least this
        weight, which makes it a valid lower bound on the travel time of a
        single object that must reach every node of ``subset``
        (cf. DESIGN.md S12, the object-MST lower bound).
        Duplicates in ``subset`` are ignored.
        """
        pts = sorted(set(subset))
        for p in pts:
            self._check_node(p)
        if len(pts) <= 1:
            return 0
        # Prim's algorithm on the metric closure; O(s^2) distance lookups.
        in_tree = {pts[0]}
        best: Dict[NodeId, Weight] = {}
        d0 = self.distances_from(pts[0])
        for p in pts[1:]:
            best[p] = d0[p]
        total: Weight = 0
        while best:
            nxt = min(best, key=lambda p: best[p])
            total += best.pop(nxt)
            in_tree.add(nxt)
            dn = self.distances_from(nxt)
            for p in list(best):
                if dn[p] < best[p]:
                    best[p] = dn[p]
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, n={self._n}, m={self.num_edges()})"
