"""Interop with networkx: import arbitrary graphs, export for analysis.

Downstream users often already have their datacenter/NoC topology as a
``networkx`` graph; :func:`from_networkx` adopts it (relabelling nodes to
``0..n-1``), and :func:`to_networkx` exports ours so the whole networkx
toolbox (centrality, drawing, generators) applies to scheduling studies.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import networkx as nx

from repro._types import NodeId
from repro.errors import GraphError
from repro.network.graph import Graph


def from_networkx(
    nxg: "nx.Graph",
    *,
    weight_attr: str = "weight",
    default_weight: int = 1,
    name: str = "",
) -> Tuple[Graph, Dict[Hashable, NodeId]]:
    """Convert an undirected networkx graph.

    Returns ``(graph, mapping)`` where ``mapping`` takes original node
    labels to our integer ids (sorted-label order for determinism).
    Edge weights default to ``default_weight`` when the attribute is
    missing; non-positive weights are rejected by :class:`Graph`.
    """
    if nxg.is_directed():
        raise GraphError("from_networkx expects an undirected graph")
    if nxg.number_of_nodes() == 0:
        raise GraphError("empty graph")
    labels = sorted(nxg.nodes(), key=str)
    mapping: Dict[Hashable, NodeId] = {lbl: i for i, lbl in enumerate(labels)}
    edges = [
        (mapping[u], mapping[v], data.get(weight_attr, default_weight))
        for u, v, data in nxg.edges(data=True)
    ]
    g = Graph(len(labels), edges, name=name or f"networkx(n={len(labels)})")
    return g, mapping


def to_networkx(graph: Graph) -> "nx.Graph":
    """Export to a networkx graph with ``weight`` edge attributes."""
    nxg = nx.Graph(name=graph.name)
    nxg.add_nodes_from(graph.nodes())
    for u, v, w in graph.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg
