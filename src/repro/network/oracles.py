"""Implicit distance oracles for structured topologies.

Every topology the paper analyzes (clique, line, grid, cluster, star —
Section I) has closed-form shortest-path distances, yet the kernel used to
answer each query from cached Dijkstra rows: O(m log n) per touched source
and, for all-sources questions like :meth:`Graph.diameter`, a full O(n^2)
materialization.  That caps the simulator near 10^2 nodes; the follow-on
application domains (fog-cloud hierarchies, blockchain sharding — see
ROADMAP) only make sense at 10^4-10^6.

A :class:`DistanceOracle` answers ``distance``/``eccentricity``/
``diameter`` in O(1) (O(log n) for trees) from the topology's parameters,
without touching the adjacency structure.  The topology constructors in
:mod:`repro.network.topologies` attach the matching oracle, and
:class:`repro.network.graph.Graph` dispatches to it when present, falling
back to cached Dijkstra for arbitrary graphs.

**Exactness contract**: an oracle must return *bit-identical* values to
the Dijkstra fallback — golden traces are pinned byte-for-byte, so "close
enough" floats are not enough.  Integer edge weights make ``k * w`` equal
any summation order exactly; constructors therefore only attach an oracle
when their weights are ints (the common case; float-weighted variants
silently keep the Dijkstra path).  ``tests/test_oracles.py`` sweeps every
oracle against the fallback pairwise.

Cut-aware queries (:meth:`Graph.distance_avoiding`) never consult the
oracle: a partition invalidates the closed form, so they keep the explicit
cut-aware Dijkstra path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro._types import NodeId, Weight


def _is_exact_weight(*weights: Weight) -> bool:
    """True when every weight is an int (bools excluded for clarity).

    Integer arithmetic guarantees ``k * w == w + w + ... + w`` exactly, so
    oracle answers are bit-identical to the Dijkstra fallback.  Float
    weights could differ in the last ulp depending on summation order —
    those graphs keep the explicit path.
    """
    return all(isinstance(w, int) and not isinstance(w, bool) for w in weights)


class DistanceOracle:
    """Closed-form distance geometry of one structured topology.

    Subclasses implement :meth:`distance` (and usually override
    :meth:`eccentricity` / :meth:`diameter` with closed forms).  ``kind``
    is a short human-readable tag surfaced by ``repro topo info``.

    The base-class ``row`` builds one source row by n ``distance`` calls;
    subclasses may override with a vectorized fill when profitable.
    """

    kind = "oracle"

    def __init__(self, num_nodes: int) -> None:
        self.n = int(num_nodes)

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        raise NotImplementedError

    def eccentricity(self, u: NodeId) -> Weight:
        # Generic O(n) fallback; every bundled oracle overrides it.
        return max(self.distance(u, v) for v in range(self.n))

    def diameter(self) -> Weight:
        # Generic O(n^2); every bundled oracle overrides it.
        return max(self.eccentricity(u) for u in range(self.n))

    def row(self, src: NodeId) -> List[Weight]:
        """Distances from ``src`` to every node (a fresh list)."""
        d = self.distance
        return [d(src, v) for v in range(self.n)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class OracleRow:
    """Lazy one-source distance row: ``row[v] == distance(src, v)``.

    A drop-in stand-in for the list returned by
    :meth:`Graph.distances_from` at hot sites that hoist a row but only
    probe a few entries — each probe is one O(1) closed-form query and no
    O(n) list is ever built.
    """

    __slots__ = ("_oracle", "_src")

    def __init__(self, oracle: DistanceOracle, src: NodeId) -> None:
        self._oracle = oracle
        self._src = src

    def __getitem__(self, v: NodeId) -> Weight:
        return self._oracle.distance(self._src, v)


class CliqueOracle(DistanceOracle):
    """Complete graph: every distinct pair at distance ``w``."""

    kind = "clique"

    def __init__(self, num_nodes: int, weight: Weight) -> None:
        super().__init__(num_nodes)
        self.w = weight

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        return 0 if u == v else self.w

    def eccentricity(self, u: NodeId) -> Weight:
        return self.w if self.n > 1 else 0

    def diameter(self) -> Weight:
        return self.w if self.n > 1 else 0

    def row(self, src: NodeId) -> List[Weight]:
        out = [self.w] * self.n
        out[src] = 0
        return out


class LineOracle(DistanceOracle):
    """Path graph ``0-1-...-(n-1)``."""

    kind = "line"

    def __init__(self, num_nodes: int, weight: Weight) -> None:
        super().__init__(num_nodes)
        self.w = weight

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        return abs(u - v) * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        return max(u, self.n - 1 - u) * self.w

    def diameter(self) -> Weight:
        return (self.n - 1) * self.w

    def row(self, src: NodeId) -> List[Weight]:
        w = self.w
        return [abs(src - v) * w for v in range(self.n)]


class RingOracle(DistanceOracle):
    """Cycle of ``n`` nodes: distance is the shorter arc."""

    kind = "ring"

    def __init__(self, num_nodes: int, weight: Weight) -> None:
        super().__init__(num_nodes)
        self.w = weight

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        k = abs(u - v)
        return min(k, self.n - k) * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        return (self.n // 2) * self.w

    def diameter(self) -> Weight:
        return (self.n // 2) * self.w


class GridOracle(DistanceOracle):
    """Mixed-radix (row-major) multi-dimensional grid: Manhattan metric."""

    kind = "grid"

    def __init__(self, dims: Sequence[int], weight: Weight) -> None:
        dims = tuple(int(d) for d in dims)
        n = 1
        strides = []
        for d in reversed(dims):
            strides.append(n)
            n *= d
        super().__init__(n)
        self.dims = dims
        #: stride per axis, aligned with ``dims`` (last axis stride 1)
        self.strides: Tuple[int, ...] = tuple(reversed(strides))
        self.w = weight

    def coords(self, u: NodeId) -> Tuple[int, ...]:
        """Decode a node id to its grid coordinates."""
        return tuple((u // s) % d for d, s in zip(self.dims, self.strides))

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        total = 0
        for d, s in zip(self.dims, self.strides):
            total += abs((u // s) % d - (v // s) % d)
        return total * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        total = 0
        for d, s in zip(self.dims, self.strides):
            c = (u // s) % d
            total += max(c, d - 1 - c)
        return total * self.w

    def diameter(self) -> Weight:
        return sum(d - 1 for d in self.dims) * self.w


class TorusOracle(GridOracle):
    """Grid with wraparound: per-axis distance is the shorter direction."""

    kind = "torus"

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        total = 0
        for d, s in zip(self.dims, self.strides):
            k = abs((u // s) % d - (v // s) % d)
            total += min(k, d - k)
        return total * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        return sum(d // 2 for d in self.dims) * self.w

    def diameter(self) -> Weight:
        return sum(d // 2 for d in self.dims) * self.w


class HypercubeOracle(DistanceOracle):
    """``dim``-dimensional hypercube: Hamming distance."""

    kind = "hypercube"

    def __init__(self, dim: int, weight: Weight) -> None:
        super().__init__(1 << dim)
        self.dim = dim
        self.w = weight

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        # bin().count keeps 3.9 compatibility (int.bit_count is 3.10+).
        return bin(u ^ v).count("1") * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        return self.dim * self.w

    def diameter(self) -> Weight:
        return self.dim * self.w


class ClusterOracle(DistanceOracle):
    """Cluster graph (paper Section IV-D): ``alpha`` cliques of ``beta``
    nodes, unit intra-clique edges, bridge-to-bridge edges of weight
    ``gamma >= beta``.

    Node ``u`` lives in clique ``u // beta``; the clique's bridge is its
    node 0 (id ``(u // beta) * beta``).  Inter-clique routes always go
    bridge-to-bridge directly (``gamma`` beats any ``2*gamma`` detour),
    so ``d(u, v) = [u != bridge] + gamma + [v != bridge]``.
    """

    kind = "cluster"

    def __init__(self, alpha: int, beta: int, gamma: Weight) -> None:
        super().__init__(alpha * beta)
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        if u == v:
            return 0
        beta = self.beta
        cu, cv = u // beta, v // beta
        if cu == cv:
            return 1
        hop_u = 0 if u == cu * beta else 1
        hop_v = 0 if v == cv * beta else 1
        return hop_u + self.gamma + hop_v

    def eccentricity(self, u: NodeId) -> Weight:
        if self.alpha == 1:
            return 1 if self.beta > 1 else 0
        hop_u = 0 if u % self.beta == 0 else 1
        far = 1 if self.beta > 1 else 0  # non-bridge member of another clique
        return hop_u + self.gamma + far

    def diameter(self) -> Weight:
        if self.alpha == 1:
            return 1 if self.beta > 1 else 0
        extra = 2 if self.beta > 1 else 0
        return self.gamma + extra


class StarOracle(DistanceOracle):
    """Star of ``alpha`` rays of ``beta`` path nodes from a center.

    Node 0 is the center; node ``u > 0`` sits on ray ``(u-1) // beta`` at
    depth ``(u-1) % beta + 1``.  Same-ray pairs follow the path; pairs on
    different rays route through the center.
    """

    kind = "star"

    def __init__(self, alpha: int, beta: int, weight: Weight) -> None:
        super().__init__(1 + alpha * beta)
        self.alpha = alpha
        self.beta = beta
        self.w = weight

    def _depth_ray(self, u: NodeId) -> Tuple[int, int]:
        if u == 0:
            return 0, -1
        return (u - 1) % self.beta + 1, (u - 1) // self.beta

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        du, ru = self._depth_ray(u)
        dv, rv = self._depth_ray(v)
        if ru == rv:
            return abs(du - dv) * self.w
        return (du + dv) * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        du, _ = self._depth_ray(u)
        if self.alpha == 1:
            return max(du, self.beta - du) * self.w
        return (du + self.beta) * self.w

    def diameter(self) -> Weight:
        if self.alpha == 1:
            return self.beta * self.w
        return 2 * self.beta * self.w


class TreeOracle(DistanceOracle):
    """Complete ``b``-ary tree in heap layout: distance via the LCA.

    ``parent(u) = (u - 1) // b``; node depths and the lowest common
    ancestor are found by walking up — O(depth) = O(log n) per query.
    """

    kind = "tree"

    def __init__(self, branching: int, depth: int, weight: Weight) -> None:
        n = sum(branching**i for i in range(depth + 1))
        super().__init__(n)
        self.b = branching
        self.depth = depth
        self.w = weight

    def node_depth(self, u: NodeId) -> int:
        """Depth of ``u`` (root = 0)."""
        if self.b == 1:
            return u
        d = 0
        while u:
            u = (u - 1) // self.b
            d += 1
        return d

    def distance(self, u: NodeId, v: NodeId) -> Weight:
        if u == v:
            return 0
        b = self.b
        du, dv = self.node_depth(u), self.node_depth(v)
        steps = 0
        while du > dv:
            u = (u - 1) // b
            du -= 1
            steps += 1
        while dv > du:
            v = (v - 1) // b
            dv -= 1
            steps += 1
        while u != v:
            u = (u - 1) // b
            v = (v - 1) // b
            steps += 2
        return steps * self.w

    def eccentricity(self, u: NodeId) -> Weight:
        du = self.node_depth(u)
        if self.b == 1:
            return max(du, self.depth - du) * self.w
        if self.depth == 0:
            return 0
        # Farthest node: up to the root, down a deepest leaf of another
        # root subtree (b >= 2 guarantees one exists).
        return (du + self.depth) * self.w

    def diameter(self) -> Weight:
        if self.b == 1 or self.depth == 0:
            return self.depth * self.w
        return 2 * self.depth * self.w


def estimate_matrix_bytes(n: int) -> int:
    """Rough bytes to materialize a full n x n distance cache.

    One CPython list row of n small-int references is ~8 bytes per slot
    plus ~56 bytes of list header; ``repro topo info`` reports this so the
    cost of the Dijkstra fallback at a given scale is visible before a
    run is launched.
    """
    return n * (8 * n + 56)
