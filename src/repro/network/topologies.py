"""Topology constructors for the architectures studied in the paper.

Section I lists Clique, Hypercube, Butterfly, Grid, Line, Cluster, and Star;
ring, torus and random geometric graphs are included as additional
substrates for the experiment harness.  Constructors return :class:`Graph`
instances; the structured topologies (cluster, star) also attach a
``layout`` attribute describing their decomposition, which the
topology-aware offline schedulers consume.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId, Weight
from repro.errors import GraphError
from repro.network.graph import Graph
from repro.network.oracles import (
    CliqueOracle,
    ClusterOracle,
    GridOracle,
    HypercubeOracle,
    LineOracle,
    RingOracle,
    StarOracle,
    TorusOracle,
    TreeOracle,
    _is_exact_weight,
)


def clique(n: int, weight: Weight = 1) -> Graph:
    """Complete graph on ``n`` nodes, every edge of weight ``weight``."""
    edges = [(u, v, weight) for u in range(n) for v in range(u + 1, n)]
    oracle = CliqueOracle(n, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"clique(n={n})", oracle=oracle)


def line(n: int, weight: Weight = 1) -> Graph:
    """Path of ``n`` nodes ``0-1-...-(n-1)``, unit weights by default."""
    edges = [(i, i + 1, weight) for i in range(n - 1)]
    oracle = LineOracle(n, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"line(n={n})", oracle=oracle)


def ring(n: int, weight: Weight = 1) -> Graph:
    """Cycle of ``n`` nodes."""
    if n < 3:
        raise GraphError("ring needs at least 3 nodes")
    edges = [(i, (i + 1) % n, weight) for i in range(n)]
    oracle = RingOracle(n, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"ring(n={n})", oracle=oracle)


def grid(dims: Sequence[int], weight: Weight = 1) -> Graph:
    """``len(dims)``-dimensional grid with side lengths ``dims``.

    Node ids enumerate coordinates in mixed-radix (row-major) order.  The
    paper's ``log n``-dimensional grid is ``grid([2] * log2(n))``, i.e. the
    hypercube.
    """
    dims = list(dims)
    if not dims or any(d < 1 for d in dims):
        raise GraphError(f"invalid grid dims {dims}")
    n = math.prod(dims)
    strides = [0] * len(dims)
    s = 1
    for i in reversed(range(len(dims))):
        strides[i] = s
        s *= dims[i]
    edges: List[Tuple[NodeId, NodeId, Weight]] = []
    for coord in itertools.product(*(range(d) for d in dims)):
        u = sum(c * st for c, st in zip(coord, strides))
        for axis, d in enumerate(dims):
            if coord[axis] + 1 < d:
                v = u + strides[axis]
                edges.append((u, v, weight))
    oracle = GridOracle(dims, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"grid({'x'.join(map(str, dims))})", oracle=oracle)


def torus(dims: Sequence[int], weight: Weight = 1) -> Graph:
    """Grid with wraparound edges along every axis."""
    dims = list(dims)
    if any(d < 3 for d in dims):
        raise GraphError("torus needs side length >= 3 on every axis")
    n = math.prod(dims)
    strides = [0] * len(dims)
    s = 1
    for i in reversed(range(len(dims))):
        strides[i] = s
        s *= dims[i]
    edges = []
    for coord in itertools.product(*(range(d) for d in dims)):
        u = sum(c * st for c, st in zip(coord, strides))
        for axis, d in enumerate(dims):
            nxt = list(coord)
            nxt[axis] = (coord[axis] + 1) % d
            v = sum(c * st for c, st in zip(nxt, strides))
            edges.append((min(u, v), max(u, v), weight))
    oracle = TorusOracle(dims, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"torus({'x'.join(map(str, dims))})", oracle=oracle)


def hypercube(dim: int, weight: Weight = 1) -> Graph:
    """``dim``-dimensional hypercube on ``2**dim`` nodes.

    Any two nodes are within ``dim = log2 n`` hops (Section III-D).
    """
    if dim < 1:
        raise GraphError("hypercube dimension must be >= 1")
    n = 1 << dim
    edges = [(u, u ^ (1 << b), weight) for u in range(n) for b in range(dim) if u < u ^ (1 << b)]
    oracle = HypercubeOracle(dim, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"hypercube(d={dim})", oracle=oracle)


def butterfly(dim: int, weight: Weight = 1) -> Graph:
    """``dim``-dimensional (unwrapped) butterfly: ``(dim+1) * 2**dim`` nodes.

    Node ``(level, row)`` with ``0 <= level <= dim`` maps to id
    ``level * 2**dim + row``.  Level ``l`` connects to level ``l+1`` by a
    *straight* edge (same row) and a *cross* edge (row with bit ``l``
    flipped).  Diameter is ``2 * dim = O(log n)``.
    """
    if dim < 1:
        raise GraphError("butterfly dimension must be >= 1")
    rows = 1 << dim
    n = (dim + 1) * rows
    edges = []
    for level in range(dim):
        for row in range(rows):
            u = level * rows + row
            edges.append((u, (level + 1) * rows + row, weight))
            edges.append((u, (level + 1) * rows + (row ^ (1 << level)), weight))
    return Graph(n, edges, name=f"butterfly(d={dim})")


@dataclass(frozen=True)
class ClusterLayout:
    """Structure of a :func:`cluster_graph`: node partition into cliques."""

    cliques: Tuple[Tuple[NodeId, ...], ...]
    bridges: Tuple[NodeId, ...]
    gamma: Weight

    def clique_of(self, u: NodeId) -> int:
        """Index of the clique containing node ``u``."""
        for i, c in enumerate(self.cliques):
            if u in c:
                return i
        raise GraphError(f"node {u} not in any clique")


def cluster_graph(alpha: int, beta: int, gamma: Weight) -> Graph:
    """Cluster graph of ``alpha`` cliques with ``beta`` nodes each.

    Intra-clique edges have weight 1; the designated *bridge* node of each
    clique (the clique's node 0) connects to every other bridge with an
    edge of weight ``gamma >= beta`` (paper Section IV-D).
    """
    if alpha < 1 or beta < 1:
        raise GraphError(f"cluster graph needs alpha,beta >= 1, got {alpha},{beta}")
    if gamma < beta:
        raise GraphError(f"cluster graph requires gamma >= beta, got gamma={gamma} beta={beta}")
    n = alpha * beta
    edges: List[Tuple[NodeId, NodeId, Weight]] = []
    cliques = []
    bridges = []
    for a in range(alpha):
        base = a * beta
        members = tuple(range(base, base + beta))
        cliques.append(members)
        bridges.append(base)
        edges.extend((u, v, 1) for u in members for v in members if u < v)
    edges.extend((bridges[i], bridges[j], gamma) for i in range(alpha) for j in range(i + 1, alpha))
    oracle = ClusterOracle(alpha, beta, gamma) if _is_exact_weight(gamma) else None
    g = Graph(n, edges, name=f"cluster(alpha={alpha},beta={beta},gamma={gamma})", oracle=oracle)
    g.layout = ClusterLayout(tuple(cliques), tuple(bridges), gamma)  # type: ignore[attr-defined]
    return g


@dataclass(frozen=True)
class StarLayout:
    """Structure of a :func:`star_graph`: a center and its rays."""

    center: NodeId
    rays: Tuple[Tuple[NodeId, ...], ...]

    def ray_of(self, u: NodeId) -> Optional[int]:
        """Index of the ray containing ``u``; ``None`` for the center."""
        if u == self.center:
            return None
        for i, r in enumerate(self.rays):
            if u in r:
                return i
        raise GraphError(f"node {u} not on any ray")


def star_graph(alpha: int, beta: int, weight: Weight = 1) -> Graph:
    """Star of ``alpha`` rays, each a path of ``beta`` nodes, from a center.

    Node 0 is the central node; ray ``i`` consists of nodes
    ``1 + i*beta .. 1 + (i+1)*beta - 1`` ordered outward (paper Section
    IV-D).  All edges have weight ``weight``.
    """
    if alpha < 1 or beta < 1:
        raise GraphError(f"star graph needs alpha,beta >= 1, got {alpha},{beta}")
    n = 1 + alpha * beta
    edges = []
    rays = []
    for a in range(alpha):
        base = 1 + a * beta
        members = tuple(range(base, base + beta))
        rays.append(members)
        edges.append((0, base, weight))
        edges.extend((members[i], members[i + 1], weight) for i in range(beta - 1))
    oracle = StarOracle(alpha, beta, weight) if _is_exact_weight(weight) else None
    g = Graph(n, edges, name=f"star(alpha={alpha},beta={beta})", oracle=oracle)
    g.layout = StarLayout(0, tuple(rays))  # type: ignore[attr-defined]
    return g


def tree(branching: int, depth: int, weight: Weight = 1) -> Graph:
    """Complete ``branching``-ary tree of the given depth.

    Node 0 is the root; children of node ``u`` are
    ``u*branching + 1 .. u*branching + branching`` (heap layout).  Trees
    matter here because the paper's lower-bound discussion (via Busch et
    al. [4]) shows the ``Ω(n^{1/40}/log n)`` gap to TSP-optimal object
    tours holds on trees too.
    """
    if branching < 1 or depth < 0:
        raise GraphError(f"invalid tree parameters b={branching}, depth={depth}")
    n = sum(branching**i for i in range(depth + 1))
    edges = []
    for u in range(n):
        for c in range(1, branching + 1):
            v = u * branching + c
            if v < n:
                edges.append((u, v, weight))
    oracle = TreeOracle(branching, depth, weight) if _is_exact_weight(weight) else None
    return Graph(n, edges, name=f"tree(b={branching},d={depth})", oracle=oracle)


def random_geometric(
    n: int,
    radius: float,
    seed: Optional[int] = None,
    scale: int = 100,
) -> Graph:
    """Random geometric graph on the unit square with integer edge weights.

    Nodes are uniform points; nodes within ``radius`` are connected with a
    weight equal to their Euclidean distance scaled by ``scale`` and rounded
    up to at least 1 (the model uses integer weights).  Components, if any,
    are stitched together through their closest node pairs so the result is
    always connected.
    """
    if n < 1:
        raise GraphError("random_geometric needs n >= 1")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    edges: List[Tuple[NodeId, NodeId, Weight]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if dist[u, v] <= radius:
                edges.append((u, v, max(1, int(math.ceil(dist[u, v] * scale)))))
    # Union-find to stitch disconnected components.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in edges:
        parent[find(u)] = find(v)
    roots = {find(u) for u in range(n)}
    while len(roots) > 1:
        comp = {}
        for u in range(n):
            comp.setdefault(find(u), []).append(u)
        groups = list(comp.values())
        a, b = groups[0], groups[1]
        best = min(((u, v) for u in a for v in b), key=lambda uv: dist[uv[0], uv[1]])
        u, v = best
        edges.append((u, v, max(1, int(math.ceil(dist[u, v] * scale)))))
        parent[find(u)] = find(v)
        roots = {find(u) for u in range(n)}
    return Graph(n, edges, name=f"rgg(n={n},r={radius})")
