"""Communication-network substrate: weighted graphs and topology builders."""

from repro.network.convert import from_networkx, to_networkx
from repro.network.graph import Graph
from repro.network.topologies import (
    butterfly,
    clique,
    cluster_graph,
    grid,
    hypercube,
    line,
    random_geometric,
    ring,
    star_graph,
    torus,
    tree,
)

__all__ = [
    "Graph",
    "clique",
    "line",
    "ring",
    "grid",
    "torus",
    "hypercube",
    "butterfly",
    "cluster_graph",
    "star_graph",
    "tree",
    "random_geometric",
    "from_networkx",
    "to_networkx",
]
