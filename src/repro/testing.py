"""Public test helpers for downstream scheduler authors.

If you implement your own :class:`repro.core.base.OnlineScheduler`, these
utilities give you the same safety net the built-in schedulers enjoy:
random instance generation, plan-level validity checking, and a one-call
"fuzz my scheduler" harness that certifies every schedule with the
independent trace certifier.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.analysis.experiments import RunResult, run_experiment
from repro.network import topologies
from repro.network.graph import Graph
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads.arrivals import ManualWorkload
from repro.sim import SimConfig

#: topology families used by :func:`random_instance`
TOPOLOGY_FAMILIES = ("line", "clique", "grid", "star", "ring", "hypercube")


def random_graph(rng: np.random.Generator, *, max_nodes: int = 16) -> Graph:
    """A random small graph from the paper's topology families."""
    kind = rng.choice(TOPOLOGY_FAMILIES)
    if kind == "line":
        return topologies.line(int(rng.integers(3, max_nodes)))
    if kind == "clique":
        return topologies.clique(int(rng.integers(3, max_nodes)))
    if kind == "grid":
        return topologies.grid([int(rng.integers(2, 5)), int(rng.integers(2, 5))])
    if kind == "star":
        return topologies.star_graph(int(rng.integers(2, 4)), int(rng.integers(1, 4)))
    if kind == "ring":
        return topologies.ring(int(rng.integers(3, max_nodes)))
    return topologies.hypercube(int(rng.integers(1, 4)))


def random_instance(
    seed: int,
    *,
    max_nodes: int = 16,
    max_objects: int = 5,
    max_txns: int = 15,
    max_gap: int = 5,
    read_fraction: float = 0.0,
) -> Tuple[Graph, ManualWorkload]:
    """A seeded random online scheduling instance.

    Object placements, arrival times, homes, and access sets are all
    random; with ``read_fraction > 0`` accesses split into writes/reads.
    """
    rng = np.random.default_rng(seed)
    g = random_graph(rng, max_nodes=max_nodes)
    n = g.num_nodes
    num_objects = int(rng.integers(1, max_objects + 1))
    placement = {o: int(rng.integers(0, n)) for o in range(num_objects)}
    specs: List[TxnSpec] = []
    t = 0
    for _ in range(int(rng.integers(1, max_txns + 1))):
        t += int(rng.integers(0, max_gap + 1))
        k = int(rng.integers(1, num_objects + 1))
        objs = [int(o) for o in rng.choice(num_objects, size=k, replace=False)]
        writes, reads = [], []
        for o in objs:
            (reads if rng.random() < read_fraction else writes).append(o)
        specs.append(TxnSpec(t, int(rng.integers(0, n)), tuple(writes), reads=tuple(reads)))
    return g, ManualWorkload(placement, specs)


def check_plan(
    graph: Graph,
    placement: Dict[ObjectId, NodeId],
    txns: Sequence[Transaction],
    plan: Dict[TxnId, Time],
    *,
    speed: int = 1,
) -> List[str]:
    """Schedule-level validity of a batch plan: per object, consecutive
    writers leave enough travel time.  Returns problems (empty = valid)."""
    problems: List[str] = []
    by_obj: Dict[ObjectId, List[Transaction]] = {}
    for txn in txns:
        for oid in txn.objects:
            by_obj.setdefault(oid, []).append(txn)
    for oid, users in by_obj.items():
        users = sorted(users, key=lambda x: (plan[x.tid], x.tid))
        pos, t = placement[oid], 0
        for txn in users:
            need = t + speed * graph.distances_from(txn.home)[pos]
            if plan[txn.tid] < need:
                problems.append(
                    f"object {oid}: txn {txn.tid} at {plan[txn.tid]} needs >= {need}"
                )
            pos, t = txn.home, plan[txn.tid]
    return problems


def fuzz_scheduler(
    scheduler_factory: Callable[[], object],
    *,
    trials: int = 50,
    seed: int = 0,
    object_speed_den: int = 1,
    read_fraction: float = 0.0,
    max_nodes: int = 16,
) -> List[RunResult]:
    """Run a scheduler on ``trials`` random instances, certifying each.

    Raises :class:`repro.errors.InfeasibleScheduleError` (with the exact
    violation) on the first instance the scheduler gets wrong; returns
    the per-instance results otherwise.  The instance seed is ``seed +
    trial index``, so a failure is reproducible with
    ``random_instance(seed + i)``.
    """
    results = []
    for i in range(trials):
        g, wl = random_instance(
            seed + i, read_fraction=read_fraction, max_nodes=max_nodes
        )
        results.append(
            run_experiment(
                g, scheduler_factory(), wl,
                config=SimConfig(object_speed_den=object_speed_den),
            )
        )
    return results
