"""Shared type aliases and small enums used across the library.

The paper's model (Section II) is discrete and synchronous, so time is an
``int``.  Nodes, objects and transactions are identified by small integers;
aliases make signatures self-documenting without runtime cost.
"""

from __future__ import annotations

import enum
from typing import Union

#: Identifier of a node of the communication graph ``G``.
NodeId = int

#: Identifier of a shared, mobile object.
ObjectId = int

#: Identifier of a transaction.
TxnId = int

#: A discrete, synchronous time step (Section II of the paper).
Time = int

#: Edge weights are positive integers in the paper; we also accept floats for
#: generality (e.g. random geometric graphs), everything downstream works on
#: the induced metric.
Weight = Union[int, float]


class TxnState(enum.Enum):
    """Lifecycle of a transaction in the simulator.

    ``PENDING``    generated but not yet assigned an execution time
                   (possible under the bucket schedulers which defer
                   scheduling until a bucket activates).
    ``SCHEDULED``  assigned a definitive execution time, waiting for its
                   objects to be assembled.
    ``EXECUTED``   committed; per the model this happens instantly at the
                   scheduled step once all objects are local.
    ``CANCELLED``  terminally cancelled before committing (deadline
                   expiry under the ingestion service, repro.service);
                   its object-queue slots were released and it never
                   appears in ``trace.txns``.
    """

    PENDING = "pending"
    SCHEDULED = "scheduled"
    EXECUTED = "executed"
    CANCELLED = "cancelled"


class DeparturePolicy(enum.Enum):
    """When a released object starts moving to its next requester.

    ``EAGER`` follows the paper: "when the transaction commits, it releases
    its objects, possibly forwarding them to other waiting transactions" —
    the object departs as soon as its next requester is known.

    ``LAZY`` departs as late as possible while still arriving by the
    requester's scheduled execution time.  Used by the ablation experiment
    E11 to quantify how much eager forwarding inflates the in-transit
    penalty paid by later arrivals.
    """

    EAGER = "eager"
    LAZY = "lazy"
