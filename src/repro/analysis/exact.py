"""Exact optimal makespan for small instances (branch-and-bound).

The competitive ratios reported elsewhere divide by *lower bounds* on the
offline optimum, making them upper estimates.  For small instances we can
do better: every feasible schedule induces a total order of transactions
(by execution time), and for a fixed order the earliest-feasible schedule
is computed by a simple chain recurrence — so the optimum is the minimum
over total orders, explored here with memoized branch-and-bound.

This both measures *true* competitive ratios on small instances (bench
E23) and quantifies the looseness of the object-MST lower bound.

Scope: write accesses only (the paper's base model); instances up to
~10 transactions are practical.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.analysis.lower_bounds import batch_lower_bound
from repro.errors import ReproError
from repro.network.graph import Graph
from repro.sim.transactions import Transaction


class ExactSolverLimit(ReproError):
    """Instance too large for the exact solver."""


def earliest_schedule_for_order(
    graph: Graph,
    placement: Mapping[ObjectId, NodeId],
    order: Sequence[Transaction],
    *,
    speed: int = 1,
) -> Dict[TxnId, Time]:
    """Earliest-feasible execution times for a fixed total order.

    Objects flow to each transaction from wherever the previous user left
    them; a transaction executes once all of its objects arrived (and not
    before its generation time).  This is optimal *for the given order*:
    delaying any commit can only delay successors.
    """
    pos: Dict[ObjectId, NodeId] = dict(placement)
    avail: Dict[ObjectId, Time] = {oid: 0 for oid in placement}
    out: Dict[TxnId, Time] = {}
    for txn in order:
        t = txn.gen_time
        drow = graph.distances_from(txn.home)
        for oid in txn.objects:
            t = max(t, avail[oid] + speed * drow[pos[oid]])
        out[txn.tid] = t
        for oid in txn.objects:
            pos[oid] = txn.home
            avail[oid] = t
    return out


def exact_optimal_makespan(
    graph: Graph,
    placement: Mapping[ObjectId, NodeId],
    txns: Sequence[Transaction],
    *,
    speed: int = 1,
    max_txns: int = 10,
) -> Time:
    """Minimum achievable makespan over all feasible schedules.

    Branch-and-bound over transaction orders with two prunings: a running
    best bound, and memoization on the *reachable state* (set of done
    transactions + object positions/availability) — different orders that
    leave the world identical are explored once.
    """
    txns = list(txns)
    if not txns:
        return 0
    if len(txns) > max_txns:
        raise ExactSolverLimit(
            f"{len(txns)} transactions exceed the exact solver cap {max_txns}"
        )
    oids = sorted({oid for t in txns for oid in t.objects})
    for t in txns:
        if t.reads:
            raise ExactSolverLimit("exact solver covers write-only instances")
    best: List[Time] = [earliest_makespan_upper(graph, placement, txns, speed=speed)]
    memo: Dict[Tuple, Time] = {}
    all_ids = frozenset(t.tid for t in txns)
    by_tid = {t.tid: t for t in txns}

    def dfs(done: FrozenSet[TxnId], pos: Tuple[NodeId, ...], avail: Tuple[Time, ...], cur: Time) -> None:
        if cur >= best[0]:
            return
        if done == all_ids:
            best[0] = cur
            return
        key = (done, pos, avail)
        seen = memo.get(key)
        if seen is not None and seen <= cur:
            return
        memo[key] = cur
        remaining = [by_tid[t] for t in sorted(all_ids - done)]
        candidates = []
        for txn in remaining:
            t = txn.gen_time
            drow = graph.distances_from(txn.home)
            for oid in txn.objects:
                i = oids.index(oid)
                t = max(t, avail[i] + speed * drow[pos[i]])
            candidates.append((t, txn))
        candidates.sort(key=lambda ct: (ct[0], ct[1].tid))
        for t, txn in candidates:
            if max(cur, t) >= best[0]:
                continue
            npos = list(pos)
            navail = list(avail)
            for oid in txn.objects:
                i = oids.index(oid)
                npos[i] = txn.home
                navail[i] = t
            dfs(done | {txn.tid}, tuple(npos), tuple(navail), max(cur, t))

    pos0 = tuple(placement[oid] for oid in oids)
    avail0 = tuple(0 for _ in oids)
    dfs(frozenset(), pos0, avail0, 0)
    return best[0]


def earliest_makespan_upper(
    graph: Graph,
    placement: Mapping[ObjectId, NodeId],
    txns: Sequence[Transaction],
    *,
    speed: int = 1,
) -> Time:
    """Cheap upper bound to seed the branch-and-bound: earliest-feasible
    schedule for the generation-time (then id) order."""
    order = sorted(txns, key=lambda t: (t.gen_time, t.tid))
    plan = earliest_schedule_for_order(graph, placement, order, speed=speed)
    return max(plan.values())


def exact_ratio(
    graph: Graph,
    placement: Mapping[ObjectId, NodeId],
    txns: Sequence[Transaction],
    measured_makespan: Time,
    *,
    speed: int = 1,
) -> Tuple[float, float, Time, Time]:
    """``(true_ratio, lb_ratio, optimal, lower_bound)`` for one instance.

    ``true_ratio`` divides by the exact optimum; ``lb_ratio`` by the
    object-MST lower bound — the difference is the estimate's looseness.
    """
    opt = exact_optimal_makespan(graph, placement, txns, speed=speed)
    lb = batch_lower_bound(graph, placement, txns, speed)
    return (
        measured_makespan / max(1, opt),
        measured_makespan / max(1, lb),
        opt,
        lb,
    )
