"""Reusable experiment runner.

One call = build a simulator, run it to quiescence, certify the trace
independently, and compute metrics/ratios.  Every benchmark and example
funnels through :func:`run_experiment`, so every number in EXPERIMENTS.md
comes from a *certified feasible* schedule.

Engine knobs are taken from a :class:`~repro.sim.config.SimConfig` —
including the previously unreachable ``hop_motion`` / ``link_capacity`` /
``strict`` combinations::

    run_experiment(g, sched, wl, config=SimConfig(hop_motion=True,
                                                  link_capacity=1,
                                                  strict=False))

Non-strict runs record deferrals instead of raising; their traces are not
independently certifiable against the congestion-free model, so
certification is skipped for them (the deferral count is the measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro._types import DeparturePolicy
from repro.analysis.metrics import RunMetrics, summarize
from repro.analysis.ratios import RatioPoint, competitive_ratio, makespan_ratio
from repro.network.graph import Graph
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.trace import ExecutionTrace
from repro.sim.validate import certify_trace


@dataclass
class RunResult:
    """Everything a bench needs to print one table row."""

    trace: ExecutionTrace
    metrics: RunMetrics
    competitive_ratio: float
    ratio_points: List[RatioPoint]
    makespan_ratio: Optional[float]
    #: probe summary (e.g. CountersProbe counters/timers) when the run
    #: carried a probe that provides ``summary()``; None otherwise
    obs: Optional[dict] = None

    @property
    def makespan(self) -> int:
        return self.metrics.makespan

    @property
    def max_latency(self) -> int:
        return self.metrics.max_latency

    @property
    def deadline_misses(self) -> int:
        """Deferral events recorded by non-strict runs."""
        return len(self.trace.violations)


def run_experiment(
    graph: Graph,
    scheduler,
    workload,
    *,
    config: Optional[SimConfig] = None,
    object_speed_den: Optional[int] = None,
    departure_policy: Optional[DeparturePolicy] = None,
    probe=None,
    certify: bool = True,
    compute_ratios: bool = True,
    max_steps: Optional[int] = None,
) -> RunResult:
    """Run one scheduler/workload pair to quiescence and analyse it.

    ``config`` carries every engine knob; the ``object_speed_den`` /
    ``departure_policy`` / ``probe`` keywords remain as the established
    shorthand and override the corresponding ``config`` field when passed.
    """
    cfg = (config or SimConfig()).with_overrides(
        object_speed_den=object_speed_den,
        departure_policy=departure_policy,
        probe=probe,
    )
    sim = Simulator(graph, scheduler, workload, config=cfg)
    trace = sim.run(max_steps=max_steps)
    if certify and cfg.strict:
        certify_trace(graph, trace)
    ratio, points = (0.0, [])
    mk_ratio: Optional[float] = None
    if compute_ratios and trace.txns:
        ratio, points = competitive_ratio(graph, trace)
        gen_times = {r.gen_time for r in trace.txns.values()}
        if len(gen_times) == 1:
            mk_ratio = makespan_ratio(graph, trace)
    obs = None
    summarize_probe = getattr(cfg.probe, "summary", None)
    if summarize_probe is not None:
        obs = summarize_probe()
    return RunResult(
        trace=trace,
        metrics=summarize(trace),
        competitive_ratio=ratio,
        ratio_points=points,
        makespan_ratio=mk_ratio,
        obs=obs,
    )


def run_grid(
    case_fn: Callable[[Any], Mapping[str, float]],
    cases: Sequence[Any],
    *,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Evaluate an experiment grid, optionally on a process pool.

    ``case_fn(case)`` builds and runs one experiment from its picklable
    case description (a seed, a ``(topology, scheduler, seed)`` tuple, a
    dict of knobs — whatever the study sweeps) and returns a flat metric
    mapping.  Results come back as plain dicts **in case order**,
    identical for every ``jobs`` value (:mod:`repro.parallel`), so grid
    tables and downstream aggregation never depend on worker timing.

    This is the grid-shaped sibling of
    :func:`~repro.analysis.aggregate.replicate`, which aggregates one
    experiment across seeds; ``run_grid`` keeps each case's metrics
    separate.
    """
    from repro.parallel import pmap

    return [dict(out) for out in pmap(case_fn, cases, jobs=jobs)]
