"""Reusable experiment runner.

One call = build a simulator, run it to quiescence, certify the trace
independently, and compute metrics/ratios.  Every benchmark and example
funnels through :func:`run_experiment`, so every number in EXPERIMENTS.md
comes from a *certified feasible* schedule.

Engine knobs are taken from a :class:`~repro.sim.config.SimConfig` —
including the previously unreachable ``hop_motion`` / ``link_capacity`` /
``strict`` combinations::

    run_experiment(g, sched, wl, config=SimConfig(hop_motion=True,
                                                  link_capacity=1,
                                                  strict=False))

Non-strict runs record deferrals instead of raising; their traces are not
independently certifiable against the congestion-free model, so
certification is skipped for them (the deferral count is the measurement).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro._types import DeparturePolicy, Time
from repro.analysis.metrics import RunMetrics, summarize
from repro.analysis.ratios import RatioPoint, competitive_ratio, makespan_ratio
from repro.analysis.slo import SloSummary, slo_summary
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.trace import ExecutionTrace
from repro.sim.validate import certify_trace


def resolve_workload(graph: Graph, workload):
    """Build ``workload`` if it is a :class:`~repro.workloads.spec.
    WorkloadSpec`; pass constructed instances through unchanged.

    The uniform entry point every runner (``run_experiment`` /
    ``run_stream`` / ``replicate`` / chaos episodes) funnels through, so
    a frozen spec is accepted anywhere an instance is.
    """
    if hasattr(workload, "build") and hasattr(workload, "kind"):
        return workload.build(graph)
    return workload


def _warn_shorthand(name: str) -> None:
    warnings.warn(
        f"run_experiment({name}=...) is deprecated; pass "
        f"config=SimConfig().with_overrides({name}=...) (or a SimConfig "
        f"with the field set) instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class RunResult:
    """Everything a bench needs to print one table row."""

    trace: ExecutionTrace
    metrics: RunMetrics
    competitive_ratio: float
    ratio_points: List[RatioPoint]
    makespan_ratio: Optional[float]
    #: probe summary (e.g. CountersProbe counters/timers) when the run
    #: carried a probe that provides ``summary()``; None otherwise
    obs: Optional[dict] = None

    @property
    def makespan(self) -> int:
        return self.metrics.makespan

    @property
    def max_latency(self) -> int:
        return self.metrics.max_latency

    @property
    def deadline_misses(self) -> int:
        """Deferral events recorded by non-strict runs."""
        return len(self.trace.violations)


def run_experiment(
    graph: Graph,
    scheduler,
    workload,
    *,
    config: Optional[SimConfig] = None,
    object_speed_den: Optional[int] = None,
    departure_policy: Optional[DeparturePolicy] = None,
    probe=None,
    certify: bool = True,
    compute_ratios: bool = True,
    max_steps: Optional[int] = None,
) -> RunResult:
    """Run one scheduler/workload pair to quiescence and analyse it.

    ``workload`` may be a constructed instance or a frozen
    :class:`~repro.workloads.spec.WorkloadSpec` (built on ``graph``
    here).  Open (streaming) workloads never reach quiescence — use
    :func:`run_stream` for those.

    ``config`` carries every engine knob.  The ``object_speed_den`` /
    ``departure_policy`` / ``probe`` shorthand keywords are **deprecated**
    (they still work, and still override the corresponding ``config``
    field): pass ``config=SimConfig.with_overrides(...)`` instead.
    """
    for name, value in (
        ("object_speed_den", object_speed_den),
        ("departure_policy", departure_policy),
        ("probe", probe),
    ):
        if value is not None:
            _warn_shorthand(name)
    cfg = (config or SimConfig()).with_overrides(
        object_speed_den=object_speed_den,
        departure_policy=departure_policy,
        probe=probe,
    )
    workload = resolve_workload(graph, workload)
    if getattr(workload, "open_system", False):
        raise WorkloadError(
            "run_experiment drains a closed workload to quiescence; an "
            "open (streaming) workload needs a horizon — use "
            "run_stream(graph, scheduler, workload, until=...)"
        )
    sim = Simulator(graph, scheduler, workload, config=cfg)
    trace = sim.run(max_steps=max_steps)
    if certify and cfg.strict:
        certify_trace(graph, trace)
    ratio, points = (0.0, [])
    mk_ratio: Optional[float] = None
    if compute_ratios and trace.txns:
        ratio, points = competitive_ratio(graph, trace)
        gen_times = {r.gen_time for r in trace.txns.values()}
        if len(gen_times) == 1:
            mk_ratio = makespan_ratio(graph, trace)
    obs = None
    summarize_probe = getattr(cfg.probe, "summary", None)
    if summarize_probe is not None:
        obs = summarize_probe()
    return RunResult(
        trace=trace,
        metrics=summarize(trace),
        competitive_ratio=ratio,
        ratio_points=points,
        makespan_ratio=mk_ratio,
        obs=obs,
    )


@dataclass
class StreamResult:
    """One open-system run: the truncated trace plus its SLO fold."""

    trace: ExecutionTrace
    slo: SloSummary
    #: probe summary, as on :class:`RunResult`
    obs: Optional[dict] = None

    @property
    def stable(self) -> bool:
        return self.slo.stable

    @property
    def throughput(self) -> float:
        return self.slo.throughput


def run_stream(
    graph: Graph,
    scheduler,
    workload,
    *,
    until: Time,
    warmup: Optional[Time] = None,
    config: Optional[SimConfig] = None,
) -> StreamResult:
    """Run one scheduler against an open workload to the horizon.

    The open-system sibling of :func:`run_experiment`: ``workload`` is an
    open streaming workload (or a ``WorkloadSpec`` of an open kind),
    arrivals are pulled lazily from its seeded stream, and the run stops
    at ``until`` whether or not the system kept up.  The result carries
    the :class:`~repro.analysis.slo.SloSummary` — percentiles, rates, and
    the stability verdict.  Certification is skipped: a truncated run
    legitimately ends with objects mid-flight, which the closed-run
    certifier rejects by design.
    """
    cfg = config or SimConfig()
    workload = resolve_workload(graph, workload)
    if not getattr(workload, "open_system", False):
        raise WorkloadError(
            "run_stream needs an open (streaming) workload; closed "
            "workloads drain to quiescence — use run_experiment"
        )
    sim = Simulator(graph, scheduler, workload, config=cfg)
    trace = sim.run(until=until, warmup=warmup)
    obs = None
    summarize_probe = getattr(cfg.probe, "summary", None)
    if summarize_probe is not None:
        obs = summarize_probe()
    return StreamResult(trace=trace, slo=slo_summary(trace), obs=obs)


def run_grid(
    case_fn: Callable[[Any], Mapping[str, float]],
    cases: Sequence[Any],
    *,
    jobs: int = 1,
) -> List[Dict[str, float]]:
    """Evaluate an experiment grid, optionally on a process pool.

    ``case_fn(case)`` builds and runs one experiment from its picklable
    case description (a seed, a ``(topology, scheduler, seed)`` tuple, a
    frozen :class:`~repro.workloads.spec.WorkloadSpec`, a dict of knobs —
    whatever the study sweeps) and returns a flat metric mapping.  Results come back as plain dicts **in case order**,
    identical for every ``jobs`` value (:mod:`repro.parallel`), so grid
    tables and downstream aggregation never depend on worker timing.

    This is the grid-shaped sibling of
    :func:`~repro.analysis.aggregate.replicate`, which aggregates one
    experiment across seeds; ``run_grid`` keeps each case's metrics
    separate.
    """
    from repro.parallel import pmap

    return [dict(out) for out in pmap(case_fn, cases, jobs=jobs)]
