"""Reusable experiment runner.

One call = build a simulator, run it to quiescence, certify the trace
independently, and compute metrics/ratios.  Every benchmark and example
funnels through :func:`run_experiment`, so every number in EXPERIMENTS.md
comes from a *certified feasible* schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro._types import DeparturePolicy
from repro.analysis.metrics import RunMetrics, summarize
from repro.analysis.ratios import RatioPoint, competitive_ratio, makespan_ratio
from repro.network.graph import Graph
from repro.sim.engine import Simulator
from repro.sim.trace import ExecutionTrace
from repro.sim.validate import certify_trace


@dataclass
class RunResult:
    """Everything a bench needs to print one table row."""

    trace: ExecutionTrace
    metrics: RunMetrics
    competitive_ratio: float
    ratio_points: List[RatioPoint]
    makespan_ratio: Optional[float]

    @property
    def makespan(self) -> int:
        return self.metrics.makespan

    @property
    def max_latency(self) -> int:
        return self.metrics.max_latency


def run_experiment(
    graph: Graph,
    scheduler,
    workload,
    *,
    object_speed_den: int = 1,
    departure_policy: DeparturePolicy = DeparturePolicy.EAGER,
    certify: bool = True,
    compute_ratios: bool = True,
    max_steps: Optional[int] = None,
) -> RunResult:
    """Run one scheduler/workload pair to quiescence and analyse it."""
    sim = Simulator(
        graph,
        scheduler,
        workload,
        object_speed_den=object_speed_den,
        departure_policy=departure_policy,
    )
    trace = sim.run(max_steps=max_steps)
    if certify:
        certify_trace(graph, trace)
    ratio, points = (0.0, [])
    mk_ratio: Optional[float] = None
    if compute_ratios and trace.txns:
        ratio, points = competitive_ratio(graph, trace)
        gen_times = {r.gen_time for r in trace.txns.values()}
        if len(gen_times) == 1:
            mk_ratio = makespan_ratio(graph, trace)
    return RunResult(
        trace=trace,
        metrics=summarize(trace),
        competitive_ratio=ratio,
        ratio_points=points,
        makespan_ratio=mk_ratio,
    )
