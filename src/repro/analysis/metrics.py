"""Summary metrics of a run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._types import Time
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate statistics the experiment tables report."""

    num_txns: int
    makespan: Time
    max_latency: Time
    mean_latency: float
    p50_latency: float
    p99_latency: float
    total_object_travel: Time
    messages_sent: int
    end_time: Time

    def row(self) -> List[object]:
        return [
            self.num_txns,
            self.makespan,
            self.max_latency,
            round(self.mean_latency, 1),
            round(self.p99_latency, 1),
            self.total_object_travel,
            self.messages_sent,
        ]


def jain_fairness(values) -> float:
    """Jain's fairness index of a collection of non-negative values:
    ``(sum x)^2 / (n * sum x^2)`` — 1.0 is perfectly fair, ``1/n`` is a
    single-winner allocation.  Used to compare how evenly schedulers
    spread latency across nodes (E9's fairness view)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float((arr**2).sum())
    if denom == 0:
        return 1.0
    return float(arr.sum()) ** 2 / denom


def latency_fairness(trace: ExecutionTrace) -> float:
    """Jain index over per-node mean latencies."""
    by_node = {}
    for rec in trace.txns.values():
        by_node.setdefault(rec.home, []).append(rec.latency)
    return jain_fairness([sum(v) / len(v) for v in by_node.values()])


def summarize(trace: ExecutionTrace) -> RunMetrics:
    """Collapse a trace into :class:`RunMetrics`."""
    lats = np.array(trace.latencies(), dtype=float) if trace.txns else np.zeros(0)
    return RunMetrics(
        num_txns=trace.num_txns,
        makespan=trace.makespan(),
        max_latency=int(lats.max()) if lats.size else 0,
        mean_latency=float(lats.mean()) if lats.size else 0.0,
        p50_latency=float(np.percentile(lats, 50)) if lats.size else 0.0,
        p99_latency=float(np.percentile(lats, 99)) if lats.size else 0.0,
        total_object_travel=trace.total_object_travel(),
        messages_sent=trace.messages_sent,
        end_time=trace.end_time,
    )
