"""Steady-state throughput and response-time analysis.

Closed-loop workloads reach a steady state after a warmup; comparing
schedulers by raw makespan then conflates ramp-up with sustained
behaviour.  These helpers trim warmup and compute the throughput and
response-time series that long-running-system evaluations report
(bench E25).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._types import Time
from repro.sim.trace import ExecutionTrace


def throughput(
    trace: ExecutionTrace,
    *,
    warmup_fraction: float = 0.2,
    warmup: Optional[Time] = None,
    horizon: Optional[Time] = None,
) -> float:
    """Committed transactions per step after the warmup prefix.

    By default the warmup cutoff is ``warmup_fraction`` of the trace
    makespan — the right notion for a *closed* run that drains to empty.
    An *open* (streaming) run truncated at ``run(until=...)`` makes a
    makespan-relative fraction meaningless, so pass ``warmup`` as an
    **absolute step count** (it then overrides ``warmup_fraction``) and,
    optionally, ``horizon`` to measure against the run's wall-clock end
    (``trace.end_time``) rather than the last commit time.
    """
    if not trace.txns:
        return 0.0
    if horizon is None:
        horizon = max(trace.makespan(), 1)
    if warmup is not None:
        if warmup < 0 or warmup >= horizon:
            raise ValueError(f"warmup must be in [0, horizon={horizon}), got {warmup}")
        cutoff = warmup
    else:
        cutoff = int(horizon * warmup_fraction)
    committed = [r for r in trace.txns.values() if r.exec_time > cutoff]
    span = horizon - cutoff
    return len(committed) / span if span > 0 else 0.0


def sliding_window_throughput(
    trace: ExecutionTrace, window: Time
) -> List[Tuple[Time, float]]:
    """``(window_end, commits/step)`` for consecutive windows."""
    if not trace.txns or window <= 0:
        return []
    horizon = trace.makespan()
    execs = sorted(r.exec_time for r in trace.txns.values())
    out = []
    start = 0
    for end in range(window, horizon + window, window):
        count = sum(1 for t in execs if end - window < t <= end)
        out.append((min(end, horizon), count / window))
        start = end
    return out


def response_time_series(
    trace: ExecutionTrace, *, buckets: int = 10
) -> List[Tuple[Time, float]]:
    """Mean latency of transactions generated in each time bucket.

    Rising values over time indicate the system is not keeping up with
    the arrival rate (queueing up), a signal raw means hide.
    """
    if not trace.txns:
        return []
    recs = sorted(trace.txns.values(), key=lambda r: r.gen_time)
    last_gen = max(r.gen_time for r in recs)
    width = max(1, (last_gen + 1) // buckets)
    out: List[Tuple[Time, float]] = []
    for b in range(0, last_gen + 1, width):
        lats = [r.latency for r in recs if b <= r.gen_time < b + width]
        if lats:
            out.append((b + width, float(np.mean(lats))))
    return out


def saturation_point(
    series: Sequence[Tuple[Time, float]], *, factor: float = 2.0
) -> Optional[Time]:
    """First time the response series exceeds ``factor`` times its first
    bucket's value — a crude but robust 'stopped keeping up' marker."""
    if not series:
        return None
    base = max(series[0][1], 1e-9)
    for t, v in series:
        if v > factor * base:
            return t
    return None
