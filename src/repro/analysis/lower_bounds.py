"""Certified lower bounds on execution time.

The competitive ratios we report divide measured schedule durations by a
*provable* lower bound on the offline optimum, so measured ratios are
upper bounds on the true competitive ratios — the conservative direction:
if a measured ratio sits below the paper's bound, the true ratio does too.

Bounds implemented (DESIGN.md S12):

* **object-MST bound** — a single object must physically visit its start
  position and the home of every requester; any walk through those nodes
  has length at least the weight of their metric minimum spanning tree.
  Scaled by the object speed, the max over objects lower-bounds makespan.
  (This subsumes the furthest-object bound: an MST contains a path from
  the start to the furthest home.)
* **object-load bound** — ``l_max`` style (Theorem 3's denominator): an
  object requested by ``l`` transactions at pairwise-distinct nodes needs
  at least ``l - 1`` moves of at least the minimum pairwise distance.
  This is dominated by the MST bound but is exposed separately because
  Theorem 3's analysis is phrased in terms of ``l_max``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro._types import NodeId, ObjectId, Time
from repro.network.graph import Graph
from repro.sim.transactions import Transaction


def object_mst_bound(
    graph: Graph,
    start: NodeId,
    requester_homes: Sequence[NodeId],
    speed: int = 1,
) -> Time:
    """Minimum time for one object at ``start`` to serve all homes."""
    return speed * graph.metric_mst_weight([start, *requester_homes])


def object_load_bound(graph: Graph, requester_homes: Sequence[NodeId], speed: int = 1) -> Time:
    """``(l - 1) * min pairwise distance`` over distinct requester homes."""
    homes = sorted(set(requester_homes))
    if len(homes) < 2:
        return 0
    min_d = min(
        graph.distance(u, v) for i, u in enumerate(homes) for v in homes[i + 1 :]
    )
    return speed * (len(homes) - 1) * min_d


def _reader_bound(
    graph: Graph, pos: NodeId, reader_homes: Sequence[NodeId], speed: int
) -> Time:
    """Readers receive copies, which travel independently; still, data at
    ``pos`` cannot reach a reader faster than the direct distance (any
    relay through the moving master obeys the triangle inequality)."""
    if not reader_homes:
        return 0
    return speed * max(graph.distance(pos, h) for h in reader_homes)


def batch_lower_bound(
    graph: Graph,
    placement: Mapping[ObjectId, NodeId],
    txns: Sequence[Transaction],
    speed: int = 1,
) -> Time:
    """Lower bound on the makespan of a batch problem.

    Max over objects of the object-MST bound over its *writers* plus the
    direct-distance bound for its readers, clamped to 1 (any non-empty
    schedule needs at least one step in the synchronous model).
    """
    writers: Dict[ObjectId, List[NodeId]] = {}
    readers: Dict[ObjectId, List[NodeId]] = {}
    for txn in txns:
        for oid in txn.objects:
            writers.setdefault(oid, []).append(txn.home)
        for oid in txn.reads:
            readers.setdefault(oid, []).append(txn.home)
    best: Time = 1 if txns else 0
    for oid in set(writers) | set(readers):
        pos = placement[oid]
        best = max(best, object_mst_bound(graph, pos, writers.get(oid, []), speed))
        best = max(best, _reader_bound(graph, pos, readers.get(oid, []), speed))
    return best


def live_set_lower_bound(
    graph: Graph,
    object_positions: Mapping[ObjectId, NodeId],
    live_txns: Sequence[Transaction],
    speed: int = 1,
) -> Time:
    """Lower bound on ``t*``: the optimal time to finish the currently
    live transactions given current object positions (Section II's
    competitive-ratio denominator)."""
    writers: Dict[ObjectId, List[NodeId]] = {}
    readers: Dict[ObjectId, List[NodeId]] = {}
    for txn in live_txns:
        for oid in txn.objects:
            writers.setdefault(oid, []).append(txn.home)
        for oid in txn.reads:
            readers.setdefault(oid, []).append(txn.home)
    best: Time = 1 if live_txns else 0
    for oid in set(writers) | set(readers):
        pos = object_positions.get(oid)
        if pos is None:
            continue
        best = max(best, object_mst_bound(graph, pos, writers.get(oid, []), speed))
        best = max(best, _reader_bound(graph, pos, readers.get(oid, []), speed))
    return best
