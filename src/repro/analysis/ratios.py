"""Empirical competitive-ratio estimation from execution traces.

Implements the paper's Definition 1 measurement: at each time ``t`` where
transactions were generated, ``r_S(t) = max_{T in T_t} (t_T - t) / t*``
with ``t*`` replaced by the certified lower bound of
:func:`repro.analysis.lower_bounds.live_set_lower_bound` — so every
reported ratio is an *upper* bound on the true competitive ratio.

Object positions at time ``t`` are replayed from the trace legs: the
object is at a leg's source until it departs and at its destination from
arrival; while mid-leg we charge its destination (the same artificial-node
convention the schedulers use, which can only *lower* the bound — again
the conservative direction).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._types import NodeId, ObjectId, Time
from repro.analysis.lower_bounds import batch_lower_bound, live_set_lower_bound
from repro.network.graph import Graph
from repro.sim.trace import ExecutionTrace
from repro.sim.transactions import Transaction


@dataclass(frozen=True)
class RatioPoint:
    """Competitive ratio sample at one generation time."""

    time: Time
    live: int
    worst_duration: Time
    lower_bound: Time

    @property
    def ratio(self) -> float:
        return self.worst_duration / max(1, self.lower_bound)


class _ObjectTimeline:
    """Object position as a step function of time, from trace legs."""

    def __init__(self, start: NodeId, legs) -> None:
        self._times: List[Time] = []
        self._nodes: List[NodeId] = [start]
        for leg in sorted(legs, key=lambda l: l.depart_time):
            # After departing at depart_time the object is charged to its
            # destination (artificial-node convention).
            self._times.append(leg.depart_time)
            self._nodes.append(leg.dst)

    def position(self, t: Time) -> NodeId:
        i = bisect.bisect_right(self._times, t)
        return self._nodes[i]


def competitive_ratio(
    graph: Graph,
    trace: ExecutionTrace,
    *,
    sample_times: Optional[Sequence[Time]] = None,
) -> Tuple[float, List[RatioPoint]]:
    """Overall ratio ``sup_t r_S(t)`` and the per-time samples.

    ``sample_times`` defaults to all distinct generation times.
    """
    records = list(trace.txns.values())
    if not records:
        return 0.0, []
    legs_by_obj: Dict[ObjectId, list] = {oid: [] for oid in trace.initial_placement}
    for leg in trace.legs:
        legs_by_obj.setdefault(leg.oid, []).append(leg)
    timelines = {
        oid: _ObjectTimeline(start, legs_by_obj.get(oid, []))
        for oid, start in trace.initial_placement.items()
    }
    if sample_times is None:
        sample_times = sorted({r.gen_time for r in records})
    points: List[RatioPoint] = []
    for t in sample_times:
        live = [r for r in records if r.gen_time <= t < r.exec_time or (r.gen_time == t == r.exec_time)]
        if not live:
            continue
        positions = {oid: tl.position(t) for oid, tl in timelines.items()}
        live_txns = [
            Transaction(r.tid, r.home, frozenset(r.objects), r.gen_time, reads=frozenset(r.reads))
            for r in live
        ]
        lb = live_set_lower_bound(graph, positions, live_txns, trace.object_speed_den)
        worst = max(r.exec_time - t for r in live)
        points.append(RatioPoint(t, len(live), worst, lb))
    overall = max((p.ratio for p in points), default=0.0)
    return overall, points


def makespan_ratio(graph: Graph, trace: ExecutionTrace) -> float:
    """Batch-problem ratio: measured makespan over the batch lower bound.

    Only meaningful when all transactions were generated at one time step
    (a batch workload); asserts that precondition.
    """
    records = list(trace.txns.values())
    if not records:
        return 0.0
    gen_times = {r.gen_time for r in records}
    if len(gen_times) != 1:
        raise ValueError("makespan_ratio is only defined for batch workloads")
    t0 = gen_times.pop()
    txns = [
        Transaction(r.tid, r.home, frozenset(r.objects), r.gen_time, reads=frozenset(r.reads))
        for r in records
    ]
    lb = batch_lower_bound(graph, trace.initial_placement, txns, trace.object_speed_den)
    return (trace.makespan() - t0) / max(1, lb)
