"""Markdown rendering of observability summaries (``repro.obs``).

Turns the flat ``summary()`` mapping of a :class:`~repro.obs.CountersProbe`
(or compatible probe) into a report section: event counters, scheduler
decision counts, and the per-phase wall-clock breakdown.  Used by
``run_report`` whenever a :class:`~repro.analysis.experiments.RunResult`
carries an ``obs`` payload, and by ``python -m repro run --obs-counters
--report FILE``.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple

from repro.analysis.tables import render_table


def _split(obs: Mapping[str, object]) -> Tuple[List, List, List]:
    counters, sched, phases = [], [], []
    for key in sorted(obs):
        value = obs[key]
        if key.startswith("sched."):
            sched.append([key[len("sched."):], value])
        elif key.startswith("phase_s."):
            phases.append([key[len("phase_s."):], value])
        elif key not in ("wall_s", "first_step", "last_step"):
            counters.append([key, value])
    return counters, sched, phases


def obs_section(obs: Optional[Mapping[str, object]], *, heading: str = "## Observability") -> str:
    """One markdown section for a probe summary ('' when ``obs`` is falsy)."""
    if not obs:
        return ""
    counters, sched, phases = _split(obs)
    lines: List[str] = [heading, ""]
    if "wall_s" in obs:
        span = ""
        if "first_step" in obs:
            span = f" over active steps {obs['first_step']}..{obs['last_step']}"
        lines.append(f"Wall clock: {obs['wall_s']} s{span}.")
        lines.append("")
    if counters:
        lines.extend(["```", render_table(["counter", "value"], counters), "```", ""])
    if sched:
        lines.extend(["Scheduler decisions:", "", "```",
                      render_table(["event", "count"], sched), "```", ""])
    if phases:
        total = sum(float(v) for _, v in phases) or 1.0
        rows = [[name, secs, f"{100 * float(secs) / total:.1f}%"] for name, secs in phases]
        lines.extend(["Engine phase wall-clock breakdown:", "", "```",
                      render_table(["phase", "seconds", "share"], rows), "```", ""])
    return "\n".join(lines).rstrip() + "\n"
