"""Initial object placement optimization.

The paper takes object placements as given; operators get to choose them.
For a known (or forecast) workload, placing each object at a *weighted
1-median* of its accessors' homes minimizes the total first-approach
distance and, empirically, most of the schedule's travel (bench E22).

This is deliberately per-object (no joint optimization): objects interact
only through transaction assembly times, and the per-object median is
already within 2x of the optimal single-object placement by the classic
median argument — good enough to quantify the knob.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro._types import NodeId, ObjectId
from repro.network.graph import Graph
from repro.sim.transactions import TxnSpec
from repro.workloads.arrivals import ManualWorkload


def weighted_one_median(
    graph: Graph, homes: Sequence[NodeId], weights: Optional[Sequence[float]] = None
) -> NodeId:
    """Node minimizing the (weighted) sum of distances to ``homes``."""
    if not homes:
        return 0
    if weights is None:
        weights = [1.0] * len(homes)
    best, best_cost = 0, float("inf")
    rows = [graph.distances_from(h) for h in homes]
    for v in graph.nodes():
        cost = sum(w * row[v] for w, row in zip(weights, rows))
        if cost < best_cost:
            best, best_cost = v, cost
    return best


def optimize_placement(
    graph: Graph,
    specs: Sequence[TxnSpec],
    *,
    discount: float = 0.0,
) -> Dict[ObjectId, NodeId]:
    """Per-object weighted 1-median placement for a known spec list.

    ``discount`` in [0, 1) geometrically down-weights later accesses
    (early requesters matter more for the first approach; later ones are
    reached from wherever the object already is).  ``discount=0`` treats
    all accesses equally.
    """
    accessors: Dict[ObjectId, List[NodeId]] = {}
    for spec in sorted(specs, key=lambda s: s.gen_time):
        for oid in (*spec.objects, *spec.reads):
            accessors.setdefault(oid, []).append(spec.home)
    placement: Dict[ObjectId, NodeId] = {}
    for oid, homes in accessors.items():
        if discount > 0:
            weights = [(1.0 - discount) ** i for i in range(len(homes))]
        else:
            weights = None
        placement[oid] = weighted_one_median(graph, homes, weights)
    return placement


def replace_placement(workload: ManualWorkload, placement: Mapping[ObjectId, NodeId]) -> ManualWorkload:
    """A copy of ``workload`` with a new initial placement.

    Objects absent from ``placement`` keep their original node (the
    optimizer only sees accessed objects).
    """
    merged = dict(workload.initial_objects())
    merged.update(placement)
    return ManualWorkload(merged, workload.arrivals())
