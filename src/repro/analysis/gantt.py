"""ASCII Gantt rendering of execution traces.

Terminal-friendly visualisation of what the schedule actually did: one
lane per object showing where it rested and when it travelled, plus one
lane per (selected) node showing generation-to-commit spans.  Used by the
examples and handy when debugging a scheduler.

Legend for object lanes:  ``3``/``12`` node ids while at rest (printed at
the resting position, padded with ``-``), ``>`` while in transit, ``*``
at the step a transaction consumed it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro._types import ObjectId, Time
from repro.sim.trace import ExecutionTrace


def _scale(t: Time, t_max: Time, width: int) -> int:
    if t_max <= 0:
        return 0
    return min(width - 1, (t * (width - 1)) // t_max)


def object_lanes(
    trace: ExecutionTrace,
    *,
    width: int = 72,
    objects: Optional[Sequence[ObjectId]] = None,
) -> List[str]:
    """One line of text per object."""
    t_max = max(trace.makespan(), trace.end_time, 1)
    oids = sorted(objects if objects is not None else trace.initial_placement)
    lines = []
    for oid in oids:
        lane = ["-"] * width
        pos = trace.initial_placement.get(oid)
        t = 0
        for leg in sorted(trace.legs_of(oid), key=lambda l: l.depart_time):
            a, b = _scale(leg.depart_time, t_max, width), _scale(leg.arrive_time, t_max, width)
            label = str(pos)
            at = _scale(t, t_max, width)
            for i, ch in enumerate(label):
                if at + i < width and lane[at + i] == "-":
                    lane[at + i] = ch
            for i in range(a, b + 1):
                lane[i] = ">"
            pos, t = leg.dst, leg.arrive_time
        label = str(pos)
        at = _scale(t, t_max, width)
        for i, ch in enumerate(label):
            if at + i < width and lane[at + i] == "-":
                lane[at + i] = ch
        for rec in trace.txns.values():
            if oid in rec.objects or oid in rec.reads:
                lane[_scale(rec.exec_time, t_max, width)] = "*"
        lines.append(f"o{oid:<3}|{''.join(lane)}|")
    return lines


def txn_lanes(
    trace: ExecutionTrace,
    *,
    width: int = 72,
    top: int = 10,
) -> List[str]:
    """One line per transaction (longest-latency first, up to ``top``):
    ``.`` waiting from generation, ``#`` at commit."""
    t_max = max(trace.makespan(), trace.end_time, 1)
    recs = sorted(trace.txns.values(), key=lambda r: (-r.latency, r.tid))[:top]
    lines = []
    for rec in recs:
        lane = [" "] * width
        a = _scale(rec.gen_time, t_max, width)
        b = _scale(rec.exec_time, t_max, width)
        for i in range(a, b):
            lane[i] = "."
        lane[b] = "#"
        lines.append(f"t{rec.tid:<3}|{''.join(lane)}| n{rec.home} lat={rec.latency}")
    return lines


def render_gantt(trace: ExecutionTrace, *, width: int = 72, top_txns: int = 8) -> str:
    """Combined object + transaction chart as one string."""
    t_max = max(trace.makespan(), trace.end_time, 1)
    header = f"time 0 {'.' * (width - len(str(t_max)) - 8)} {t_max}"
    parts = [header, "objects (digits=resting node, > = in transit, * = consumed):"]
    parts.extend(object_lanes(trace, width=width))
    parts.append(f"slowest {top_txns} transactions (. = live, # = commit):")
    parts.extend(txn_lanes(trace, width=width, top=top_txns))
    return "\n".join(parts)
