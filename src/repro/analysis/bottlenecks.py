"""Structural bottleneck prediction vs measured congestion.

Which edges will hurt under bounded link capacity?  Weighted edge
betweenness centrality (computed via networkx on the exported graph)
predicts it from structure alone; :func:`measured_edge_load` counts the
traversals a trace actually put on each edge (hop-motion traces give the
exact edge sequence).  Bench E20's topologies are validated by the
rank correlation between the two (`predicted_vs_measured`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro._types import NodeId
from repro.network.convert import to_networkx
from repro.network.graph import Graph
from repro.sim.trace import ExecutionTrace

EdgeKey = Tuple[NodeId, NodeId]


def _key(u: NodeId, v: NodeId) -> EdgeKey:
    return (u, v) if u < v else (v, u)


def edge_betweenness(graph: Graph) -> Dict[EdgeKey, float]:
    """Weighted edge betweenness centrality of every edge."""
    nxg = to_networkx(graph)
    raw = nx.edge_betweenness_centrality(nxg, weight="weight")
    return {_key(u, v): c for (u, v), c in raw.items()}


def measured_edge_load(graph: Graph, trace: ExecutionTrace) -> Dict[EdgeKey, int]:
    """Traversal counts per edge from a trace.

    Hop-motion traces contribute their exact edges; leg-motion traces are
    expanded along one shortest path per leg (the path the engine would
    have taken).
    """
    load: Dict[EdgeKey, int] = {_key(u, v): 0 for u, v, _ in graph.edges()}
    for leg in trace.legs:
        if leg.dst in graph.neighbors(leg.src):
            load[_key(leg.src, leg.dst)] += 1
        else:
            path = graph.shortest_path(leg.src, leg.dst)
            for a, b in zip(path, path[1:]):
                load[_key(a, b)] += 1
    return load


def predicted_vs_measured(
    graph: Graph, trace: ExecutionTrace
) -> Tuple[float, List[Tuple[EdgeKey, float, int]]]:
    """Spearman rank correlation between betweenness and measured load,
    with the per-edge table (sorted by measured load, heaviest first)."""
    predicted = edge_betweenness(graph)
    measured = measured_edge_load(graph, trace)
    keys = sorted(measured)
    if len(keys) < 2:
        return 1.0, [(k, predicted.get(k, 0.0), measured[k]) for k in keys]
    p = [predicted.get(k, 0.0) for k in keys]
    m = [float(measured[k]) for k in keys]
    rho = _spearman(p, m)
    table = sorted(
        ((k, predicted.get(k, 0.0), measured[k]) for k in keys),
        key=lambda row: -row[2],
    )
    return rho, table


def _rank(values: List[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def _spearman(a: List[float], b: List[float]) -> float:
    ra, rb = _rank(a), _rank(b)
    n = len(ra)
    ma = sum(ra) / n
    mb = sum(rb) / n
    cov = sum((x - ma) * (y - mb) for x, y in zip(ra, rb))
    va = sum((x - ma) ** 2 for x in ra) ** 0.5
    vb = sum((y - mb) ** 2 for y in rb) ** 0.5
    if va == 0 or vb == 0:
        return 0.0
    return cov / (va * vb)
