"""SLO analysis for open-system (streaming) runs.

A closed run is judged by makespan; an open run at arrival rate λ is
judged the way a service is: **is it stable** (does the backlog stay
bounded?) and **what latency do the percentile tails see**?  This module
turns one truncated open trace — ``Simulator.run(until=...)`` with an
open workload, which records arrival/commit/backlog bookkeeping in
``trace.meta["open"]`` — into exactly those answers:

* :func:`latency_percentiles` — p50/p99/p999 commit latency (time in
  system, ``exec_time - gen_time``) over post-warmup transactions;
* :func:`backlog_series` — in-system transaction count over time,
  reconstructed exactly from committed gen/exec times plus the
  uncommitted gen times the engine recorded at the horizon;
* :func:`stability_verdict` — the backlog-growth heuristic: compare the
  mean backlog of the first and second halves of the measurement window
  (and the post-warmup commit rate against the arrival rate).  A stable
  system's backlog fluctuates around a constant; an unstable one grows
  roughly linearly, so its second-half mean is well above its first;
* :func:`slo_summary` — one :class:`SloSummary` row combining all of
  the above, the unit the ``repro stream`` report and the frontier
  bisection consume.

Everything here is a pure function of the trace, so summaries are
byte-identical across ``repro.parallel`` worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._types import Time
from repro.errors import ReproError
from repro.sim.trace import ExecutionTrace

__all__ = [
    "SloSummary",
    "StabilityVerdict",
    "backlog_series",
    "latency_percentiles",
    "slo_summary",
    "stability_verdict",
]

#: the latency percentiles every report tabulates
PERCENTILES: Tuple[float, ...] = (50.0, 99.0, 99.9)


def _open_meta(trace: ExecutionTrace) -> Dict[str, object]:
    meta = trace.meta.get("open")
    if meta is None:
        raise ReproError(
            "trace has no open-run bookkeeping (trace.meta['open']); "
            "run an open workload via Simulator.run(until=...) or run_stream()"
        )
    return meta  # type: ignore[return-value]


def latency_percentiles(
    trace: ExecutionTrace, *, warmup: Time = 0
) -> Dict[str, float]:
    """``{"p50": ..., "p99": ..., "p999": ...}`` commit latency.

    Measured over transactions *generated* at or after ``warmup`` (the
    open-system convention: warmup arrivals are excluded so ramp-up
    cannot pollute the tail).  Empty window yields NaNs.
    """
    lats = [
        r.latency
        for r in trace.txns.values()
        if r.gen_time >= warmup
    ]
    if not lats:
        return {"p50": float("nan"), "p99": float("nan"), "p999": float("nan")}
    arr = np.asarray(sorted(lats), dtype=float)
    p50, p99, p999 = (float(np.percentile(arr, q)) for q in PERCENTILES)
    return {"p50": p50, "p99": p99, "p999": p999}


def backlog_series(trace: ExecutionTrace) -> List[Tuple[Time, int]]:
    """``(t, in-system count)`` for every step ``0..horizon``.

    The count at ``t`` is arrivals with ``gen_time <= t`` minus commits
    with ``exec_time <= t``; transactions still live at the horizon
    contribute via the ``uncommitted_gen_times`` the engine recorded.
    """
    meta = _open_meta(trace)
    horizon = int(meta["horizon"])
    deltas = np.zeros(horizon + 2, dtype=int)
    for r in trace.txns.values():
        deltas[min(r.gen_time, horizon)] += 1
        deltas[min(r.exec_time, horizon) + 1] -= 1
    for g in meta["uncommitted_gen_times"]:  # type: ignore[union-attr]
        deltas[min(int(g), horizon)] += 1
    # Service mode: a deadline-expired transaction occupied the system
    # from admission until its cancellation step (empty when disabled).
    for e in trace.expiries:
        deltas[min(e.gen_time, horizon)] += 1
        deltas[min(e.time, horizon) + 1] -= 1
    series = np.cumsum(deltas[: horizon + 1])
    return [(t, int(series[t])) for t in range(horizon + 1)]


@dataclass(frozen=True)
class StabilityVerdict:
    """The backlog-growth stability call for one open run."""

    stable: bool
    #: mean in-system count over the first / second half of the window
    backlog_first_half: float
    backlog_second_half: float
    #: committed per step post-warmup vs generated per step post-warmup
    commit_rate: float
    arrival_rate: float

    @property
    def growth(self) -> float:
        return self.backlog_second_half - self.backlog_first_half


def stability_verdict(
    trace: ExecutionTrace,
    *,
    warmup: Optional[Time] = None,
    slack: float = 0.25,
) -> StabilityVerdict:
    """Judge stability from backlog growth and rate balance.

    The run is **unstable** when either signal trips:

    * the mean backlog over the second half of the post-warmup window
      exceeds the first-half mean by more than ``slack`` of it (plus an
      absolute grace of 2 transactions, so tiny queues never flap), or
    * the post-warmup commit rate falls short of the post-warmup
      arrival rate by more than ``slack``.

    Both signals are deliberately coarse: the question a frontier probe
    asks is "is λ clearly beyond this scheduler?", and a coarse verdict
    keeps the bisection monotone in practice.
    """
    meta = _open_meta(trace)
    horizon = int(meta["horizon"])
    if warmup is None:
        warmup = int(meta["warmup"])
    series = backlog_series(trace)
    window = [b for t, b in series if t >= warmup]
    half = len(window) // 2
    if half:
        first = float(np.mean(window[:half]))
        second = float(np.mean(window[half:]))
    else:
        # Boundary case: a 0/1-point window (the run ends exactly at the
        # horizon with the warmup right against it) carries no growth
        # evidence.  Forcing first=0.0 here used to make any standing
        # backlog > 2 read as "growing" and flip the verdict to unstable
        # on the boundary; treat both halves as the lone sample instead.
        first = second = float(window[-1]) if window else 0.0
    span = max(horizon - warmup, 1)
    committed = sum(1 for r in trace.txns.values() if r.exec_time > warmup)
    expired = sum(1 for e in trace.expiries if e.gen_time > warmup)
    arrived = (
        sum(1 for r in trace.txns.values() if r.gen_time > warmup)
        + sum(
            1 for g in meta["uncommitted_gen_times"] if g > warmup  # type: ignore[union-attr]
        )
        + expired
    )
    commit_rate = committed / span
    arrival_rate = arrived / span
    backlog_grows = second > first * (1.0 + slack) + 2.0
    # Deadline-expired transactions were *resolved*, not left behind: a
    # service run sheds its way back to balance, and only unresolved
    # work counts against the rate signal.  expired == 0 without the
    # service, so the comparison is unchanged for plain open runs.
    falls_behind = (committed + expired) / span < arrival_rate * (1.0 - slack)
    return StabilityVerdict(
        stable=not (backlog_grows or falls_behind),
        backlog_first_half=first,
        backlog_second_half=second,
        commit_rate=commit_rate,
        arrival_rate=arrival_rate,
    )


@dataclass(frozen=True)
class SloSummary:
    """One open run, folded to the numbers a capacity report tabulates."""

    horizon: Time
    warmup: Time
    generated: int
    committed: int
    backlog: int
    arrival_rate: float
    throughput: float
    p50: float
    p99: float
    p999: float
    mean_latency: float
    stable: bool
    backlog_first_half: float
    backlog_second_half: float
    #: service-mode extensions (repro.service), ``None`` when the run
    #: had no ingestion front-end so pre-service JSON stays identical:
    #: post-warmup commits per step of *admitted* traffic
    goodput: Optional[float] = None
    #: sheds / submissions over the whole run
    shed_rate: Optional[float] = None
    #: deadline commits / (deadline commits + expiries); 1.0 when no
    #: transaction carried a deadline
    deadline_hit_rate: Optional[float] = None
    #: p99 commit latency of admitted transactions, measured from
    #: *submission* (queue wait included)
    p99_admitted: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "horizon": self.horizon,
            "warmup": self.warmup,
            "generated": self.generated,
            "committed": self.committed,
            "backlog": self.backlog,
            "arrival_rate": self.arrival_rate,
            "throughput": self.throughput,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "mean_latency": self.mean_latency,
            "stable": self.stable,
            "backlog_first_half": self.backlog_first_half,
            "backlog_second_half": self.backlog_second_half,
        }
        if self.goodput is not None:
            out["goodput"] = self.goodput
            out["shed_rate"] = self.shed_rate
            out["deadline_hit_rate"] = self.deadline_hit_rate
            out["p99_admitted"] = self.p99_admitted
        return out


def slo_summary(trace: ExecutionTrace, *, warmup: Optional[Time] = None) -> SloSummary:
    """Fold one open trace into an :class:`SloSummary`."""
    from repro.analysis.steady_state import throughput as _throughput

    meta = _open_meta(trace)
    if warmup is None:
        warmup = int(meta["warmup"])
    verdict = stability_verdict(trace, warmup=warmup)
    pcts = latency_percentiles(trace, warmup=warmup)
    lats = [r.latency for r in trace.txns.values() if r.gen_time >= warmup]
    mean_lat = float(np.mean(lats)) if lats else float("nan")
    horizon = int(meta["horizon"])
    tput = (
        _throughput(trace, warmup=warmup, horizon=horizon)
        if horizon > warmup
        else 0.0
    )
    svc = trace.meta.get("service")
    goodput = shed_rate = hit_rate = p99_admitted = None
    if svc is not None:
        goodput = verdict.commit_rate
        shed_rate = svc["shed"] / max(1, svc["submitted"])
        decided = svc["deadline_commits"] + svc["expired"]
        hit_rate = svc["deadline_commits"] / decided if decided else 1.0
        p99_admitted = pcts["p99"]
    return SloSummary(
        horizon=horizon,
        warmup=int(warmup),
        generated=int(meta["generated"]),
        committed=int(meta["committed"]),
        backlog=int(meta["backlog"]),
        arrival_rate=verdict.arrival_rate,
        throughput=tput,
        p50=pcts["p50"],
        p99=pcts["p99"],
        p999=pcts["p999"],
        mean_latency=mean_lat,
        stable=verdict.stable,
        backlog_first_half=verdict.backlog_first_half,
        backlog_second_half=verdict.backlog_second_half,
        goodput=goodput,
        shed_rate=shed_rate,
        deadline_hit_rate=hit_rate,
        p99_admitted=p99_admitted,
    )
