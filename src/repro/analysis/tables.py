"""Fixed-width table rendering for benchmark/experiment output.

The benches print the same row/series structure EXPERIMENTS.md records;
keeping the renderer in the library (instead of each bench) guarantees the
formats stay in sync.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table; returns the string (callers print)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
