"""Markdown report generation for runs and comparisons.

``python -m repro`` prints tables; this module produces durable markdown
artifacts (suitable for EXPERIMENTS.md-style records or CI artifacts):
a single-run report with metrics, ratio samples, hotspots, and the ASCII
gantt; and a comparison report across schedulers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import RunResult
from repro.analysis.gantt import render_gantt
from repro.analysis.obs_report import obs_section
from repro.analysis.tables import render_table
from repro.analysis.timeline import hottest_nodes, peak_concurrency, waiting_time_breakdown
from repro.network.graph import Graph


def _metrics_rows(res: RunResult) -> List[List[object]]:
    m = res.metrics
    return [
        ["transactions", m.num_txns],
        ["makespan", m.makespan],
        ["max latency", m.max_latency],
        ["mean latency", round(m.mean_latency, 2)],
        ["p50 latency", round(m.p50_latency, 2)],
        ["p99 latency", round(m.p99_latency, 2)],
        ["object travel", m.total_object_travel],
        ["control messages", m.messages_sent],
        ["competitive ratio (vs LB)", round(res.competitive_ratio, 3)],
    ]


def _degradation_lines(res: RunResult) -> List[str]:
    """Fault/recovery section (empty for fault-free runs).

    Summarises what the injected faults (:mod:`repro.faults`) cost the
    run: the fault mix, how many recovery reschedules the engine issued,
    the deepest exponential backoff reached, and the total slack the
    delays added to object motion.
    """
    trace = res.trace
    if not trace.faults and not trace.reschedules:
        return []
    counts = trace.fault_counts()
    delay_steps = sum(
        f.extra for f in trace.faults if f.kind in ("delay", "crash-delay", "msg-delay")
    )
    rows = [[kind, n] for kind, n in sorted(counts.items())]
    rows.append(["reschedules", len(trace.reschedules)])
    rows.append(["max backoff", trace.max_backoff()])
    rows.append(["delay slack (steps)", delay_steps])
    lines = ["", "## Fault degradation", "", "```",
             render_table(["fault", "count"], rows), "```", ""]
    resched_tids = {r.tid for r in trace.reschedules}
    lines.append(
        f"{len(resched_tids)} of {len(trace.txns)} transactions needed recovery; "
        f"all committed despite the faults above (the certifier reconciles every "
        f"step of leg slack against the fault records)."
    )
    return lines


def run_report(
    graph: Graph,
    res: RunResult,
    *,
    title: str = "Run report",
    include_gantt: bool = True,
    gantt_width: int = 72,
) -> str:
    """Markdown report for one run."""
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"Graph: `{graph.name}` (n={graph.num_nodes}, D={graph.diameter()})")
    lines.append("")
    lines.append("## Metrics")
    lines.append("")
    lines.append("```")
    lines.append(render_table(["metric", "value"], _metrics_rows(res)))
    lines.append("```")
    parts = waiting_time_breakdown(res.trace)
    lines.append("")
    lines.append(
        f"Mean latency splits into {parts['scheduling_delay']:.1f} scheduling delay "
        f"+ {parts['execution_wait']:.1f} execution wait; peak concurrency "
        f"{peak_concurrency(res.trace)}."
    )
    hot = hottest_nodes(res.trace, top=5)
    if hot:
        lines.append("")
        lines.append("## Hottest nodes")
        lines.append("")
        lines.append("```")
        lines.append(render_table(
            ["node", "txns", "mean-lat", "out", "in"],
            [[s.node, s.txns_executed, round(s.mean_latency, 1),
              s.objects_departed, s.objects_arrived] for s in hot],
        ))
        lines.append("```")
    if res.ratio_points:
        worst = max(res.ratio_points, key=lambda p: p.ratio)
        lines.append("")
        lines.append(
            f"Worst competitive-ratio sample: t={worst.time}, {worst.live} live, "
            f"duration {worst.worst_duration} vs lower bound {worst.lower_bound} "
            f"(ratio {worst.ratio:.2f})."
        )
    lines.extend(_degradation_lines(res))
    if res.obs:
        lines.append("")
        lines.append(obs_section(res.obs).rstrip())
    if include_gantt and res.trace.txns:
        lines.append("")
        lines.append("## Schedule")
        lines.append("")
        lines.append("```")
        lines.append(render_gantt(res.trace, width=gantt_width))
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def comparison_report(
    graph: Graph,
    results: Sequence[Tuple[str, RunResult]],
    *,
    title: str = "Scheduler comparison",
) -> str:
    """Markdown report comparing named results on the same workload."""
    lines = [f"# {title}", "", f"Graph: `{graph.name}`", "", "```"]
    rows = []
    for name, res in results:
        m = res.metrics
        rows.append([
            name, m.num_txns, m.makespan, round(m.mean_latency, 1),
            round(m.p99_latency, 1), round(res.competitive_ratio, 2), m.messages_sent,
        ])
    lines.append(render_table(
        ["scheduler", "txns", "makespan", "mean-lat", "p99-lat", "ratio", "msgs"], rows
    ))
    lines.append("```")
    best = min(results, key=lambda nr: nr[1].metrics.makespan)
    lines.append("")
    lines.append(f"Best makespan: **{best[0]}** ({best[1].metrics.makespan}).")
    lines.append("")
    return "\n".join(lines)
