"""Timeline analytics over execution traces.

Answers the questions a systems operator asks of a run: how many
transactions were live over time, how busy was the network with object
traffic, which nodes did the work, and where the waiting happened.
All series are step functions sampled at event times (generation,
execution, leg endpoints), so no resolution is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro._types import NodeId, Time, TxnId
from repro.sim.trace import ExecutionTrace


def live_count_series(trace: ExecutionTrace) -> List[Tuple[Time, int]]:
    """``(t, live transactions)`` at every change point."""
    deltas: Dict[Time, int] = {}
    for rec in trace.txns.values():
        deltas[rec.gen_time] = deltas.get(rec.gen_time, 0) + 1
        deltas[rec.exec_time] = deltas.get(rec.exec_time, 0) - 1
    series = []
    level = 0
    for t in sorted(deltas):
        level += deltas[t]
        series.append((t, level))
    return series


def transit_series(trace: ExecutionTrace) -> List[Tuple[Time, int]]:
    """``(t, objects in transit)`` at every change point (masters only)."""
    deltas: Dict[Time, int] = {}
    for leg in trace.legs:
        deltas[leg.depart_time] = deltas.get(leg.depart_time, 0) + 1
        deltas[leg.arrive_time] = deltas.get(leg.arrive_time, 0) - 1
    series = []
    level = 0
    for t in sorted(deltas):
        level += deltas[t]
        series.append((t, level))
    return series


def peak_concurrency(trace: ExecutionTrace) -> int:
    """Maximum number of simultaneously live transactions."""
    return max((lvl for _, lvl in live_count_series(trace)), default=0)


@dataclass(frozen=True)
class NodeStats:
    """Per-node activity summary."""

    node: NodeId
    txns_executed: int
    total_latency: Time
    objects_departed: int
    objects_arrived: int

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.txns_executed if self.txns_executed else 0.0


def node_utilization(trace: ExecutionTrace) -> Dict[NodeId, NodeStats]:
    """Work and traffic per node."""
    executed: Dict[NodeId, int] = {}
    latency: Dict[NodeId, Time] = {}
    departed: Dict[NodeId, int] = {}
    arrived: Dict[NodeId, int] = {}
    for rec in trace.txns.values():
        executed[rec.home] = executed.get(rec.home, 0) + 1
        latency[rec.home] = latency.get(rec.home, 0) + rec.latency
    for leg in trace.legs:
        departed[leg.src] = departed.get(leg.src, 0) + 1
        arrived[leg.dst] = arrived.get(leg.dst, 0) + 1
    nodes = set(executed) | set(departed) | set(arrived)
    return {
        n: NodeStats(
            node=n,
            txns_executed=executed.get(n, 0),
            total_latency=latency.get(n, 0),
            objects_departed=departed.get(n, 0),
            objects_arrived=arrived.get(n, 0),
        )
        for n in sorted(nodes)
    }


def hottest_nodes(trace: ExecutionTrace, top: int = 5) -> List[NodeStats]:
    """Nodes ranked by executed transactions (ties by traffic)."""
    stats = node_utilization(trace).values()
    ranked = sorted(
        stats,
        key=lambda s: (-s.txns_executed, -(s.objects_departed + s.objects_arrived), s.node),
    )
    return ranked[:top]


def waiting_time_breakdown(trace: ExecutionTrace) -> Dict[str, float]:
    """Split mean latency into scheduling delay (generation -> schedule)
    and execution wait (schedule -> commit).

    Greedy schedules instantly (zero scheduling delay); bucket and
    distributed schedulers accumulate it in buckets and discovery."""
    if not trace.txns:
        return {"scheduling_delay": 0.0, "execution_wait": 0.0}
    n = len(trace.txns)
    sched = sum(r.schedule_time - r.gen_time for r in trace.txns.values()) / n
    wait = sum(r.exec_time - r.schedule_time for r in trace.txns.values()) / n
    return {"scheduling_delay": sched, "execution_wait": wait}
