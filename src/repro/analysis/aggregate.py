"""Multi-seed replication and aggregation.

One seeded run is an anecdote; the experiment tables report distributions.
:func:`replicate` runs a seeded experiment factory across seeds and
collects any numeric metrics; :class:`Aggregate` summarizes them with
mean, min/max, and a seeded-bootstrap confidence interval (no scipy
dependence on normality assumptions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.parallel import WorkerPool


@dataclass(frozen=True)
class Aggregate:
    """Summary of one metric across replications."""

    name: str
    values: Tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def min(self) -> float:
        return float(np.min(self.values)) if self.values else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def ci(self, level: float = 0.95, resamples: int = 2000, seed: int = 0) -> Tuple[float, float]:
        """Seeded-bootstrap percentile confidence interval for the mean."""
        if not self.values:
            return (0.0, 0.0)
        if len(self.values) == 1:
            v = self.values[0]
            return (v, v)
        rng = np.random.default_rng(seed)
        arr = np.asarray(self.values)
        idx = rng.integers(0, len(arr), size=(resamples, len(arr)))
        means = arr[idx].mean(axis=1)
        lo = float(np.percentile(means, 100 * (1 - level) / 2))
        hi = float(np.percentile(means, 100 * (1 + level) / 2))
        return (lo, hi)

    def summary_row(self) -> List[object]:
        lo, hi = self.ci()
        return [self.name, self.n, round(self.mean, 2), round(self.std, 2),
                round(self.min, 2), round(self.max, 2), f"[{lo:.2f},{hi:.2f}]"]


class _SeedRunner:
    """Picklable per-seed adapter so ``replicate`` can fan out via pmap."""

    def __init__(self, experiment, config, workload):
        self.experiment = experiment
        self.config = config
        self.workload = workload

    def __call__(self, seed):
        args = [seed]
        if self.config is not None or self.workload is not None:
            args.append(self.config)
        if self.workload is not None:
            args.append(self.workload.with_seed(seed))
        return self.experiment(*args)


def replicate(
    experiment: Callable[..., Mapping[str, float]],
    seeds: Sequence[int],
    *,
    config=None,
    workload=None,
    jobs: int = 1,
) -> Dict[str, Aggregate]:
    """Run ``experiment(seed)`` for each seed; aggregate each metric key.

    The experiment returns a flat ``{metric: value}`` mapping; all runs
    must return the same keys — a mismatch raises :class:`ReproError`
    naming the offending seed and the missing/extra keys.  When ``config``
    (a :class:`~repro.sim.config.SimConfig`) is given, the factory is
    called as ``experiment(seed, config)`` so one engine configuration
    threads through every replication — typically forwarded to
    ``run_experiment(..., config=config)``.

    When ``workload`` (a :class:`~repro.workloads.spec.WorkloadSpec`) is
    given, the factory is called as ``experiment(seed, config,
    workload.with_seed(seed))`` — the spec-first form: one frozen
    description, re-seeded per replication, typically forwarded straight
    to ``run_experiment`` / ``run_stream``.

    ``jobs`` > 1 shards the seeds across a process pool
    (:mod:`repro.parallel`); each seed is an independent pure function of
    ``(seed, config)``, so the aggregates are identical to the serial
    result for any worker count.
    """
    seeds = list(seeds)
    with WorkerPool(_SeedRunner(experiment, config, workload), jobs=jobs) as pool:
        outputs = pool.map(seeds)

    collected: Dict[str, List[float]] = {}
    keys = None
    first_seed = None
    for seed, out in zip(seeds, outputs):
        if keys is None:
            keys = set(out)
            first_seed = seed
            for k in keys:
                collected[k] = []
        elif set(out) != keys:
            missing = sorted(keys - set(out))
            extra = sorted(set(out) - keys)
            raise ReproError(
                f"experiment returned inconsistent metric keys for seed {seed}: "
                f"missing {missing}, extra {extra} "
                f"(relative to seed {first_seed}'s keys {sorted(keys)})"
            )
        for k, v in out.items():
            collected[k].append(float(v))
    return {k: Aggregate(k, tuple(v)) for k, v in collected.items()}
