"""Metrics, lower bounds, competitive-ratio estimation, and the experiment
harness that regenerates the paper-validation tables (EXPERIMENTS.md)."""

from repro.analysis.lower_bounds import (
    batch_lower_bound,
    object_load_bound,
    object_mst_bound,
)
from repro.analysis.gantt import object_lanes, render_gantt, txn_lanes
from repro.analysis.placement import optimize_placement, replace_placement, weighted_one_median
from repro.analysis.metrics import RunMetrics, jain_fairness, latency_fairness, summarize
from repro.analysis.obs_report import obs_section
from repro.analysis.report import comparison_report, run_report
from repro.analysis.steady_state import (
    response_time_series,
    saturation_point,
    sliding_window_throughput,
    throughput,
)
from repro.analysis.ratios import competitive_ratio, makespan_ratio
from repro.analysis.tables import render_table
from repro.analysis.aggregate import Aggregate, replicate
from repro.analysis.bottlenecks import (
    edge_betweenness,
    measured_edge_load,
    predicted_vs_measured,
)
from repro.analysis.exact import (
    ExactSolverLimit,
    earliest_schedule_for_order,
    exact_optimal_makespan,
    exact_ratio,
)
from repro.analysis.experiments import (
    RunResult,
    StreamResult,
    run_experiment,
    run_grid,
    run_stream,
)
from repro.analysis.frontier import (
    FrontierResult,
    SchedulerFrontier,
    stability_frontier,
)
from repro.analysis.slo import (
    SloSummary,
    StabilityVerdict,
    backlog_series,
    latency_percentiles,
    slo_summary,
    stability_verdict,
)
from repro.analysis.timeline import (
    hottest_nodes,
    live_count_series,
    node_utilization,
    peak_concurrency,
    transit_series,
    waiting_time_breakdown,
)

__all__ = [
    "batch_lower_bound",
    "object_mst_bound",
    "object_load_bound",
    "RunMetrics",
    "summarize",
    "competitive_ratio",
    "makespan_ratio",
    "render_table",
    "RunResult",
    "run_experiment",
    "run_grid",
    "Aggregate",
    "replicate",
    "exact_optimal_makespan",
    "exact_ratio",
    "earliest_schedule_for_order",
    "ExactSolverLimit",
    "jain_fairness",
    "latency_fairness",
    "render_gantt",
    "object_lanes",
    "txn_lanes",
    "run_report",
    "comparison_report",
    "obs_section",
    "optimize_placement",
    "replace_placement",
    "weighted_one_median",
    "edge_betweenness",
    "measured_edge_load",
    "predicted_vs_measured",
    "throughput",
    "sliding_window_throughput",
    "response_time_series",
    "saturation_point",
    "live_count_series",
    "transit_series",
    "peak_concurrency",
    "node_utilization",
    "hottest_nodes",
    "waiting_time_breakdown",
    # open-system (streaming) analysis
    "StreamResult",
    "run_stream",
    "SloSummary",
    "StabilityVerdict",
    "slo_summary",
    "stability_verdict",
    "latency_percentiles",
    "backlog_series",
    "FrontierResult",
    "SchedulerFrontier",
    "stability_frontier",
]
