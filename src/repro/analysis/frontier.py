"""Stability frontiers: bisecting λ to find each scheduler's capacity.

The open-system question "is scheduler S stable at arrival rate λ?"
(:mod:`repro.analysis.slo`) has a monotone answer in practice — stable
below some critical rate λ*, unstable above it — so λ* is findable by
bisection.  This module runs that search for several schedulers at once
on the deterministic :mod:`repro.parallel` runtime:

* each **round** gathers one probe rate per still-searching scheduler
  and fans the batch out through one :func:`~repro.parallel.pmap` call
  (lockstep bisection: wall-clock scales with rounds, not with
  ``schedulers x rounds``);
* bracket updates depend only on the index-ordered verdicts, so the
  frontier is **byte-identical for every** ``jobs`` **value** — the same
  guarantee the rest of the repo's fan-out points make;
* every probe is a pure seeded :class:`~repro.workloads.spec.
  WorkloadSpec` run, so the whole frontier is reproducible from
  ``(topology, workload spec, λ-range, seed)``.

The result — λ* per scheduler plus the SLO row at the last stable probe
— is the capacity-planning answer: "how much load can each scheduler
take on this topology, and what latency tail do you get just below the
cliff?"  Surfaced on the CLI as ``repro frontier``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro._types import Time
from repro.errors import WorkloadError
from repro.sim.config import SimConfig
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "FrontierProbe",
    "FrontierResult",
    "SchedulerFrontier",
    "rate_knob",
    "stability_frontier",
]

#: which knob carries the arrival rate, per open workload kind
_RATE_KNOBS = {
    "poisson-open": "lam",
    "diurnal-open": "lam",
    "onoff-open": "lam_on",
    "adversarial-open": "rate",
}


def rate_knob(kind: str) -> str:
    """The knob name the frontier bisects for ``kind``."""
    try:
        return _RATE_KNOBS[kind]
    except KeyError:
        raise WorkloadError(
            f"workload kind {kind!r} has no rate knob to bisect "
            f"(open kinds: {sorted(_RATE_KNOBS)})"
        ) from None


# Worker-side topology cache, keyed by spec string (idiom shared with the
# chaos harness): one Dijkstra-warmed Graph per process, not per probe.
_GRAPH_CACHE: Dict[str, Any] = {}


def _cached_topology(topology: str):
    graph = _GRAPH_CACHE.get(topology)
    if graph is None:
        from repro.cli import parse_topology

        graph = _GRAPH_CACHE[topology] = parse_topology(topology)
    return graph


@dataclass(frozen=True)
class FrontierProbe:
    """One picklable bisection probe: scheduler x rate, fully seeded."""

    topology: str
    scheduler: str
    workload: WorkloadSpec
    lam: float
    until: Time
    warmup: Time


def run_probe(probe: FrontierProbe) -> Dict[str, Any]:
    """Run one probe and fold it to a flat dict (the pmap worker fn)."""
    from repro.analysis.experiments import run_stream
    from repro.cli import make_scheduler

    graph = _cached_topology(probe.topology)
    scheduler, speed = make_scheduler(probe.scheduler, graph)
    cfg = SimConfig().with_overrides(object_speed_den=speed)
    result = run_stream(
        graph,
        scheduler,
        probe.workload,
        until=probe.until,
        warmup=probe.warmup,
        config=cfg,
    )
    row = result.slo.to_dict()
    row["scheduler"] = probe.scheduler
    row["lam"] = probe.lam
    return row


@dataclass
class SchedulerFrontier:
    """One scheduler's frontier: λ* and the SLO at the last stable probe."""

    scheduler: str
    #: largest probed rate judged stable; 0.0 when even ``lam_min`` fails
    lambda_star: float
    #: SLO row (slo.to_dict() + scheduler/lam) at λ*; None when unstable
    #: across the whole range
    stable_slo: Optional[Dict[str, Any]]
    #: every probe this scheduler ran, in execution order
    probes: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "lambda_star": self.lambda_star,
            "stable_slo": self.stable_slo,
            "probes": self.probes,
        }


@dataclass
class FrontierResult:
    """The full sweep: per-scheduler frontiers plus the search inputs."""

    topology: str
    workload: WorkloadSpec
    lam_min: float
    lam_max: float
    rounds: int
    until: Time
    warmup: Time
    schedulers: List[SchedulerFrontier]

    @property
    def probe_count(self) -> int:
        return sum(len(s.probes) for s in self.schedulers)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "workload": self.workload.to_dict(),
            "lam_min": self.lam_min,
            "lam_max": self.lam_max,
            "rounds": self.rounds,
            "until": self.until,
            "warmup": self.warmup,
            "probe_count": self.probe_count,
            "schedulers": [s.to_dict() for s in self.schedulers],
        }


@dataclass
class _Search:
    """Mutable bisection state for one scheduler."""

    name: str
    lo: float  # largest rate known stable (0.0 = none yet)
    hi: float  # smallest rate known unstable (inf = none yet)
    lo_row: Optional[Dict[str, Any]] = None
    probes: List[Dict[str, Any]] = field(default_factory=list)
    done: bool = False


def stability_frontier(
    topology: str,
    schedulers: List[str],
    workload: WorkloadSpec,
    *,
    lam_min: float = 0.05,
    lam_max: float = 4.0,
    rounds: int = 6,
    until: Time = 600,
    warmup: Time = 150,
    jobs: int = 1,
    resume_path: Optional[str] = None,
) -> FrontierResult:
    """Bisect λ in ``[lam_min, lam_max]`` for every scheduler.

    ``workload`` is an open-kind :class:`WorkloadSpec`; its rate knob
    (:func:`rate_knob`) is overwritten per probe.  Two bracketing rounds
    (``lam_max`` first — a scheduler stable at the top of the range is
    done immediately — then ``lam_min``) are followed by ``rounds``
    bisection rounds, every round one :func:`~repro.parallel.pmap` batch
    across the still-searching schedulers.

    ``resume_path`` makes the search crash-resumable: every finished
    probe row is appended to the JSONL log keyed by ``(scheduler, λ)``
    as it completes, and a restarted search replays logged probes
    instead of re-running them.  Bisection is a deterministic function
    of the index-ordered verdicts, so a resumed frontier is identical
    to an uninterrupted one.
    """
    import json

    from repro.parallel import pmap

    if not schedulers:
        raise WorkloadError("stability_frontier needs at least one scheduler")
    if not getattr(workload, "open_system", False):
        raise WorkloadError(
            f"stability_frontier needs an open workload kind, got {workload.kind!r}"
        )
    if not 0 < lam_min < lam_max:
        raise WorkloadError(
            f"need 0 < lam_min < lam_max, got [{lam_min}, {lam_max}]"
        )
    knob = rate_knob(workload.kind)

    cache: Dict[Tuple[str, float], Dict[str, Any]] = {}
    log_fh = None
    if resume_path is not None:
        try:
            with open(resume_path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        continue  # torn final line from an interrupted run
                    cache[(rec["scheduler"], rec["lam"])] = rec["row"]
        except FileNotFoundError:
            pass
        log_fh = open(resume_path, "a")

    def probe_at(name: str, lam: float) -> FrontierProbe:
        return FrontierProbe(
            topology=topology,
            scheduler=name,
            workload=workload.with_knobs(**{knob: lam}),
            lam=lam,
            until=until,
            warmup=warmup,
        )

    def run_batch(batch: List[Tuple[_Search, float]]) -> None:
        todo = [(s, lam) for s, lam in batch if (s.name, lam) not in cache]
        fresh = iter(
            pmap(
                run_probe,
                [probe_at(s.name, lam) for s, lam in todo],
                jobs=jobs,
                initializer=_cached_topology,
                initargs=(topology,),
            )
            if todo
            else []
        )
        for search, lam in batch:
            row = cache.get((search.name, lam))
            if row is None:
                row = next(fresh)
                cache[(search.name, lam)] = row
                if log_fh is not None:
                    log_fh.write(
                        json.dumps(
                            {"scheduler": search.name, "lam": lam, "row": row}
                        )
                        + "\n"
                    )
                    log_fh.flush()
            search.probes.append(row)
            if row["stable"]:
                if lam > search.lo:
                    search.lo, search.lo_row = lam, row
            else:
                search.hi = min(search.hi, lam)

    states = [_Search(name=n, lo=0.0, hi=float("inf")) for n in schedulers]

    try:
        # Bracketing: the whole range first.
        run_batch([(s, lam_max) for s in states])
        for s in states:
            s.done = s.lo >= lam_max  # stable at the top: λ* is the range edge
        remaining = [s for s in states if not s.done]
        if remaining:
            run_batch([(s, lam_min) for s in remaining])
            for s in remaining:
                s.done = s.hi <= lam_min  # unstable even at the bottom
        # Bisection rounds, lockstep across schedulers.
        for _ in range(rounds):
            active = [s for s in states if not s.done]
            if not active:
                break
            run_batch([(s, (max(s.lo, lam_min) + s.hi) / 2.0) for s in active])
    finally:
        if log_fh is not None:
            log_fh.close()

    return FrontierResult(
        topology=topology,
        workload=workload,
        lam_min=lam_min,
        lam_max=lam_max,
        rounds=rounds,
        until=until,
        warmup=warmup,
        schedulers=[
            SchedulerFrontier(
                scheduler=s.name,
                lambda_star=s.lo,
                stable_slo=s.lo_row,
                probes=s.probes,
            )
            for s in states
        ],
    )
