"""Synchronous data-flow DTM simulator (paper Section II model)."""

from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.objects import SharedObject
from repro.sim.trace import ExecutionTrace, ObjectLeg, TxnRecord
from repro.sim.transactions import Transaction
from repro.sim.validate import certify_trace

__all__ = [
    "SimConfig",
    "Simulator",
    "SharedObject",
    "Transaction",
    "ExecutionTrace",
    "ObjectLeg",
    "TxnRecord",
    "certify_trace",
]
