"""Synchronous data-flow DTM simulator (paper Section II model).

Three layers (docs/architecture.md): the event spine
(:mod:`repro.sim.events`), pluggable transport models
(:mod:`repro.sim.transport`), and the phase-orchestrating engine
(:mod:`repro.sim.engine`).
"""

from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.events import EventKind, EventQueue
from repro.sim.objects import SharedObject
from repro.sim.trace import (
    ExecutionTrace,
    FaultRecord,
    ObjectLeg,
    PartitionRecord,
    RescheduleRecord,
    TxnRecord,
)
from repro.sim.transactions import Transaction
from repro.sim.transport import (
    DirectTransport,
    EgressCapacity,
    FaultyTransport,
    HopTransport,
    LinkCapacity,
    Transport,
    build_transport,
)
from repro.sim.validate import certify_trace

__all__ = [
    "SimConfig",
    "Simulator",
    "SharedObject",
    "Transaction",
    "ExecutionTrace",
    "ObjectLeg",
    "TxnRecord",
    "FaultRecord",
    "RescheduleRecord",
    "PartitionRecord",
    "certify_trace",
    "EventKind",
    "EventQueue",
    "Transport",
    "DirectTransport",
    "HopTransport",
    "EgressCapacity",
    "LinkCapacity",
    "FaultyTransport",
    "build_transport",
]
