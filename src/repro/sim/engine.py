"""The synchronous discrete-event engine (paper Section II).

Per time step a node may (1) receive objects, (2) execute a transaction
whose objects have all assembled, (3) forward objects — in that order.  The
engine reproduces exactly this phase structure, but *skips* inactive time
steps: every future event lives on one typed event spine
(:class:`~repro.sim.events.EventQueue`), and the run loop jumps between
event times, so simulating a sparse schedule over a huge horizon is cheap.

The simulator is three explicit layers (docs/architecture.md):

* **Event spine** (:mod:`repro.sim.events`) — the clock: a single heap of
  typed events with per-kind deterministic tie-breaks, an O(1)
  next-active-time peek, and deduplicated scheduler alarms.
* **Transport** (:mod:`repro.sim.transport`) — object motion: direct
  whole-path legs (paper default), hop-by-hop motion, and composable
  egress/link capacity limits, selected via ``SimConfig.transport``.
* **Engine** (this module) — phase orchestration, transaction lifecycle,
  commit logic, and read-copy servicing.

Responsibility split (DESIGN.md §5): schedulers only assign execution
times via :meth:`Simulator.commit_schedule`; the engine independently moves
objects and fires transactions.  In strict mode (the default) a transaction
whose objects are missing at its execution step raises
:class:`InfeasibleScheduleError` — the engine is the ground-truth referee.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from repro._types import DeparturePolicy, NodeId, ObjectId, Time, TxnId, TxnState
from repro.errors import (
    CheckpointError,
    InfeasibleScheduleError,
    ReproError,
    RunInterrupted,
    SchedulingError,
    WarmupError,
    WorkloadError,
)
from repro.network.graph import Graph
from repro.obs.probe import NULL_PROBE
from repro.sim.columnar import RecordColumn, TimeColumn, TxnRecordStore, TxnTable
from repro.sim.config import SimConfig
from repro.sim.events import EventKind, EventQueue
from repro.sim.messages import MessageRouter
from repro.sim.objects import QueueEntry, SharedObject
from repro.sim.trace import (
    CopyLeg,
    ExecutionTrace,
    ExpiredRecord,
    FaultRecord,
    MembershipRecord,
    ObjectLeg,
    PartitionRecord,
    RescheduleRecord,
    TxnRecord,
    Violation,
)
from repro.sim.transactions import Transaction, TxnSpec
from repro.sim.transport import build_transport


class Simulator:
    """Synchronous data-flow DTM simulator.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    scheduler:
        An object implementing the :class:`repro.core.base.OnlineScheduler`
        protocol.  It is bound to this simulator on construction.
    workload:
        Optional workload providing ``initial_objects()`` and
        ``arrivals()`` (a finite iterable of :class:`TxnSpec`), and
        optionally ``on_commit(txn, t)`` for closed-loop generation.
        Tests may instead drive the engine manually with :meth:`submit`.
    config:
        A :class:`~repro.sim.config.SimConfig` bundling every knob below
        (plus ``probe`` and ``transport``).  Individual keyword
        arguments, when passed explicitly, override the corresponding
        ``config`` field — they are the backward-compatible spelling;
        new code should pass one ``SimConfig``.
    probe:
        Observability probe (:mod:`repro.obs`).  ``None`` (the default)
        is the zero-overhead :class:`~repro.obs.probe.NullProbe`: no
        callback is ever invoked and traces are byte-identical to an
        un-instrumented engine.
    departure_policy:
        ``EAGER`` (paper default: forward on commit) or ``LAZY``
        (just-in-time departure; ablation E11).
    object_speed_den:
        Time steps per unit distance for *objects*; 2 enables the
        half-speed rule of Algorithm 3.
    strict:
        If True, a transaction missing objects at its execution step is a
        hard error.  If False the execution is deferred step by step and a
        :class:`Violation` is recorded.
    one_txn_per_node:
        Enforce the paper's scheduling-problem constraint that each node
        holds at most one live transaction at a time.
    transport:
        Object-motion strategy: ``"direct"``, ``"hop"``, or a
        :class:`~repro.sim.transport.Transport` instance (see
        :mod:`repro.sim.transport`).
    node_egress_capacity:
        Optional congestion model (the paper's Section VI open question):
        at most this many objects may *depart* any single node per time
        step; excess departures wait for the next step.  Schedules
        computed for the congestion-free model may then miss deadlines,
        so congestion studies run with ``strict=False`` and measure the
        violation-induced delay (bench E13).
    hop_motion:
        Legacy spelling of ``transport="hop"``: objects move edge by
        edge (one trace leg per hop, route re-evaluated at every node)
        instead of covering whole shortest-path legs at once.  Required
        for per-link capacity.
    link_capacity:
        Section VI's *bounded link capacity*: at most this many objects
        may traverse any single edge concurrently (both directions
        combined).  Requires a hop transport.  Excess traversals wait
        at the upstream node; run with ``strict=False`` to study the
        deferral cost (bench E20).
    """

    def __init__(
        self,
        graph: Graph,
        scheduler,
        workload=None,
        *,
        config: Optional[SimConfig] = None,
        departure_policy: Optional[DeparturePolicy] = None,
        object_speed_den: Optional[int] = None,
        strict: Optional[bool] = None,
        one_txn_per_node: Optional[bool] = None,
        node_egress_capacity: Optional[int] = None,
        hop_motion: Optional[bool] = None,
        link_capacity: Optional[int] = None,
        max_time: Optional[Time] = None,
        probe=None,
        transport=None,
        faults=None,
    ) -> None:
        # Merge rule: start from config (or defaults); explicitly passed
        # keywords win.  SimConfig.__post_init__ re-validates the result.
        cfg = (config or SimConfig()).with_overrides(
            departure_policy=departure_policy,
            object_speed_den=object_speed_den,
            strict=strict,
            one_txn_per_node=one_txn_per_node,
            node_egress_capacity=node_egress_capacity,
            hop_motion=hop_motion,
            link_capacity=link_capacity,
            max_time=max_time,
            probe=probe,
            transport=transport,
            faults=faults,
        )
        self.config = cfg
        self.graph = graph
        self.scheduler = scheduler
        self.workload = workload
        self.departure_policy = cfg.departure_policy
        self.object_speed_den = int(cfg.object_speed_den)
        self.strict = cfg.strict
        self.one_txn_per_node = cfg.one_txn_per_node
        self.node_egress_capacity = cfg.node_egress_capacity
        self.hop_motion = cfg.transport_kind == "hop"
        self.link_capacity = cfg.link_capacity
        self.max_time = cfg.max_time
        self.probe = cfg.probe if cfg.probe is not None else NULL_PROBE
        #: fast-path guard: None when disabled, so every probe call site
        #: costs one predictable branch
        self._obs = self.probe if self.probe.enabled else None

        self.now: Time = 0
        self.objects: Dict[ObjectId, SharedObject] = {}
        #: dense txn column — tids are assigned in arrival order, so the
        #: table is a list probe with the full Mapping surface on top
        self.txns: TxnTable = TxnTable()
        self.live: Dict[TxnId, Transaction] = {}
        #: the event spine — single source of future engine events
        self.events = EventQueue()
        self.router = MessageRouter(graph, spine=self.events)
        #: fault layer (repro.faults): None in the reliable default model,
        #: a FaultInjector when cfg.faults carries a FaultPlan.  Must be
        #: set before build_transport — FaultyTransport binds to it.
        self.faults = None
        self._pending_fault_events = 0
        self._resched_floor: Dict[TxnId, Time] = {}
        #: elastic-membership state (repro.faults.MembershipPlan): the
        #: original member count (joined nodes get ids >= this and never
        #: home transactions), members that left permanently, and
        #: gracefully-draining members with their drain-start step
        self._initial_nodes: int = graph.num_nodes
        self._departed: Set[NodeId] = set()
        self._draining: Dict[NodeId, Time] = {}
        if cfg.faults is not None:
            from repro.faults import FaultInjector

            # Binding is the moment the plan meets the actual graph: a
            # typo'd node or edge id fails loudly here instead of a
            # window that silently never fires.
            cfg.faults.validate_against(graph)
            self.faults = FaultInjector(cfg.faults)
            self.router.injector = self.faults
            self.router.on_fault = self.record_fault
            # FAULT-event keys are (class, id, phase) integer triples so
            # crash and partition transitions at the same step order
            # deterministically: crashes (class 0) before partitions
            # (class 1), starts (phase 0) before ends (phase 1).
            for w in cfg.faults.crashes:
                self.events.push_fault(w.start, (0, w.node, 0), ("crash", w.node, w.duration))
                self.events.push_fault(w.end, (0, w.node, 1), ("restart", w.node, 0))
                self._pending_fault_events += 2
            for idx, p in enumerate(cfg.faults.partitions):
                self.events.push_fault(p.start, (1, idx, 0), ("partition", idx, p.duration))
                self.events.push_fault(p.end, (1, idx, 1), ("heal", idx, 0))
                self._pending_fault_events += 2
            # Membership transitions are fault class 2: joins (phase 0)
            # before drains (phase 2) before abrupt leaves (phase 3) at
            # the same step, all after crash/partition transitions.
            if cfg.faults.membership is not None:
                for j_idx, j in enumerate(cfg.faults.membership.joins):
                    self.events.push_fault(j.time, (2, j.node, 0), ("join", j_idx, 0))
                    self._pending_fault_events += 1
                for l in cfg.faults.membership.leaves:
                    phase = 2 if l.graceful else 3
                    kind = "drain" if l.graceful else "leave"
                    self.events.push_fault(l.time, (2, l.node, phase), (kind, l.node, 0))
                    self._pending_fault_events += 1
        #: the motion strategy (repro.sim.transport)
        self.transport = build_transport(cfg)
        self.transport.bind(self)
        #: ingestion front-end (repro.service): None when disabled, so
        #: every service call site costs one predictable branch and the
        #: disabled hot path is untouched
        self.service = None
        if cfg.service is not None:
            from repro.service.frontend import ServiceFrontEnd

            self.service = ServiceFrontEnd(cfg.service)
            self.service.bind(self)

        self._tid_counter = itertools.count()
        self._started = False
        self._needs_departure_check: Set[ObjectId] = set()
        #: observers called as fn(event, obj, t) for "register"/"arrive"
        #: events; used by distributed directories to track object motion
        self._object_observers: List = []
        #: columnar per-object state, indexed by ``SharedObject.index``
        #: (object ids are interned to dense ints in add_object):
        #: live writers and live readers of each object
        self._live_writers_col: List[Set[TxnId]] = []
        self._live_readers_col: List[Set[TxnId]] = []
        #: reverse intern table: dense index -> object id
        self._obj_ids: List[ObjectId] = []
        #: per-node live transaction counts (nodes are dense already);
        #: makes the one_txn_per_node admission check O(1)
        self._live_home_count: List[int] = [0] * graph.num_nodes
        self._schedule_times = TimeColumn()
        self._last_wake: Optional[Time] = None
        # Delta-maintained H_t conflict adjacency (repro.core.dependency);
        # constraints_for dispatches to it instead of re-scanning live
        # accessor sets.  Imported lazily: core.dependency imports this
        # module for its type annotations.
        from repro.core.dependency import DependencyTracker
        from repro.core.pending import PendingIndex

        self.deps = DependencyTracker(self)
        #: shared pending-transaction index (repro.core.pending): the
        #: unscheduled set, per-object scheduled-waiter columns, and the
        #: within-step constraint memo.  Fed from the same lifecycle
        #: sites as the tracker, for every scheduler.
        self.pending = PendingIndex(self)

        self.trace = ExecutionTrace(
            graph_name=graph.name,
            initial_placement={},
            object_speed_den=self.object_speed_den,
        )
        # Lazy columnar record stores (repro.sim.columnar): the per-step
        # hot paths append raw argument tuples; records materialise on
        # first post-run access.  Engine-produced traces only — traces
        # built elsewhere (deserialisation, baselines) keep plain
        # dict/list fields with the identical surface.
        self.trace.txns = TxnRecordStore()
        self.trace.legs = RecordColumn(ObjectLeg)
        self.trace.copy_legs = RecordColumn(CopyLeg)
        #: open-system streaming state (repro.workloads.streaming): a lazy
        #: unbounded spec iterator plus its one-spec lookahead.  None for
        #: closed workloads, whose finite spec list is materialized below.
        self._arrival_iter = None
        self._arrival_next = None
        self._arrival_buffered: Optional[Time] = None
        self._open_warmup: Optional[Time] = None
        #: how many specs have been pulled from the open arrival stream —
        #: the stream's resume cursor: checkpoint restore rebuilds the
        #: seeded generator and discards exactly this many items
        self._arrival_pulled = 0
        #: lifetime active-step counter (never reset across run() calls);
        #: drives the periodic-checkpoint cadence and names {step} files
        self._active_steps = 0
        self._interrupt_signum: Optional[int] = None
        if workload is not None:
            for oid, node in workload.initial_objects().items():
                self.add_object(oid, node)
            if getattr(workload, "open_system", False):
                self._arrival_iter = workload.arrival_stream()
                self._arrival_next = next(self._arrival_iter, None)
                self._arrival_pulled += 1
            else:
                for spec in workload.arrivals():
                    self.submit(spec)
        scheduler.bind(self)
        #: incremental-protocol dispatch flag, resolved once after bind
        #: (adaptive schedulers pick their delegate at bind time); also
        #: gates the tracker's delta buffering so legacy schedulers never
        #: accumulate a feed nobody drains
        self._sched_wants_deltas = bool(getattr(scheduler, "wants_deltas", False))
        self.deps.collect = self._sched_wants_deltas
        #: bound-method caches for the run loop and per-commit hot paths
        #: (getattr-per-iteration showed up in profiles)
        self._sched_has_pending = getattr(scheduler, "has_pending", None)
        self._sched_on_commit = getattr(scheduler, "on_commit", None)
        self._wl_on_commit = getattr(workload, "on_commit", None) if workload is not None else None

    # ------------------------------------------------------------------
    # checkpoint / restore (repro.durability)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The open-system arrival generator cannot pickle; restore
        # rebuilds it from the workload seed and fast-forwards it by the
        # _arrival_pulled cursor, which mirrors every next() call made.
        state["_arrival_iter"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.workload is not None and getattr(self.workload, "open_system", False):
            it = self.workload.arrival_stream()
            for _ in range(self._arrival_pulled):
                next(it, None)
            self._arrival_iter = it

    def checkpoint(self, path: Optional[str] = None, *, sync: bool = True) -> str:
        """Snapshot the full engine state to ``path`` (atomic write).

        Defaults to ``SimConfig.checkpoint_path``; a ``{step}``
        placeholder in the path keeps one file per checkpointed step.
        With ``sync=False`` the snapshot is serialized by a forked child
        while this process continues (identical bytes, near-zero stall;
        the returned path may not exist yet).  Returns the resolved
        path.  See :mod:`repro.durability`.
        """
        from repro.durability import save_checkpoint, save_checkpoint_async

        target = path or self.config.checkpoint_path
        if not target:
            raise CheckpointError(
                "no checkpoint path: pass checkpoint(path=...) or set "
                "SimConfig.checkpoint_path"
            )
        writer = save_checkpoint if sync else save_checkpoint_async
        return writer(self, target)

    @classmethod
    def restore(cls, path: str) -> "Simulator":
        """Rebuild a simulator from a checkpoint file.

        The restored engine continues exactly where the snapshot was
        taken: calling :meth:`run` (with the original horizon, for open
        runs) produces a trace byte-identical to the uninterrupted run.
        """
        from repro.durability import load_checkpoint

        sim = load_checkpoint(path)
        if not isinstance(sim, cls):
            raise CheckpointError(
                f"{path} does not contain a Simulator "
                f"(got {type(sim).__name__})"
            )
        return sim

    # ------------------------------------------------------------------
    # public driving / scheduler API
    # ------------------------------------------------------------------
    def add_object(self, oid: ObjectId, node: NodeId) -> SharedObject:
        """Place a new shared object at ``node`` (at rest, no holder)."""
        if oid in self.objects:
            raise WorkloadError(f"duplicate object id {oid}")
        obj = SharedObject(oid, node, speed_den=self.object_speed_den, index=len(self._obj_ids))
        self.objects[oid] = obj
        self._obj_ids.append(oid)
        self._live_writers_col.append(set())
        self._live_readers_col.append(set())
        self.pending.add_object_slot()
        self.trace.initial_placement.setdefault(oid, node)
        for fn in self._object_observers:
            fn("register", obj, self.now)
        return obj

    def add_object_observer(self, fn) -> None:
        """Register ``fn(event, obj, t)`` for object lifecycle events
        ("register" on creation, "arrive" when a master object settles at
        a node).  Used by distributed directories (DESIGN.md S20)."""
        self._object_observers.append(fn)

    def submit(self, spec: TxnSpec) -> None:
        """Queue a transaction for generation at ``spec.gen_time``."""
        if spec.gen_time < self.now:
            raise WorkloadError(f"spec gen_time {spec.gen_time} is in the past (now={self.now})")
        self.events.push_spec(spec.gen_time, spec)

    def commit_schedule(self, txn: Transaction, exec_time: Time) -> None:
        """Scheduler callback: fix ``txn``'s execution time, once, forever."""
        if txn.state is TxnState.CANCELLED:
            # Service mode: the transaction's deadline expired while it
            # sat in a scheduler's pending machinery (bucket schedulers
            # defer scheduling); the late assignment is a no-op.
            return
        if txn.exec_time is not None:
            raise SchedulingError(f"transaction {txn.tid} already scheduled at {txn.exec_time}")
        if exec_time < self.now:
            raise SchedulingError(
                f"transaction {txn.tid}: execution time {exec_time} before now ({self.now})"
            )
        txn.exec_time = exec_time
        txn.state = TxnState.SCHEDULED
        self._schedule_times[txn.tid] = self.now
        self.pending.note_scheduled(txn)
        if self._obs is not None:
            self._obs.on_schedule(txn, exec_time, self.now)
        self.events.push_exec(exec_time, txn.tid)
        for oid in txn.objects:
            obj = self._get_object(oid)
            obj.enqueue(txn.tid, exec_time)
            # Copies already shipped to readers that execute after this
            # writer are now stale — invalidate; they re-ship on commit.
            obj.invalidate_reads_after(QueueEntry(exec_time, txn.tid))
            self._needs_departure_check.add(oid)
        for oid in txn.reads:
            obj = self._get_object(oid)
            obj.enqueue_reader(txn.tid, exec_time)
            self._service_reads(obj, self.now)

    def add_alarm(self, t: Time) -> None:
        """Ask the engine to visit time step ``t`` (used by schedulers).

        Duplicate pending alarm times are dropped by the event spine, so
        schedulers may re-request their next wake-up every step for free.
        """
        if t >= self.now:
            self.events.push_alarm(t)

    def record_fault(
        self,
        kind: str,
        t: Time,
        *,
        node: Optional[NodeId] = None,
        oid: Optional[ObjectId] = None,
        extra: Time = 0,
    ) -> None:
        """Record one injected fault on the trace and notify the probe.

        Called by the engine itself, :class:`~repro.sim.transport.
        FaultyTransport`, :class:`~repro.sim.transport.
        LatencyDistTransport` (which requires a fault plan), and the
        message router; never called when ``SimConfig.faults`` is None,
        so fault-free traces stay empty.
        """
        self.trace.faults.append(FaultRecord(kind, t, node, oid, extra))
        if self._obs is not None:
            self._obs.on_fault(kind, t, node=node, oid=oid, extra=extra)

    def reschedule_floor(self, txn) -> Time:
        """Earliest execution time recovery allows for ``txn``.

        Combines the exponential-backoff floor set by the last
        ``RESCHEDULE`` of this transaction with the restart time of its
        (possibly crashed) home node.  ``OnlineScheduler.on_reschedule``
        implementations clamp their recomputed time to this."""
        floor = self._resched_floor.get(txn.tid, self.now)
        if self.faults is not None:
            restart = self.faults.restart_time(txn.home, self.now)
            if restart is not None and restart > floor:
                floor = restart
        return floor

    def _get_object(self, oid: ObjectId) -> SharedObject:
        try:
            return self.objects[oid]
        except KeyError:
            raise SchedulingError(f"unknown object id {oid}") from None

    # ------------------------------------------------------------------
    # state queries used by schedulers
    # ------------------------------------------------------------------
    def live_requesters(self, oid: ObjectId) -> List[Transaction]:
        """Live transactions that *write* ``oid``."""
        obj = self.objects.get(oid)
        if obj is None:
            return []
        return [self.txns[tid] for tid in self._live_writers_col[obj.index]]

    def live_readers(self, oid: ObjectId) -> List[Transaction]:
        """Live transactions that *read* ``oid`` (read/write extension)."""
        obj = self.objects.get(oid)
        if obj is None:
            return []
        return [self.txns[tid] for tid in self._live_readers_col[obj.index]]

    def object_time_to_reach(self, oid: ObjectId, node: NodeId) -> Time:
        """Upper bound on when ``oid`` could be brought to ``node``."""
        return self._get_object(oid).time_to_reach(self.graph, node, self.now)

    def holder_of(self, oid: ObjectId) -> Optional[Transaction]:
        """Latest transaction that acquired ``oid`` (``L_t(o_i)``)."""
        tid = self._get_object(oid).holder_txn
        return self.txns[tid] if tid is not None else None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _next_active_time(self) -> Optional[Time]:
        nxt = self.events.peek_time()
        wake = self.scheduler.next_wake_after(self.now)
        self._last_wake = wake
        if wake is not None and (nxt is None or wake < nxt):
            nxt = wake
        return nxt

    def run(
        self,
        max_steps: Optional[int] = None,
        *,
        until: Optional[Time] = None,
        warmup: Optional[Time] = None,
    ) -> ExecutionTrace:
        """Run until quiescence (or at most ``max_steps`` active steps).

        Quiescence: no pending generations, no live transactions, no
        in-flight objects/messages, and the scheduler reports no pending
        work.  With ``max_steps=N``, exactly N active steps may execute;
        needing an (N+1)-th raises :class:`SchedulingError`.

        **Open-system (steady-state) mode**: with an open workload
        (``workload.open_system`` true — see
        :mod:`repro.workloads.streaming`) arrivals are pulled lazily from
        ``workload.arrival_stream()`` and the run *must* be bounded by
        ``until`` (or ``SimConfig.max_time``): the stream is unbounded,
        so quiescence never arrives.  The run stops at the horizon even
        when the system is unstable — in-flight and unscheduled
        transactions are simply left behind, and their count is the
        **backlog** recorded (with generated/committed totals and the
        uncommitted generation times) in ``trace.meta["open"]`` for
        :mod:`repro.analysis.slo` to turn into a stability verdict.
        ``warmup`` marks the measurement cutoff (absolute steps) and is
        recorded alongside; the engine itself treats every step alike.
        """
        if self._arrival_iter is not None and until is None and self.max_time is None:
            raise WorkloadError(
                "open-system workload: pass run(until=...) or set "
                "SimConfig.max_time — unbounded arrivals never reach quiescence"
            )
        if until is not None and until < self.now:
            raise SchedulingError(f"run(until={until}) is in the past (now={self.now})")
        if warmup is None:
            warmup = self.config.warmup
        if warmup is not None:
            horizon = until if until is not None else self.max_time
            if warmup < 0:
                raise WarmupError(f"warmup must be >= 0, got {warmup}")
            if horizon is not None and warmup >= horizon:
                raise WarmupError(
                    f"warmup must be < horizon={horizon}, got {warmup}: "
                    "the measurement window would be empty"
                )
        self._open_warmup = warmup
        return self._run_loop(max_steps=max_steps, until=until)

    def run_until(self, until: Time, max_steps: Optional[int] = None) -> ExecutionTrace:
        """Advance the simulation to time ``until`` (inclusive) and return.

        Useful for interactive inspection: call repeatedly with growing
        horizons, peeking at ``sim.live`` / ``sim.objects`` between calls;
        a final :meth:`run` drains the remainder.  The returned trace is
        the (shared, still-growing) run trace.
        """
        if until < self.now:
            raise SchedulingError(f"run_until({until}) is in the past (now={self.now})")
        return self._run_loop(max_steps=max_steps, until=until)

    def _run_loop(self, *, max_steps: Optional[int], until: Optional[Time]) -> ExecutionTrace:
        if self.config.checkpoint_path is None:
            return self._drive(max_steps=max_steps, until=until)
        # A checkpointed run catches SIGTERM/SIGINT: the handler only sets
        # a flag, and the step loop turns it into one final checkpoint +
        # probe fsync + RunInterrupted, so a kill -TERM mid-campaign
        # always leaves a resumable snapshot and a parseable JSONL prefix.
        import signal

        restore_handlers = []
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    prev = signal.signal(sig, self._on_interrupt_signal)
                except ValueError:  # not the main thread: run unguarded
                    break
                restore_handlers.append((sig, prev))
            return self._drive(max_steps=max_steps, until=until)
        finally:
            for sig, prev in restore_handlers:
                signal.signal(sig, prev)

    def _on_interrupt_signal(self, signum, frame) -> None:
        self._interrupt_signum = signum

    def _interrupt_exit(self) -> None:
        """Turn a caught SIGTERM/SIGINT into a checkpoint + clean raise."""
        import signal

        from repro.durability import close_probes

        signum = self._interrupt_signum
        self._interrupt_signum = None
        written = self.checkpoint()
        close_probes(self.probe)
        name = signal.Signals(signum).name
        raise RunInterrupted(
            f"run interrupted by {name} at t={self.now}; checkpoint written "
            f"to {written} (resume with --resume {written})",
            path=written,
            signum=signum,
        )

    def _drive(self, *, max_steps: Optional[int], until: Optional[Time]) -> ExecutionTrace:
        steps = 0
        ckpt_every = self.config.checkpoint_every
        obs = self._obs
        if obs is not None:
            obs.on_run_begin(self)
        if not self._started:
            # Time 0 may already carry generations.
            self._started = True
            self._step(self.now)
        while True:
            nxt = self._next_active_time()
            if (
                not self.live
                and not self._scheduler_pending()
                and (self.service is None or self.service.idle())
            ):
                if nxt is None:
                    break
                # Crash/partition-window bookkeeping events alone cannot
                # revive a quiescent run: stop instead of stepping through
                # every remaining window of an otherwise finished workload.
                if (
                    self._pending_fault_events
                    and len(self.events) == self._pending_fault_events
                    and self.router.pending == 0
                    and self._last_wake is None
                ):
                    break
            if nxt is None:
                # Live txns but nothing will ever happen again: deadlock.
                stuck = sorted(self.live)
                raise SchedulingError(f"deadlock: live transactions {stuck} will never execute")
            if until is not None and nxt > until:
                self.now = until
                break
            if self.max_time is not None and nxt > self.max_time:
                break
            if max_steps is not None and steps >= max_steps:
                raise SchedulingError(f"exceeded max_steps={max_steps} at t={self.now}")
            self.now = max(self.now + 1, nxt)
            if obs is not None and self._last_wake == self.now:
                obs.on_sched("wake", self.now)
            self._step(self.now)
            steps += 1
            self._active_steps += 1
            if ckpt_every is not None and self._active_steps % ckpt_every == 0:
                self.checkpoint(sync=self.config.checkpoint_sync)
            if self._interrupt_signum is not None:
                self._interrupt_exit()
        if until is not None and self.now < until:
            self.now = until  # quiescent early: the clock still advances
        self.trace.end_time = self.now
        self.trace.messages_sent = self.router.sent_count
        self.trace.message_hops = self.router.total_distance
        if self._arrival_iter is not None:
            # Open-run bookkeeping for the SLO/stability analysis: how much
            # work arrived vs committed, and the generation times of the
            # transactions left behind (the backlog) so the analysis can
            # reconstruct the full backlog-over-time series.  Recorded
            # before on_run_end so probes (stream counters) can read it.
            generated = len(self.txns)
            committed = len(self.trace.txns)
            # Cancelled (deadline-expired) transactions are not backlog:
            # the service resolved them.  len(expiries) is 0 with the
            # service disabled, so pre-service meta stays byte-identical.
            expired = len(self.trace.expiries)
            self.trace.meta["open"] = {
                "horizon": self.now,
                "warmup": self._open_warmup or 0,
                "generated": generated,
                "committed": committed,
                "backlog": generated - committed - expired,
                "uncommitted_gen_times": sorted(
                    txn.gen_time for txn in self.live.values()
                ),
            }
        if self.service is not None:
            # Recorded before on_run_end so probes (service counters)
            # can read it; absent entirely when the service is disabled.
            self.trace.meta["service"] = self.service.summary()
        if obs is not None:
            obs.on_run_end(self, self.trace)
        return self.trace

    def _scheduler_pending(self) -> bool:
        has = self._sched_has_pending
        return bool(has()) if has is not None else False

    def _pump_arrivals(self, t: Time) -> None:
        """Pull arrivals lazily from an open workload's stream.

        Pushes every stream spec due at or before ``t`` onto the event
        spine plus exactly **one** strictly-future spec — the lookahead
        that lets ``_next_active_time`` see the next arrival so the run
        loop advances to it (and stops pulling once it passes the
        horizon).  Sound because streams yield non-decreasing
        ``gen_time``: once one future spec is buffered, nothing earlier
        can follow.  Arrivals whose gen_time already passed (a stream
        starting behind ``now``) are generated at ``t``.
        """
        if self._arrival_buffered is not None and self._arrival_buffered <= t:
            self._arrival_buffered = None
        nxt = self._arrival_next
        if nxt is None:
            return
        it = self._arrival_iter
        while nxt is not None and nxt.gen_time <= t:
            self.events.push_spec(t, nxt)
            nxt = next(it, None)
            self._arrival_pulled += 1
        if nxt is not None and self._arrival_buffered is None:
            self.events.push_spec(nxt.gen_time, nxt)
            self._arrival_buffered = nxt.gen_time
            nxt = next(it, None)
            self._arrival_pulled += 1
        self._arrival_next = nxt

    def _step(self, t: Time) -> None:
        obs = self._obs
        events = self.events
        if obs is not None:
            obs.on_step_begin(t)
        # Phase 0 (fault layer only): crash/restart/partition transitions.
        if self.faults is not None:
            for _, _, _, payload in events.pop_kind(EventKind.FAULT, t):
                self._pending_fault_events -= 1
                kind, node, extra = payload
                if kind == "partition":
                    # ``node`` slot carries the window index; the record
                    # on the trace is the window itself, for certifier
                    # reconciliation of reroute/block slack.
                    p = self.config.faults.partitions[node]
                    self.trace.partitions.append(
                        PartitionRecord(p.cut, p.start, p.end)
                    )
                    self.record_fault(kind, t, extra=extra)
                    self.deps.note_topology_change()
                elif kind == "heal":
                    self.record_fault(kind, t)
                    self.deps.note_topology_change()
                elif kind == "join":
                    # ``node`` slot carries the join index.
                    self._apply_join(node, t)
                elif kind == "drain":
                    self._begin_drain(node, t)
                elif kind == "leave":
                    self._apply_leave(node, t)
                else:
                    self.record_fault(kind, t, node=node, extra=extra)
        if obs is not None:
            obs.on_phase_begin("receive", t)
        # Phase 1: receive objects (masters, then read copies).
        for _, _, oid, _ in events.pop_kind(EventKind.ARRIVAL, t):
            obj = self.objects[oid]
            if self.faults is not None and obj.in_transit:
                # A crashed destination cannot receive: hold the object in
                # transit until the node's restart step.
                restart = self.faults.restart_time(obj.dest, t)
                if restart is not None:
                    self.record_fault(
                        "crash-delay", t, node=obj.dest, oid=oid, extra=restart - t
                    )
                    obj.arrive_time = restart
                    events.push_arrival(restart, oid)
                    self._extend_leg_arrival(oid, restart)
                    continue
                if obj.dest in self._departed:
                    # The destination left the membership while the leg
                    # was in flight: the object bounces to the nearest
                    # surviving member (no settle — observers and read
                    # servicing wait for a member arrival).
                    obj.complete_leg()
                    self.relocate_object(obj, t)
                    continue
            obj.complete_leg()
            self._needs_departure_check.add(oid)
            if obs is not None:
                obs.on_arrive(oid, t, obj.location)
            self._service_reads(obj, t)
            for fn in self._object_observers:
                fn("arrive", obj, t)
        for _, _, (oid, tid, epoch), _ in events.pop_kind(EventKind.COPY, t):
            obj = self.objects[oid]
            if obj.read_epoch.get(tid, 0) == epoch:
                obj.reads_delivered.add(tid)
            # else: stale copy, invalidated by a later-scheduled writer
        if obs is not None:
            obs.on_phase_end("receive", t)
            obs.on_phase_begin("deliver", t)
        # Phase 1b: deliver control messages (their due markers retire).
        events.pop_kind(EventKind.MESSAGE, t)
        self.router.deliver_due(t)
        if obs is not None:
            obs.on_phase_end("deliver", t)
            obs.on_phase_begin("generate", t)
        # Phase 2: generate new transactions.
        self._pump_arrivals(t)
        new_txns: List[Transaction] = []
        service = self.service
        for _, _, _, spec in events.pop_kind(EventKind.SPEC, t):
            if self.faults is not None:
                # A crashed node generates nothing; its spec waits for the
                # restart step.
                restart = self.faults.restart_time(spec.home, t)
                if restart is not None:
                    self.events.push_spec(restart, spec)
                    continue
            if service is not None:
                service.offer(spec, t)
            else:
                new_txns.append(self._generate(spec, t))
        if service is not None and (
                service._direct or service.queue._entries
                or service._bp_engaged or t >= service._next_check):
            # Admission keeps the original gen_time (submission step) so
            # queue wait counts toward commit latency; p99-of-admitted
            # falls out of the ordinary latency percentiles.  The call
            # is skipped only while nothing is pending AND no controller
            # tick is due: the backlog-growth trigger samples the live
            # backlog on a fixed window (service._next_check), so
            # overload detection never depends on queue occupancy.
            for spec in service.admit(t):
                txn = self._generate(spec, t, gen_time=spec.gen_time)
                new_txns.append(txn)
                if txn.deadline is not None:
                    service.track(txn)
        if obs is not None:
            obs.on_phase_end("generate", t)
            obs.on_phase_begin("schedule", t)
        # Phase 3: let the scheduler act (schedule new txns / activate
        # buckets).  Incremental schedulers receive the per-step delta
        # feed instead of rescanning (docs/performance.md).
        try:
            if self._sched_wants_deltas:
                self.scheduler.on_deltas(t, self.deps.drain_deltas(t, new_txns))
            else:
                self.scheduler.on_step(t, new_txns)
        except ReproError as exc:
            self._add_step_context(exc, t, new_txns)
            raise
        except Exception as exc:
            raise SchedulingError(self._step_context(exc, t, new_txns)) from exc
        if obs is not None:
            obs.on_phase_end("schedule", t)
            obs.on_phase_begin("execute", t)
        # Phase 4: execute due transactions in (time, tid) order.
        self._execute_due(t)
        if obs is not None:
            obs.on_phase_end("execute", t)
            obs.on_phase_begin("depart", t)
        # Phase 5: forward objects.
        self._process_departures(t)
        if obs is not None:
            obs.on_phase_end("depart", t)
        # Finalize graceful drains whose last home transaction finished
        # this step (after departures so freed objects leave normally).
        if self._draining:
            self._check_drains(t)
        # Clear stale scheduler alarms.
        popped = len(events.pop_kind(EventKind.ALARM, t))
        if obs is not None:
            if popped:
                obs.on_alarm(t, popped)
            obs.on_step_end(t)

    def _step_context(self, exc: BaseException, t: Time, new_txns: List[Transaction]) -> str:
        """Human-readable simulation context for a scheduler failure."""
        tids = [x.tid for x in new_txns]
        return (
            f"{type(self.scheduler).__name__}.on_step failed at t={t} "
            f"(new transactions {tids}): {exc}"
        )

    def _add_step_context(self, exc: BaseException, t: Time, new_txns: List[Transaction]) -> None:
        """Append step/transaction context to an in-flight scheduler error.

        Mutates ``exc.args`` so the original type (and any ``pytest.raises``
        match on the original message) is preserved while the traceback a
        user sees names the step and the transactions being scheduled.
        """
        tids = [x.tid for x in new_txns]
        note = f" [in {type(self.scheduler).__name__}.on_step at t={t}, new transactions {tids}]"
        if exc.args and isinstance(exc.args[0], str):
            exc.args = (exc.args[0] + note,) + exc.args[1:]
        else:
            exc.args = exc.args + (note.strip(),)

    def _extend_leg_arrival(self, oid: ObjectId, new_arrive: Time) -> None:
        """Stretch the most recent trace leg of ``oid`` to ``new_arrive``
        (its destination was crashed on arrival; the matching
        ``crash-delay`` fault record accounts for the slack)."""
        legs = self.trace.legs
        for i in range(len(legs) - 1, -1, -1):
            leg = legs[i]
            if leg.oid == oid:
                legs[i] = ObjectLeg(leg.oid, leg.depart_time, leg.src, leg.dst, new_arrive)
                return

    # ------------------------------------------------------------------
    # elastic membership (repro.faults.MembershipPlan)
    # ------------------------------------------------------------------
    def _membership_hook(self, kind: str, node: NodeId, t: Time) -> None:
        hook = getattr(self.scheduler, "on_membership", None)
        if hook is not None:
            hook(kind, node, t)

    def _nearest_member(self, node: NodeId) -> NodeId:
        """Closest surviving *original* member to ``node`` (lowest id wins
        ties).  Joined nodes (ids >= the original count) are routing-only
        — they never home transactions or host objects, so distributed
        schedulers' per-node state and the one-txn-per-node ledger keep
        their bind-time shape."""
        d = self.graph.distances_from(node)
        best: Optional[NodeId] = None
        best_d = None
        for v in range(self._initial_nodes):
            if v == node or v in self._departed or v in self._draining:
                continue
            if best_d is None or d[v] < best_d:
                best, best_d = v, d[v]
        if best is None:
            raise SchedulingError(
                f"no surviving member left to take over from node {node}"
            )
        return best

    def _apply_join(self, idx: int, t: Time) -> None:
        j = self.config.faults.membership.joins[idx]
        new = self.graph.add_node(j.edges)
        assert new == j.node  # id density was validated at bind
        self._live_home_count.append(0)
        self.trace.membership.append(MembershipRecord("join", j.node, t, j.edges))
        self.record_fault("join", t, node=j.node)
        self.deps.note_topology_change()
        self._membership_hook("join", j.node, t)

    def _begin_drain(self, node: NodeId, t: Time) -> None:
        """Start a graceful leave: ``node`` stops taking new transaction
        homes now; it departs once its live transactions finish and its
        resting objects have migrated (see :meth:`_check_drains`)."""
        self._draining[node] = t
        self.trace.membership.append(MembershipRecord("drain", node, t))
        self.record_fault("drain", t, node=node)

    def _check_drains(self, t: Time) -> None:
        for node in sorted(self._draining):
            if self._live_home_count[node] == 0:
                self._apply_leave(node, t)

    def _apply_leave(self, node: NodeId, t: Time) -> None:
        """``node`` departs permanently: sever its edges for object
        routing, re-home its live transactions (abrupt leaves only —
        drained nodes have none), and forward its resting objects to
        surviving members."""
        drained = self._draining.pop(node, None)
        self._departed.add(node)
        incident = [(node, v) for v in self.graph.neighbors(node)]
        self.faults.mark_departed(node, incident, t)
        self.trace.membership.append(MembershipRecord("leave", node, t))
        self.record_fault(
            "leave", t, node=node, extra=(t - drained) if drained is not None else 0
        )
        self.deps.note_topology_change()
        for tid in sorted(self.live):
            txn = self.live[tid]
            if txn.home == node:
                self._rehome_txn(txn, t)
        for oid in sorted(self.objects):
            obj = self.objects[oid]
            if not obj.in_transit and obj.location == node:
                self.relocate_object(obj, t)
        self._membership_hook("leave", node, t)

    def _rehome_txn(self, txn: Transaction, t: Time) -> None:
        """Move a live transaction stranded by an abrupt leave to the
        nearest surviving member.  Its committed execution time stands;
        if its objects cannot reach the new home in time, the ordinary
        recovery path (:meth:`_recover`) reschedules it."""
        old = txn.home
        new = self._nearest_member(old)
        if 0 <= old < len(self._live_home_count):
            self._live_home_count[old] -= 1
        self._live_home_count[new] += 1
        txn.home = new
        self.deps.refresh_home(txn)
        self.record_fault("rehome", t, node=new, extra=txn.tid)
        # Copies already cut for the old home are useless there: re-cut
        # for the new one (in-flight stale copies are epoch-dropped).
        for oid in sorted(txn.reads):
            obj = self.objects[oid]
            if txn.tid in obj.reads_served:
                obj.reads_served.discard(txn.tid)
                obj.reads_delivered.discard(txn.tid)
                obj.read_epoch[txn.tid] = obj.read_epoch.get(txn.tid, 0) + 1
                self._service_reads(obj, t)
        for oid in txn.objects:
            self._needs_departure_check.add(oid)

    def relocate_object(self, obj: SharedObject, t: Time) -> None:
        """Forward ``obj`` from a departed (or membership-isolated)
        position to the nearest surviving member with exact physics —
        the recovery transfer out of a leave.  Also called by
        :class:`~repro.sim.transport.FaultyTransport` when the permanent
        routing cut leaves a planned leg no healable path."""
        target = self._nearest_member(obj.location)
        arrive = t + obj.travel_time(self.graph.distance(obj.location, target))
        self.record_fault("leave-recover", t, node=target, oid=obj.oid)
        self.trace.legs.append_row(obj.oid, t, obj.location, target, arrive)
        if self._obs is not None:
            self._obs.on_depart(obj.oid, t, obj.location, target, arrive)
        obj.begin_leg(target, arrive)
        self.events.push_arrival(arrive, obj.oid)

    def _generate(
        self, spec: TxnSpec, t: Time, *, gen_time: Optional[Time] = None
    ) -> Transaction:
        for oid in (*spec.objects, *spec.reads):
            if oid not in self.objects:
                raise WorkloadError(
                    f"transaction generated at t={t} requests unknown object {oid}"
                )
        home = spec.home
        if home in self._departed or home in self._draining:
            # The spec's home left (or is draining out of) the membership
            # before generation: the transaction is born at the nearest
            # surviving member instead.
            home = self._nearest_member(home)
        if (
            self.one_txn_per_node
            and 0 <= home < len(self._live_home_count)
            and self._live_home_count[home]
        ):
            raise WorkloadError(f"node {home} already has a live transaction at t={t}")
        txn = Transaction(
            tid=next(self._tid_counter),
            home=home,
            objects=frozenset(spec.objects),
            gen_time=t if gen_time is None else gen_time,
            creates=tuple(spec.creates),
            reads=frozenset(spec.reads),
            deadline=spec.deadline,
            priority=spec.priority,
        )
        self.txns[txn.tid] = txn
        self._schedule_times.append_slot()
        self.live[txn.tid] = txn
        if 0 <= txn.home < len(self._live_home_count):
            self._live_home_count[txn.home] += 1
        self.deps.on_generate(txn)
        self.pending.on_generate(txn)
        objects = self.objects
        for oid in txn.objects:
            self._live_writers_col[objects[oid].index].add(txn.tid)
        for oid in txn.reads:
            self._live_readers_col[objects[oid].index].add(txn.tid)
        if self._obs is not None:
            self._obs.on_generate(txn, t)
        return txn

    def _execute_due(self, t: Time) -> None:
        if self.service is not None and self.service._deadline_heap:
            # Expire deadline-passed transactions before EXEC events pop:
            # cancellation wins the race against both execution and any
            # fault-driven reschedule.  A transaction scheduled exactly
            # at its deadline keeps its commit attempt this step (see
            # ServiceFrontEnd.expire_due); if it misses, the miss path
            # below expires it instead of recovering.
            for txn in self.service.expire_due(t):
                self._expire(txn, t)
        due = self.events.pop_kind(EventKind.EXEC, t)
        if not due:
            return
        if len(due) > 1:
            due = sorted(due)
        for _, _, tid, _ in due:
            txn = self.txns[tid]
            if txn.state is TxnState.EXECUTED or txn.state is TxnState.CANCELLED:
                continue
            if txn.exec_time is None or txn.exec_time > t:
                continue  # stale event: recovery moved this execution
            missing = self._missing_objects(txn)
            home_down = self.faults is not None and self.faults.node_down(txn.home, t)
            if missing or home_down:
                if (
                    self.service is not None
                    and txn.deadline is not None
                    and txn.deadline <= t
                ):
                    # Last-chance attempt failed at the deadline step:
                    # cancel rather than recover — exactly one of the
                    # two paths may claim a transaction.
                    self._expire(txn, t)
                    continue
                if self.faults is not None:
                    self._recover(txn, t, missing)
                    continue
                if self.strict:
                    raise InfeasibleScheduleError([Violation(tid, t, tuple(sorted(missing)))])
                self.trace.violations.append(Violation(tid, t, tuple(sorted(missing))))
                if self._obs is not None:
                    self._obs.on_defer(tid, t, missing)
                self.events.push_exec(t + 1, tid)
                continue
            self._commit(txn, t)

    def _recover(self, txn: Transaction, t: Time, missing: List[ObjectId]) -> None:
        """Timeout-driven rescheduling (the fault layer's recovery path).

        ``txn`` missed its committed execution time — an object was lost
        or late, or its home node is down.  The engine: (1) re-requests
        any lost object from its last confirmed holder; (2) un-commits
        the transaction (releases its object-queue slots — the one case
        where a committed time is revised, explicitly outside the paper's
        model); (3) lets the scheduler pick a new time via
        ``on_reschedule``, clamped to an exponential-backoff floor; and
        (4) records a :class:`RescheduleRecord` so the certifier and
        analysis can account for the revision.
        """
        inj = self.faults
        n = inj.bump_reschedules(txn.tid)
        if inj.plan.max_reschedules is not None and n > inj.plan.max_reschedules:
            raise InfeasibleScheduleError(
                [Violation(txn.tid, t, tuple(sorted(missing)))]
            )
        backoff = inj.backoff_for(n)
        old_exec = txn.exec_time if txn.exec_time is not None else t
        # (1) Lost objects: the injector remembers where each dropped leg
        # actually left its object; re-request from that holder.
        for oid in missing:
            if oid in inj.lost:
                holder = inj.recover_lost(oid)
                self.record_fault("rerequest", t, node=holder, oid=oid)
                self._needs_departure_check.add(oid)
        # (2) Un-commit: release queue slots and any in-flight read state
        # so commit_schedule accepts a fresh time.
        for oid in txn.objects:
            obj = self.objects[oid]
            obj.remove_writer(txn.tid)
            # Served-but-unexecuted readers may have copies whose version
            # assumed this writer's old position in the order; re-cut.
            for entry in obj.read_waiters:
                if entry.tid in obj.reads_served:
                    obj.reads_served.discard(entry.tid)
                    obj.reads_delivered.discard(entry.tid)
                    obj.read_epoch[entry.tid] = obj.read_epoch.get(entry.tid, 0) + 1
            self._needs_departure_check.add(oid)
            self._service_reads(obj, t)
        for oid in txn.reads:
            self.objects[oid].finish_read(txn.tid)
        txn.exec_time = None
        txn.state = TxnState.PENDING
        self.pending.on_unschedule(txn)
        floor = t + backoff
        # The backoff floor never pushes the next attempt past the run
        # horizon: a pathological reschedule count would otherwise park
        # the retry beyond max_time and guarantee a silent no-show.
        if self.max_time is not None and floor > self.max_time:
            floor = self.max_time
        restart = inj.restart_time(txn.home, t)
        if restart is not None and restart > floor:
            floor = restart
        self._resched_floor[txn.tid] = floor
        self.add_alarm(floor)
        # (3) The scheduler decides the new time (or re-enters its own
        # pending machinery, e.g. bucket insertion).
        self.scheduler.on_reschedule(txn, t)
        new_exec = txn.exec_time if txn.exec_time is not None else -1
        self.trace.reschedules.append(
            RescheduleRecord(txn.tid, t, old_exec, new_exec, backoff, tuple(sorted(missing)))
        )
        if self._obs is not None:
            self._obs.on_reschedule(txn.tid, t, backoff, new_exec, tuple(sorted(missing)))

    def _expire(self, txn: Transaction, t: Time) -> None:
        """Cancel an admitted transaction whose deadline passed (service
        mode, :mod:`repro.service`).

        Un-commits exactly like :meth:`_recover` step (2) — releases the
        transaction's object-queue slots and re-cuts any served readers
        whose copy version assumed its old queue position — then retires
        it from the live set the way :meth:`_commit` does, except the
        outcome is an :class:`ExpiredRecord`: the tid never reaches
        ``trace.txns``, and the certifier checks object conservation
        through the cancellation.
        """
        for oid in txn.objects:
            obj = self.objects[oid]
            obj.remove_writer(txn.tid)
            for entry in obj.read_waiters:
                if entry.tid in obj.reads_served:
                    obj.reads_served.discard(entry.tid)
                    obj.reads_delivered.discard(entry.tid)
                    obj.read_epoch[entry.tid] = obj.read_epoch.get(entry.tid, 0) + 1
            self._needs_departure_check.add(oid)
            self._service_reads(obj, t)
        for oid in txn.reads:
            self.objects[oid].finish_read(txn.tid)
        deadline = txn.deadline if txn.deadline is not None else t
        txn.exec_time = None
        txn.state = TxnState.CANCELLED
        del self.live[txn.tid]
        if 0 <= txn.home < len(self._live_home_count):
            self._live_home_count[txn.home] -= 1
        self.deps.on_commit(txn)
        self.pending.on_retire(txn)
        for oid in txn.objects:
            self._live_writers_col[self.objects[oid].index].discard(txn.tid)
        for oid in txn.reads:
            self._live_readers_col[self.objects[oid].index].discard(txn.tid)
        self._resched_floor.pop(txn.tid, None)
        self.trace.expiries.append(
            ExpiredRecord(tid=txn.tid, time=t, deadline=deadline, gen_time=txn.gen_time)
        )
        if self._obs is not None:
            self._obs.on_expire(txn.tid, t, deadline)
        hook = getattr(self.scheduler, "on_cancel", None)
        if hook is not None:
            hook(txn, t)
        self.service.note_expired(txn, t)

    def _missing_objects(self, txn: Transaction) -> List[ObjectId]:
        missing = []
        for oid in txn.objects:
            obj = self.objects[oid]
            ok = (
                not obj.in_transit
                and obj.location == txn.home
                and obj.queue
                and obj.queue[0].tid == txn.tid
                and (obj.holder_txn is None or self.txns[obj.holder_txn].state is TxnState.EXECUTED)
            )
            if not ok:
                missing.append(oid)
        for oid in txn.reads:
            if txn.tid not in self.objects[oid].reads_delivered:
                missing.append(oid)
        return missing

    def _commit(self, txn: Transaction, t: Time) -> None:
        txn.state = TxnState.EXECUTED
        del self.live[txn.tid]
        if 0 <= txn.home < len(self._live_home_count):
            self._live_home_count[txn.home] -= 1
        self.deps.on_commit(txn)
        self.pending.on_retire(txn)
        for oid in txn.objects:
            self._live_writers_col[self.objects[oid].index].discard(txn.tid)
        for oid in txn.reads:
            obj = self.objects[oid]
            self._live_readers_col[obj.index].discard(txn.tid)
            obj.finish_read(txn.tid)
        for oid in txn.objects:
            obj = self.objects[oid]
            obj.pop_head(txn.tid)
            obj.holder_txn = txn.tid
            obj.version += 1
            # Cut copies for readers of the fresh version before the
            # master departs (departures run after executions).
            self._service_reads(obj, t)
            self._needs_departure_check.add(oid)
        for oid in txn.creates:
            obj = self.add_object(oid, txn.home)
            obj.holder_txn = txn.tid
        # Field order matches TxnRecord (the store materialises lazily).
        self.trace.txns.add_row(
            txn.tid,
            txn.home,
            tuple(sorted(txn.objects)),
            txn.gen_time,
            self._schedule_times.get(txn.tid, txn.gen_time),
            t,
            tuple(sorted(txn.reads)),
        )
        if self._obs is not None:
            self._obs.on_commit(txn, t)
        service = self.service
        if service is not None:
            # Inlined ServiceFrontEnd.note_commit — a per-commit hot
            # path where the method-call overhead is measurable.
            service._commits_since += 1
            service._seen_commit = True
            if txn.deadline is not None:
                service.deadline_commits += 1
        hook = self._sched_on_commit
        if hook is not None:
            hook(txn, t)
        wl_hook = self._wl_on_commit
        if wl_hook is not None:
            for spec in wl_hook(txn, t):
                self.submit(spec)

    def _service_reads(self, obj: SharedObject, t: Time) -> None:
        """Dispatch copies to serviceable readers (read/write extension).

        A reader is serviceable once every preceding writer (by execution
        key) has committed; its copy is cut from the master's resting
        position.  If the master is in transit, servicing re-triggers on
        arrival (the coloring's artificial-node accounting guarantees the
        copy still arrives in time).
        """
        if obj.in_transit or not obj.read_waiters:
            return
        graph = self.graph
        oracle = graph.oracle  # O(1) point lookups: no row materialised
        drow = None  # distances from the master's position, fetched lazily
        for entry in list(obj.read_waiters):
            if entry.tid in obj.reads_served or not obj.reader_serviceable(entry):
                continue
            obj.reads_served.add(entry.tid)
            reader_home = self.txns[entry.tid].home
            if reader_home == obj.location:
                # Co-located: a zero-length copy, recorded so the certifier
                # can verify where and at which version it was cut.
                obj.reads_delivered.add(entry.tid)
                self.trace.copy_legs.append_row(
                    obj.oid, entry.tid, t, obj.location, reader_home, t, obj.version
                )
                if self._obs is not None:
                    self._obs.on_copy(obj.oid, entry.tid, t, t)
                continue
            if oracle is not None:
                dist = oracle.distance(obj.location, reader_home)
            else:
                if drow is None:
                    drow = graph.distances_from(obj.location)
                dist = drow[reader_home]
            travel = obj.travel_time(dist)
            arrive = t + travel
            self.trace.copy_legs.append_row(
                obj.oid, entry.tid, t, obj.location, reader_home, arrive, obj.version
            )
            if self._obs is not None:
                self._obs.on_copy(obj.oid, entry.tid, t, arrive)
            self.events.push_copy(arrive, obj.oid, entry.tid, obj.read_epoch.get(entry.tid, 0))

    def _process_departures(self, t: Time) -> None:
        for _, _, oid, _ in self.events.pop_kind(EventKind.DEPART, t):
            self._needs_departure_check.add(oid)
        self.transport.begin_step(t)
        pending = self._needs_departure_check
        if not pending:
            return
        self._needs_departure_check = set()
        if len(pending) > 1:  # deterministic under capacity limits
            pending = sorted(pending)
        for oid in pending:
            self._maybe_depart(self.objects[oid], t)

    def _maybe_depart(self, obj: SharedObject, t: Time) -> None:
        if obj.in_transit or not obj.queue:
            return
        holder = obj.holder_txn
        if holder is not None and self.txns[holder].is_live:
            return  # current holder still needs the object
        nxt = obj.queue[0]
        target = self.txns[nxt.tid].home
        if target == obj.location:
            return  # already where it needs to be
        if self.departure_policy is DeparturePolicy.LAZY:
            travel = obj.travel_time(self.graph.distance(obj.location, target))
            depart = max(t, nxt.exec_time - travel)
            if depart > t:
                self.events.push_depart(depart, obj.oid)
                return
        leg = self.transport.plan_leg(obj, target, t)
        if leg is None:
            return  # blocked: the transport has scheduled a retry
        dst, arrive = leg
        self.trace.legs.append_row(obj.oid, t, obj.location, dst, arrive)
        if self._obs is not None:
            self._obs.on_depart(obj.oid, t, obj.location, dst, arrive)
        obj.begin_leg(dst, arrive)
        self.events.push_arrival(arrive, obj.oid)
