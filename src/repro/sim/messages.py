"""Point-to-point control messages with shortest-path latency.

The distributed bucket scheduler (Algorithm 3) exchanges control messages —
object discovery probes, conflict reports, bucket reports, schedule
notifications.  A message sent from ``src`` to ``dst`` at time ``t`` is
delivered at ``t + d_G(src, dst)`` (control messages travel at full speed;
only *objects* are slowed to half speed under Algorithm 3).

The router is deliberately tiny: an ordered heap of deliveries whose
callbacks run inside the engine's step loop, mirroring how an mpi4py-style
nonblocking ``isend``/callback pattern would look on a real deployment.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro._compat import slotted_dataclass
from repro._types import NodeId, Time
from repro.network.graph import Graph

DeliveryCallback = Callable[[Time, "Message"], None]


@slotted_dataclass(frozen=True)
class Message:
    """An in-flight control message.

    Slotted: distributed-bucket runs create one per probe/report leg, so
    the per-instance ``__dict__`` was measurable allocation volume."""

    src: NodeId
    dst: NodeId
    kind: str
    payload: Any
    sent_at: Time
    deliver_at: Time


class MessageRouter:
    """Delivers messages after their shortest-path latency.

    Statistics (count and total hop-distance) feed the distributed
    scheduler's overhead metrics in experiment E8.
    """

    def __init__(self, graph: Graph, spine=None) -> None:
        #: optional :class:`~repro.sim.events.EventQueue`: when set, every
        #: send pushes a MESSAGE marker so the engine's next-active-time
        #: peek covers deliveries without polling this router
        self._graph = graph
        self._spine = spine
        self._heap: List[Tuple[Time, int, Message, DeliveryCallback]] = []
        self._seq = itertools.count()
        self.sent_count = 0
        self.total_distance: float = 0.0
        #: optional :class:`repro.faults.FaultInjector` (set by the engine
        #: when ``SimConfig.faults`` is active): adds seeded delivery
        #: jitter on send and holds deliveries to crashed destinations
        #: until their restart step
        self.injector = None
        #: optional fault-recording callback, ``(kind, t, node=, extra=)``
        #: — the engine wires :meth:`Simulator.record_fault` here
        self.on_fault = None

    def send(
        self,
        now: Time,
        src: NodeId,
        dst: NodeId,
        kind: str,
        payload: Any,
        on_deliver: DeliveryCallback,
        extra_delay: Time = 0,
    ) -> Message:
        """Queue a message; it is delivered at ``now + d(src,dst) + extra``.

        A zero-distance message (``src == dst``) is delivered at the next
        time step, never instantaneously — local processing still takes a
        step in the synchronous model.
        """
        dist = self._graph.distance(src, dst)
        delay = max(1, dist) + extra_delay
        if self.injector is not None:
            jitter = self.injector.message_delay(src, dst, kind, now)
            if jitter:
                delay += jitter
                if self.on_fault is not None:
                    self.on_fault("msg-delay", now, node=dst, extra=jitter)
        msg = Message(src, dst, kind, payload, now, now + delay)
        heapq.heappush(self._heap, (msg.deliver_at, next(self._seq), msg, on_deliver))
        if self._spine is not None:
            self._spine.push_message(msg.deliver_at)
        self.sent_count += 1
        self.total_distance += dist
        return msg

    def next_delivery_time(self) -> Optional[Time]:
        return self._heap[0][0] if self._heap else None

    def deliver_due(self, now: Time) -> int:
        """Run callbacks for all messages due at or before ``now``.

        Callbacks may send further messages (delivered strictly later).
        Returns the number of messages delivered.  Deliveries addressed
        to a crashed node (:mod:`repro.faults`) are requeued for the
        node's restart step instead of running now; deliveries whose
        sender and destination are separated by an active partition cut
        are requeued for the cut's earliest heal time (``"partition-msg"``
        fault record).
        """
        count = 0
        while self._heap and self._heap[0][0] <= now:
            _, _, msg, cb = heapq.heappop(self._heap)
            if self.injector is not None:
                restart = self.injector.restart_time(msg.dst, now)
                if restart is not None:
                    self._requeue(msg, cb, restart)
                    continue
                if msg.src != msg.dst and self.injector.partition_separates(
                    self._graph, msg.src, msg.dst, now
                ):
                    heal = self.injector.heal_time(now)
                    assert heal is not None  # a cut is active at ``now``
                    self._requeue(msg, cb, heal)
                    if self.on_fault is not None:
                        self.on_fault(
                            "partition-msg", now, node=msg.dst, extra=heal - now
                        )
                    continue
            cb(now, msg)
            count += 1
        return count

    def _requeue(self, msg: Message, cb: DeliveryCallback, at: Time) -> None:
        """Re-deliver ``msg`` at ``at`` (fault hold: crash or partition)."""
        held = Message(msg.src, msg.dst, msg.kind, msg.payload, msg.sent_at, at)
        heapq.heappush(self._heap, (at, next(self._seq), held, cb))
        if self._spine is not None:
            self._spine.push_message(at)

    @property
    def pending(self) -> int:
        return len(self._heap)
