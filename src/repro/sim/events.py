"""The event spine: one typed queue for every engine alarm.

The engine used to juggle six parallel heaps (scheduled executions,
master-object arrivals, read-copy arrivals, departure alarms, pending
transaction specs, scheduler alarms) plus a poll of the message router,
and finding the next active time step meant a 7-way scan on every loop
iteration.  :class:`EventQueue` replaces them with a single heap of
``(time, kind, key, payload)`` entries:

* **O(1) next-event peek** — :meth:`EventQueue.peek_time` reads one heap
  top instead of scanning seven sources.
* **Deterministic tie-breaks** — within one time step, kinds pop in the
  engine's phase order (:class:`EventKind` values), and entries of the
  same kind pop by a per-kind key chosen to reproduce the legacy heaps
  byte-for-byte (object id for arrivals, ``(oid, tid, epoch)`` for
  copies, submission sequence for specs, transaction id for executions).
* **Alarm dedup** — :meth:`push_alarm` drops duplicate alarm times, so
  windowed/bucket schedulers that re-request the same wake-up every step
  no longer grow the queue.

Phase-aligned consumption: the engine processes each kind at a fixed
phase of its step, but events for a *later* phase may already be due when
an *earlier* phase drains the heap.  :meth:`pop_kind` therefore scoops
every due entry off the heap into per-kind buckets and returns only the
requested kind; the rest wait in their bucket for their phase.  An event
pushed *after* its phase already ran this step (e.g. an execution
committed for the current time during the depart phase) stays queued and
is delivered next step — exactly the legacy heaps' behavior.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, List, Optional, Tuple

from repro._types import ObjectId, Time, TxnId

#: One queue entry: ``(time, kind, key, payload)``.  The first three
#: fields are the heap order; the payload is never compared (keys are
#: unique per kind wherever payloads differ).
Event = Tuple[Time, int, Any, Any]

#: Shared empty result for pop_kind's no-pending fast path; callers
#: iterate the returned list, they never mutate it.
_EMPTY: List[Event] = []


class EventKind(IntEnum):
    """Event types, ordered by the engine phase that consumes them."""

    FAULT = 0    #: injected crash/restart transition (key: (node, kind))
    ARRIVAL = 1  #: master object settles at a node (key: oid)
    COPY = 2     #: read-only copy reaches its reader (key: (oid, tid, epoch))
    MESSAGE = 3  #: a router delivery falls due (key: 0; marker only)
    SPEC = 4     #: a submitted transaction generates (key: submit seq)
    EXEC = 5     #: a scheduled transaction executes (key: tid)
    DEPART = 6   #: re-check an object for departure (key: oid)
    ALARM = 7    #: scheduler-requested wake-up (key: 0; deduplicated)


class EventQueue:
    """Single-heap, typed, deterministic event queue (the engine's clock).

    Producers push with the per-kind ``push_*`` helpers; the engine
    consumes with :meth:`pop_kind` once per kind per step, in phase
    order.  :meth:`peek_time` is the O(1) replacement for the old
    multi-heap next-active-time scan.
    """

    __slots__ = (
        "_heap",
        "_due",
        "_due_count",
        "_kind_counts",
        "_spec_seq",
        "_alarm_times",
        "_msg_times",
    )

    def __init__(self) -> None:
        self._heap: List[Event] = []
        # Kind values are dense (0..7), so the per-kind due buckets are a
        # plain list indexed by kind — no dict hashing on the hot path.
        self._due: List[List[Event]] = [[] for _ in EventKind]
        self._due_count = 0
        # Per-kind pending totals (heap + due bucket): pop_kind for a
        # kind with zero pending entries — the common case for most of
        # the engine's eight phases on any given step — is a counter
        # read, no heap scoop.
        self._kind_counts: List[int] = [0] * len(EventKind)
        self._spec_seq = itertools.count()
        self._alarm_times: set = set()
        self._msg_times: set = set()

    # ------------------------------------------------------------------
    # producers
    # ------------------------------------------------------------------
    def push(self, time: Time, kind: EventKind, key: Any = 0, payload: Any = None) -> None:
        """Push one typed event (the ``push_*`` helpers wrap this)."""
        self._kind_counts[kind] += 1
        heapq.heappush(self._heap, (time, int(kind), key, payload))

    def push_arrival(self, time: Time, oid: ObjectId) -> None:
        """Master object ``oid`` arrives at its leg destination."""
        self.push(time, EventKind.ARRIVAL, oid)

    def push_fault(self, time: Time, key: Any, payload: Any) -> None:
        """An injected crash/restart transition fires at ``time``.

        Only queued when ``SimConfig.faults`` carries crash windows; the
        fault-free engine never sees this kind.
        """
        self.push(time, EventKind.FAULT, key, payload)

    def push_copy(self, time: Time, oid: ObjectId, tid: TxnId, epoch: int) -> None:
        """A read copy of ``oid`` (serve epoch ``epoch``) reaches ``tid``."""
        self.push(time, EventKind.COPY, (oid, tid, epoch))

    def push_message(self, time: Time) -> None:
        """Marker: the router will have a delivery due at ``time``.

        Markers only exist to make :meth:`peek_time` see the delivery
        step, so duplicates for the same time are dropped (a batch of
        same-step sends — bucket probe rounds — queues one marker).
        """
        if time in self._msg_times:
            return
        self._msg_times.add(time)
        self.push(time, EventKind.MESSAGE)

    def push_spec(self, time: Time, spec: Any) -> None:
        """A submitted transaction spec generates at ``time``."""
        self.push(time, EventKind.SPEC, next(self._spec_seq), spec)

    def push_exec(self, time: Time, tid: TxnId) -> None:
        """Transaction ``tid`` is scheduled to execute at ``time``."""
        self.push(time, EventKind.EXEC, tid)

    def push_depart(self, time: Time, oid: ObjectId) -> None:
        """Re-check object ``oid`` for departure at ``time``."""
        self.push(time, EventKind.DEPART, oid)

    def push_alarm(self, time: Time) -> bool:
        """Scheduler wake-up at ``time``; duplicates are dropped.

        Returns True when a new alarm was queued, False when an alarm for
        that exact time was already pending.
        """
        if time in self._alarm_times:
            return False
        self._alarm_times.add(time)
        self.push(time, EventKind.ALARM)
        return True

    # ------------------------------------------------------------------
    # consumers
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[Time]:
        """Earliest pending event time, or None when the queue is empty.

        O(1) on the common path: one heap top.  Entries parked in a due
        bucket across a step boundary (an event pushed for the current
        step *after* its phase already ran) are rare, so their minimum is
        computed here on demand instead of being maintained on every pop.
        """
        if self._due_count:
            m = min(e[0] for b in self._due for e in b)
            if self._heap and self._heap[0][0] < m:
                return self._heap[0][0]
            return m
        return self._heap[0][0] if self._heap else None

    def pop_kind(self, kind: EventKind, t: Time) -> List[Event]:
        """All events of ``kind`` due at or before ``t``, in heap order.

        Due events of *other* kinds encountered on the heap are parked in
        their bucket for their own phase; within a kind, entries come out
        ordered by ``(time, key)`` — the legacy per-heap order.  When no
        event of ``kind`` is pending anywhere (the per-kind counter is
        zero) the call returns immediately without touching the heap —
        due events of other kinds are scooped by their own phase's pop.
        """
        counts = self._kind_counts
        if not counts[kind]:
            return _EMPTY
        heap = self._heap
        due = self._due
        while heap and heap[0][0] <= t:
            entry = heapq.heappop(heap)
            due[entry[1]].append(entry)
            self._due_count += 1
        bucket = due[kind]
        if not bucket:
            return bucket
        due[kind] = []
        n = len(bucket)
        self._due_count -= n
        counts[kind] -= n
        if kind is EventKind.ALARM:
            for entry in bucket:
                self._alarm_times.discard(entry[0])
        elif kind is EventKind.MESSAGE:
            for entry in bucket:
                self._msg_times.discard(entry[0])
        return bucket

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap) + self._due_count

    def __bool__(self) -> bool:
        return bool(self._heap) or self._due_count > 0

    def pending_alarms(self) -> List[Time]:
        """Distinct pending scheduler-alarm times (sorted; for tests)."""
        return sorted(self._alarm_times)
