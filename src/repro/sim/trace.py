"""Execution traces: the complete, certifiable record of a simulation run.

The engine records every object movement (:class:`ObjectLeg`) and every
transaction outcome (:class:`TxnRecord`).  :func:`repro.sim.validate.
certify_trace` re-derives feasibility from these raw records alone, so a
scheduler bug cannot silently produce an impossible "good" schedule.
"""

from __future__ import annotations

from dataclasses import field
from typing import Dict, List, Mapping, Optional, Tuple

from repro._compat import slotted_dataclass
from repro._types import NodeId, ObjectId, Time, TxnId


@slotted_dataclass(frozen=True)
class ObjectLeg:
    """One uninterrupted movement of an object between two nodes."""

    oid: ObjectId
    depart_time: Time
    src: NodeId
    dst: NodeId
    arrive_time: Time


@slotted_dataclass(frozen=True)
class CopyLeg:
    """One copy shipment to a reader (read/write extension).

    Copies are cut from the master object's resting position and do not
    move the master; ``version`` records how many writers had committed
    when the copy was cut (for serializability checking).
    """

    oid: ObjectId
    reader_tid: TxnId
    depart_time: Time
    src: NodeId
    dst: NodeId
    arrive_time: Time
    version: int


@slotted_dataclass(frozen=True)
class TxnRecord:
    """Immutable summary of one transaction's life."""

    tid: TxnId
    home: NodeId
    objects: Tuple[ObjectId, ...]
    gen_time: Time
    schedule_time: Time
    exec_time: Time
    reads: Tuple[ObjectId, ...] = ()

    @property
    def latency(self) -> Time:
        """The paper's execution duration ``t_T - t``."""
        return self.exec_time - self.gen_time

    @property
    def all_objects(self) -> Tuple[ObjectId, ...]:
        return tuple(sorted(set(self.objects) | set(self.reads)))


@slotted_dataclass(frozen=True)
class Violation:
    """A feasibility violation observed by the engine (non-strict mode)."""

    tid: TxnId
    time: Time
    missing: Tuple[ObjectId, ...]

    def __str__(self) -> str:
        return f"txn {self.tid} at t={self.time} missing objects {list(self.missing)}"


@slotted_dataclass(frozen=True)
class FaultRecord:
    """One injected fault (:mod:`repro.faults`), as it actually fired.

    ``kind`` is one of:

    * ``"drop"`` — a master leg of ``oid`` planned at ``time`` was lost
      (the object never left ``node``);
    * ``"delay"`` — the leg of ``oid`` departing at ``time`` took
      ``extra`` additional steps;
    * ``"crash"`` / ``"restart"`` — ``node`` went down at ``time`` for
      ``extra`` steps / came back up at ``time``;
    * ``"crash-delay"`` — an arrival of ``oid`` at crashed ``node`` was
      held ``extra`` extra steps until its restart;
    * ``"rerequest"`` — recovery re-requested lost ``oid`` from its last
      confirmed holder ``node`` at ``time``;
    * ``"partition-block"`` — a leg of ``oid`` from ``node`` was blocked
      by an active partition (no intact path); the departure retries at
      heal time, ``extra`` steps later;
    * ``"reroute"`` — a leg of ``oid`` from ``node`` detoured around an
      active cut, taking ``extra`` steps beyond the unpartitioned
      shortest path;
    * ``"partition-msg"`` — a control message into ``node`` was deferred
      ``extra`` steps to the heal time of the partition separating it
      from its sender;
    * ``"net-delay"`` — the leg of ``oid`` departing at ``time`` drew
      ``extra`` additional steps from the configured network latency
      distribution (:class:`repro.sim.transport.LatencyDistTransport`);
    * ``"join"`` / ``"leave"`` — elastic membership: ``node`` joined /
      permanently left the graph at ``time``;
    * ``"drain"`` — a graceful leave of ``node`` began at ``time``; its
      ``"leave"`` record fires once its live transactions finished and
      its resting objects migrated;
    * ``"leave-recover"`` — an object stranded by a leave was forwarded
      to surviving member ``node`` (``oid`` names the object);
    * ``"rehome"`` — a live transaction (tid in ``extra``) homed at a
      departing node was re-homed to member ``node``.
    """

    kind: str
    time: Time
    node: Optional[NodeId] = None
    oid: Optional[ObjectId] = None
    extra: Time = 0

    def __str__(self) -> str:
        bits = [f"t={self.time}"]
        if self.node is not None:
            bits.append(f"node={self.node}")
        if self.oid is not None:
            bits.append(f"oid={self.oid}")
        if self.extra:
            bits.append(f"extra={self.extra}")
        return f"{self.kind}({', '.join(bits)})"


@slotted_dataclass(frozen=True)
class RescheduleRecord:
    """One recovery action: a transaction missed its committed execution
    time (lost/late object or crashed home node) and was re-scheduled."""

    tid: TxnId
    time: Time
    old_exec: Time
    new_exec: Time
    backoff: Time
    missing: Tuple[ObjectId, ...] = ()

    def __str__(self) -> str:
        return (
            f"txn {self.tid} missed t={self.old_exec}, rescheduled at t={self.time} "
            f"to t={self.new_exec} (backoff {self.backoff}, missing {list(self.missing)})"
        )


@slotted_dataclass(frozen=True)
class ShedRecord:
    """One transaction spec rejected at the admission front door
    (:mod:`repro.service`) — it never received a transaction id.

    ``reason`` is ``"queue-full"`` (bounded queue overflowed and the
    policy rejected the newcomer), ``"displaced"`` (the policy evicted a
    previously queued entry in favour of a better one), or
    ``"expired-in-queue"`` (the entry's deadline passed before it was
    admitted)."""

    time: Time
    home: NodeId
    gen_time: Time
    reason: str
    priority: int = 0

    def __str__(self) -> str:
        return (
            f"shed(t={self.time}, home={self.home}, gen={self.gen_time}, "
            f"{self.reason}, prio={self.priority})"
        )


@slotted_dataclass(frozen=True)
class ExpiredRecord:
    """One admitted transaction cancelled mid-flight because its deadline
    passed before it executed (:mod:`repro.service`).  The engine
    released its object-queue slots on cancellation; the tid never
    appears in ``trace.txns``."""

    tid: TxnId
    time: Time
    deadline: Time
    gen_time: Time

    def __str__(self) -> str:
        return (
            f"expired(txn {self.tid} at t={self.time}, deadline={self.deadline}, "
            f"gen={self.gen_time})"
        )


@slotted_dataclass(frozen=True)
class MembershipRecord:
    """One elastic-membership transition as it actually took effect
    (:class:`repro.faults.MembershipPlan`).

    ``kind`` is ``"join"`` (``edges`` carries the anchor ``(node,
    weight)`` pairs), ``"drain"`` (a graceful leave began), or
    ``"leave"`` (the node departed permanently).  The certifier rebuilds
    the final graph from the join records and accepts leave-induced
    detours against the leave records."""

    kind: str
    node: NodeId
    time: Time
    edges: Tuple[Tuple[NodeId, Time], ...] = ()

    def __str__(self) -> str:
        extra = f", edges {list(self.edges)}" if self.edges else ""
        return f"{self.kind}(node={self.node}, t={self.time}{extra})"


@slotted_dataclass(frozen=True)
class PartitionRecord:
    """One network-partition window as it actually took effect
    (:mod:`repro.faults`): the edges of ``cut`` were severed for
    ``[start, end)`` and healed at ``end``.  Recorded when the window's
    start fires, so the certifier can reconcile every ``reroute`` /
    ``partition-block`` fault record against a covering window."""

    cut: Tuple[Tuple[NodeId, NodeId], ...]
    start: Time
    end: Time

    def covers(self, t: Time) -> bool:
        return self.start <= t < self.end

    def __str__(self) -> str:
        edges = ", ".join(f"{u}-{v}" for u, v in self.cut)
        return f"partition([{self.start}, {self.end}), cut {{{edges}}})"


@slotted_dataclass()
class ExecutionTrace:
    """Everything that happened in one simulation run."""

    graph_name: str
    initial_placement: Dict[ObjectId, NodeId]
    object_speed_den: int = 1
    txns: Dict[TxnId, TxnRecord] = field(default_factory=dict)
    legs: List[ObjectLeg] = field(default_factory=list)
    copy_legs: List[CopyLeg] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    reschedules: List[RescheduleRecord] = field(default_factory=list)
    partitions: List[PartitionRecord] = field(default_factory=list)
    membership: List[MembershipRecord] = field(default_factory=list)
    sheds: List[ShedRecord] = field(default_factory=list)
    expiries: List[ExpiredRecord] = field(default_factory=list)
    messages_sent: int = 0
    message_hops: float = 0.0
    end_time: Time = 0
    meta: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    @property
    def num_txns(self) -> int:
        return len(self.txns)

    def makespan(self) -> Time:
        """Last execution time (0 for an empty run)."""
        if not self.txns:
            return 0
        return max(r.exec_time for r in self.txns.values())

    def latencies(self) -> List[Time]:
        """Per-transaction execution durations, in tid order."""
        return [self.txns[t].latency for t in sorted(self.txns)]

    def max_latency(self) -> Time:
        lats = self.latencies()
        return max(lats) if lats else 0

    def mean_latency(self) -> float:
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else 0.0

    def total_object_travel(self) -> Time:
        """Total communication cost: sum of all master-leg durations."""
        return sum(l.arrive_time - l.depart_time for l in self.legs)

    def total_copy_travel(self) -> Time:
        """Communication cost of read copies (read/write extension)."""
        return sum(l.arrive_time - l.depart_time for l in self.copy_legs)

    def legs_of(self, oid: ObjectId) -> List[ObjectLeg]:
        return [l for l in self.legs if l.oid == oid]

    def fault_counts(self) -> Dict[str, int]:
        """Count of injected faults by kind (empty for fault-free runs)."""
        counts: Dict[str, int] = {}
        for f in self.faults:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    def max_backoff(self) -> Time:
        """Largest recovery backoff used (0 for fault-free runs)."""
        return max((r.backoff for r in self.reschedules), default=0)

    def executions_in_order(self) -> List[TxnRecord]:
        return sorted(self.txns.values(), key=lambda r: (r.exec_time, r.tid))
