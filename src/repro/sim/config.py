"""SimConfig: one frozen value object for every engine knob.

The :class:`~repro.sim.engine.Simulator` grew nine keyword parameters;
call sites that need to thread them through layers (``run_experiment``,
``replicate``, the CLI, suite files) ended up re-declaring each knob at
every level — and drifting (``run_experiment`` could not express
``hop_motion`` / ``link_capacity`` / ``strict`` runs at all).
:class:`SimConfig` consolidates them:

    Simulator(g, sched, wl, config=SimConfig(hop_motion=True, link_capacity=1))

The old keyword arguments remain accepted everywhere; an explicitly
passed keyword wins over the corresponding ``config`` field (and the
combination is a deprecation-path convenience, not a recommended style —
pass one ``SimConfig`` instead).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro._types import DeparturePolicy, Time
from repro.errors import WarmupError, WorkloadError
from repro.obs.probe import Probe


@dataclass(frozen=True)
class SimConfig:
    """Engine configuration (see :class:`repro.sim.engine.Simulator` for
    the semantics of each knob).

    Attributes
    ----------
    departure_policy:
        ``EAGER`` (paper default) or ``LAZY`` just-in-time departures.
    object_speed_den:
        Time steps per unit distance for objects (2 = half speed).
    strict:
        Missing objects at execution are a hard error (True) or recorded
        deferrals (False).
    one_txn_per_node:
        Enforce at most one live transaction per node.
    node_egress_capacity:
        Max object departures per node per step (None = unbounded);
        applied as an :class:`~repro.sim.transport.EgressCapacity`
        decorator around the selected transport.
    hop_motion:
        Legacy spelling of ``transport="hop"`` (move objects edge by
        edge instead of whole shortest-path legs).
    link_capacity:
        Max concurrent traversals per edge; requires a hop transport.
        Applied as a :class:`~repro.sim.transport.LinkCapacity`
        decorator.
    max_time:
        Stop the run loop beyond this simulation time (None = run to
        quiescence).
    probe:
        Observability probe (:mod:`repro.obs`); None means the zero
        overhead :class:`~repro.obs.probe.NullProbe`.
    transport:
        Object-motion strategy (:mod:`repro.sim.transport`): ``"direct"``
        (whole shortest-path legs, the paper default), ``"hop"``
        (edge-by-edge), or a :class:`~repro.sim.transport.Transport`
        instance.  ``None`` defers to the legacy ``hop_motion`` flag.
        Custom instances are used as given (their ``kind`` attribute
        participates in validation); the capacity knobs above always
        wrap the selected base.
    faults:
        A frozen :class:`repro.faults.FaultPlan` of seeded crash/drop/
        delay faults, or ``None`` (the default) for the paper's reliable
        network.  ``None`` guarantees byte-identical traces with
        pre-fault-layer builds; a plan enables the recovery machinery
        (timeout-driven rescheduling with exponential backoff).
    checkpoint_every:
        Write a durability checkpoint (:mod:`repro.durability`) every
        this many *active* steps (None = never).  Requires
        ``checkpoint_path``.
    checkpoint_path:
        Where periodic / signal-triggered checkpoints are written.  May
        contain a ``{step}`` placeholder to keep one snapshot per
        checkpointed step instead of overwriting.
    checkpoint_sync:
        ``True`` (default): periodic checkpoints block the step loop
        until the snapshot is on disk.  ``False``: periodic snapshots
        are serialized by a forked child while the run continues
        (:func:`repro.durability.save_checkpoint_async`; same bytes,
        near-zero stall — prefer a ``{step}`` path template so
        concurrent writers target distinct files).  The final
        SIGTERM/SIGINT snapshot is always synchronous: the process is
        about to exit, so the write must be durable first.
    warmup:
        Default measurement cutoff (absolute steps) for open-system
        runs; ``run(warmup=...)`` overrides it.  Must be smaller than
        ``max_time`` when both are set (:class:`~repro.errors.
        WarmupError` otherwise — an empty SLO window is never useful).
    service:
        A frozen :class:`repro.service.ServiceConfig` enabling the
        ingestion front-end (bounded admission queue, deadlines,
        degradation controller), or ``None`` (the default) to feed
        arrivals straight to the scheduler.  ``None`` guarantees
        byte-identical traces with pre-service builds.
    latency_dist:
        Network latency-distribution spec for
        :class:`~repro.sim.transport.LatencyDistTransport`:
        ``"lognormal:MU:SIGMA[:CAP]"`` or ``"empirical:V1,V2,..."``
        draw seeded per-leg extra delivery steps (long-tail realism).
        Requires ``faults`` (a plan, possibly empty): late objects are
        handled by the recovery machinery, and the certifier accounts
        for the extra steps via ``"net-delay"`` fault records.
    latency_seed:
        Seed of the latency-distribution draws (independent of the
        fault plan's seed so the two can be varied separately).
    """

    departure_policy: DeparturePolicy = DeparturePolicy.EAGER
    object_speed_den: int = 1
    strict: bool = True
    one_txn_per_node: bool = False
    node_egress_capacity: Optional[int] = None
    hop_motion: bool = False
    link_capacity: Optional[int] = None
    max_time: Optional[Time] = None
    probe: Optional[Probe] = None
    transport: Optional[object] = None
    faults: Optional[object] = None
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    checkpoint_sync: bool = True
    warmup: Optional[Time] = None
    service: Optional[object] = None
    latency_dist: Optional[str] = None
    latency_seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical knob combinations with a clear
        :class:`~repro.errors.WorkloadError` before they can surface as
        deep engine failures.

        Runs automatically on construction; public so callers composing a
        config via ``dataclasses.replace``-style helpers (which re-run
        ``__post_init__``) or building one programmatically can re-check
        explicitly.
        """
        if isinstance(self.transport, str) and self.transport not in ("direct", "hop"):
            raise WorkloadError(
                f"unknown transport {self.transport!r} (choose 'direct' or 'hop')"
            )
        if self.transport is not None and self.hop_motion and self.transport_kind == "direct":
            raise WorkloadError("transport='direct' conflicts with hop_motion=True")
        if self.link_capacity is not None and self.transport_kind == "direct":
            raise WorkloadError(
                "link_capacity requires a hop transport "
                "(hop_motion=True or transport='hop')"
            )
        if self.link_capacity is not None and self.link_capacity < 1:
            raise WorkloadError(
                f"link_capacity must be >= 1, got {self.link_capacity}"
            )
        if self.node_egress_capacity is not None and self.node_egress_capacity < 1:
            raise WorkloadError(
                f"node_egress_capacity must be >= 1, got {self.node_egress_capacity}"
            )
        if self.object_speed_den < 1:
            raise WorkloadError(
                f"object_speed_den must be >= 1, got {self.object_speed_den}"
            )
        if self.max_time is not None and self.max_time < 0:
            raise WorkloadError(f"max_time must be >= 0, got {self.max_time}")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise WorkloadError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.checkpoint_every is not None and not self.checkpoint_path:
            raise WorkloadError("checkpoint_every requires checkpoint_path")
        if self.faults is not None:
            from repro.faults import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise WorkloadError(
                    "faults must be a repro.faults.FaultPlan or None, "
                    f"got {type(self.faults).__name__}"
                )
        if self.warmup is not None:
            if self.warmup < 0:
                raise WarmupError(f"warmup must be >= 0, got {self.warmup}")
            if self.max_time is not None and self.warmup >= self.max_time:
                raise WarmupError(
                    f"warmup must be < max_time={self.max_time}, got "
                    f"{self.warmup}: the measurement window would be empty"
                )
        if self.service is not None:
            from repro.service.config import ServiceConfig

            if not isinstance(self.service, ServiceConfig):
                raise WorkloadError(
                    "service must be a repro.service.ServiceConfig or None, "
                    f"got {type(self.service).__name__}"
                )
        if self.latency_dist is not None:
            from repro.sim.transport import parse_latency_dist

            parse_latency_dist(self.latency_dist)  # raises on a bad spec
            if self.faults is None:
                raise WorkloadError(
                    "latency_dist requires faults (a FaultPlan, possibly "
                    "empty): late deliveries are absorbed by the recovery "
                    "machinery"
                )

    @property
    def transport_kind(self) -> str:
        """Resolved motion granularity: "direct", "hop", or "custom".

        ``transport=None`` resolves through the legacy ``hop_motion``
        flag; transport instances report their own ``kind``.
        """
        if self.transport is None:
            return "hop" if self.hop_motion else "direct"
        if isinstance(self.transport, str):
            return self.transport
        return getattr(self.transport, "kind", "custom")

    def replace(self, **changes) -> "SimConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def with_overrides(self, **overrides) -> "SimConfig":
        """A copy where every non-``None`` override wins.

        This is the kwargs-beat-config merge rule used by
        :class:`~repro.sim.engine.Simulator` and
        :func:`~repro.analysis.experiments.run_experiment` for backward
        compatibility with the pre-``SimConfig`` keyword API.
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **changes) if changes else self
