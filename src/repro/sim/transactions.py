"""Transaction objects and their lifecycle.

A transaction resides at a node of ``G`` and requests a set of shared
objects (paper Section II).  It executes *instantly* at the time step where
it has assembled all of them; all delay in the model is communication.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro._compat import slotted_dataclass
from repro._types import NodeId, ObjectId, Time, TxnId, TxnState


@slotted_dataclass(frozen=True)
class TxnSpec:
    """A workload-level description of a transaction to be generated.

    The engine turns specs into :class:`Transaction` instances, assigning
    transaction ids in arrival order.  ``objects`` is the *write* set
    (exclusive access, the paper's base model); ``reads`` is the read-only
    set of the read/write extension — readers receive copies and do not
    move the master object.
    """

    gen_time: Time
    home: NodeId
    objects: Tuple[ObjectId, ...]
    creates: Tuple[ObjectId, ...] = ()
    reads: Tuple[ObjectId, ...] = ()
    #: absolute commit deadline (service mode, repro.service): the
    #: transaction must execute at or before this step or be cancelled;
    #: None (default) = best effort, never expires
    deadline: Optional[Time] = None
    #: admission priority class (larger = more important); only the
    #: ``priority-class`` admission policy reads it
    priority: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "objects", tuple(self.objects))
        object.__setattr__(self, "creates", tuple(self.creates))
        object.__setattr__(self, "reads", tuple(self.reads))
        if set(self.objects) & set(self.reads):
            raise ValueError("an object cannot be both read and written by one transaction")
        if self.deadline is not None and self.deadline < self.gen_time:
            raise ValueError(
                f"deadline {self.deadline} precedes gen_time {self.gen_time}"
            )


@slotted_dataclass()
class Transaction:
    """A transaction pinned to ``home``.

    ``objects`` is the write set (the object itself must be assembled at
    ``home``); ``reads`` is the read-only set (a copy suffices, and the
    master object is not moved).  ``exec_time`` is assigned exactly once
    by a scheduler (schedulers in this library never revise committed
    execution times — the paper highlights this property at the end of
    Section II).  ``creates`` lists objects this transaction brings into
    existence when it commits.
    """

    tid: TxnId
    home: NodeId
    objects: FrozenSet[ObjectId]
    gen_time: Time
    creates: Tuple[ObjectId, ...] = ()
    exec_time: Optional[Time] = None
    state: TxnState = TxnState.PENDING
    reads: FrozenSet[ObjectId] = frozenset()
    #: absolute commit deadline (service mode); None = never expires
    deadline: Optional[Time] = None
    #: admission priority class (larger = more important)
    priority: int = 0

    def __post_init__(self) -> None:
        self.objects = frozenset(self.objects)
        self.reads = frozenset(self.reads)

    @property
    def all_objects(self) -> FrozenSet[ObjectId]:
        """Everything the transaction accesses (writes plus reads)."""
        return self.objects | self.reads

    @property
    def is_live(self) -> bool:
        """Live = generated but neither executed nor cancelled."""
        return self.state is TxnState.PENDING or self.state is TxnState.SCHEDULED

    @property
    def is_scheduled(self) -> bool:
        return self.exec_time is not None

    @property
    def latency(self) -> Optional[Time]:
        """Execution duration ``t_T - t`` once scheduled, else ``None``."""
        if self.exec_time is None:
            return None
        return self.exec_time - self.gen_time

    def __hash__(self) -> int:
        return hash(self.tid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        objs = ",".join(map(str, sorted(self.objects)))
        return (
            f"Txn(t{self.tid}@n{self.home} objs=[{objs}] gen={self.gen_time}"
            f" exec={self.exec_time} {self.state.value})"
        )
