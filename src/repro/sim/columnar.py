"""Columnar backing stores for the engine's hot per-txn/per-object state.

The engine's inner loops touch three kinds of state on every step: the
transaction table (``sim.txns``), the per-object live accessor sets, and
per-transaction bookkeeping (schedule times).  All of them used to be
hash maps keyed by ids.  Ids in this codebase are already integers —
transaction ids are *dense* by construction (``itertools.count`` in
arrival order) and object ids are interned to dense indexes at
:meth:`~repro.sim.engine.Simulator.add_object` time — so every one of
those maps is really a column: an index-keyed array.

This module provides the columns; the dataclass views
(:class:`~repro.sim.transactions.Transaction`,
:class:`~repro.sim.objects.SharedObject`) stay the API boundary, and
:class:`TxnTable` keeps the full ``Mapping`` surface so schedulers,
invariant monitors, and the chaos layer read ``sim.txns`` exactly as
before.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro._types import Time, TxnId
from repro.sim.transactions import Transaction


class TxnTable:
    """List-backed ``Mapping[TxnId, Transaction]`` for dense txn ids.

    Transaction ids are handed out by ``itertools.count`` in generation
    order, so ``tid`` *is* the row index: lookups are one list probe, no
    hashing.  Insertion is append-only and must arrive in id order — the
    engine's ``_generate`` is the only writer.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: List[Transaction] = []

    def __getitem__(self, tid: TxnId) -> Transaction:
        if 0 <= tid < len(self._rows):
            return self._rows[tid]
        raise KeyError(tid)

    def __setitem__(self, tid: TxnId, txn: Transaction) -> None:
        if tid != len(self._rows):
            raise ValueError(
                f"TxnTable is append-only with dense ids: expected tid "
                f"{len(self._rows)}, got {tid}"
            )
        self._rows.append(txn)

    def get(self, tid: TxnId, default: Any = None) -> Optional[Transaction]:
        if 0 <= tid < len(self._rows):
            return self._rows[tid]
        return default

    def __contains__(self, tid: object) -> bool:
        return isinstance(tid, int) and 0 <= tid < len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TxnId]:
        return iter(range(len(self._rows)))

    def __bool__(self) -> bool:
        return bool(self._rows)

    def keys(self) -> Iterator[TxnId]:
        return iter(range(len(self._rows)))

    def values(self) -> List[Transaction]:
        return self._rows

    def items(self) -> Iterator[Tuple[TxnId, Transaction]]:
        return enumerate(self._rows)

    def __repr__(self) -> str:
        return f"TxnTable({len(self._rows)} txns)"


class TimeColumn:
    """Dense per-transaction time column with a ``dict.get``-style probe.

    Backs ``Simulator._schedule_times``: one slot per transaction,
    appended at generation, written at schedule time.  ``None`` marks
    "never scheduled" (the engine substitutes the generation time when
    recording the commit, as the mapping version did via ``.get``).
    """

    __slots__ = ("_col",)

    def __init__(self) -> None:
        self._col: List[Optional[Time]] = []

    def append_slot(self) -> None:
        self._col.append(None)

    def __setitem__(self, tid: TxnId, t: Time) -> None:
        self._col[tid] = t

    def get(self, tid: TxnId, default: Optional[Time] = None) -> Optional[Time]:
        if 0 <= tid < len(self._col) and self._col[tid] is not None:
            return self._col[tid]
        return default


class RecordColumn:
    """Lazy list of frozen trace records (``trace.legs``/``copy_legs``).

    The engine's hot path appends plain argument tuples
    (:meth:`append_row` — one tuple literal, no dataclass ``__init__``
    with its per-field ``object.__setattr__`` calls); rows materialise
    into real records on first access and stay cached, so the
    post-run consumers (certifier, serializer, analysis) see ordinary
    record objects and pay the construction cost once, outside the
    steady-state step loop.  The full list surface the tests and
    analysis layers use — indexing (negative too), slicing, item
    assignment, ``extend``, equality against plain lists — is kept.
    """

    __slots__ = ("_factory", "_rows")

    def __init__(self, factory, rows: Optional[List[Any]] = None) -> None:
        self._factory = factory
        self._rows: List[Any] = list(rows) if rows is not None else []

    # -- hot path ------------------------------------------------------
    def append_row(self, *args: Any) -> None:
        """Append one record as its raw argument tuple (engine only)."""
        self._rows.append(args)

    # -- list surface --------------------------------------------------
    def append(self, record: Any) -> None:
        self._rows.append(record)

    def extend(self, records) -> None:
        self._rows.extend(records)

    def _mat(self, i: int) -> Any:
        row = self._rows[i]
        if type(row) is tuple:
            row = self._factory(*row)
            self._rows[i] = row
        return row

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._mat(j) for j in range(*i.indices(len(self._rows)))]
        return self._mat(i)

    def __setitem__(self, i: int, record: Any) -> None:
        self._rows[i] = record

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self._rows)):
            yield self._mat(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordColumn):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __reduce__(self):
        # Checkpoints and deep copies materialise: the pickled form is
        # identical to a column that was never lazy.
        return (RecordColumn, (self._factory, list(self)))

    def __repr__(self) -> str:
        return f"RecordColumn({self._factory.__name__}, {len(self._rows)} rows)"


class TxnRecordStore:
    """Lazy ``Mapping[TxnId, TxnRecord]`` backing ``trace.txns``.

    Same deal as :class:`RecordColumn` for the per-commit record: the
    engine appends one argument tuple per commit (:meth:`add_row`), and
    rows materialise on access.  Iteration order is insertion (commit)
    order, like the dict it replaces.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows=None) -> None:
        self._rows: Dict[TxnId, Any] = dict(rows) if rows is not None else {}

    # -- hot path ------------------------------------------------------
    def add_row(self, tid: TxnId, *rest: Any) -> None:
        """Record one commit as raw ``TxnRecord`` args (engine only)."""
        self._rows[tid] = (tid,) + rest

    # -- mapping surface -----------------------------------------------
    def _mat(self, tid: TxnId) -> Any:
        row = self._rows[tid]
        if type(row) is tuple:
            from repro.sim.trace import TxnRecord

            row = TxnRecord(*row)
            self._rows[tid] = row
        return row

    def __getitem__(self, tid: TxnId) -> Any:
        return self._mat(tid)

    def __setitem__(self, tid: TxnId, record: Any) -> None:
        self._rows[tid] = record

    def get(self, tid: TxnId, default: Any = None) -> Any:
        if tid in self._rows:
            return self._mat(tid)
        return default

    def __contains__(self, tid: object) -> bool:
        return tid in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[TxnId]:
        return iter(self._rows)

    def keys(self):
        return self._rows.keys()

    def values(self) -> List[Any]:
        return [self._mat(tid) for tid in self._rows]

    def items(self) -> List[Tuple[TxnId, Any]]:
        return [(tid, self._mat(tid)) for tid in self._rows]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TxnRecordStore):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __reduce__(self):
        return (TxnRecordStore, (dict(self.items()),))

    def __repr__(self) -> str:
        return f"TxnRecordStore({len(self._rows)} txns)"
