"""Columnar backing stores for the engine's hot per-txn/per-object state.

The engine's inner loops touch three kinds of state on every step: the
transaction table (``sim.txns``), the per-object live accessor sets, and
per-transaction bookkeeping (schedule times).  All of them used to be
hash maps keyed by ids.  Ids in this codebase are already integers —
transaction ids are *dense* by construction (``itertools.count`` in
arrival order) and object ids are interned to dense indexes at
:meth:`~repro.sim.engine.Simulator.add_object` time — so every one of
those maps is really a column: an index-keyed array.

This module provides the columns; the dataclass views
(:class:`~repro.sim.transactions.Transaction`,
:class:`~repro.sim.objects.SharedObject`) stay the API boundary, and
:class:`TxnTable` keeps the full ``Mapping`` surface so schedulers,
invariant monitors, and the chaos layer read ``sim.txns`` exactly as
before.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro._types import Time, TxnId
from repro.sim.transactions import Transaction


class TxnTable:
    """List-backed ``Mapping[TxnId, Transaction]`` for dense txn ids.

    Transaction ids are handed out by ``itertools.count`` in generation
    order, so ``tid`` *is* the row index: lookups are one list probe, no
    hashing.  Insertion is append-only and must arrive in id order — the
    engine's ``_generate`` is the only writer.
    """

    __slots__ = ("_rows",)

    def __init__(self) -> None:
        self._rows: List[Transaction] = []

    def __getitem__(self, tid: TxnId) -> Transaction:
        if 0 <= tid < len(self._rows):
            return self._rows[tid]
        raise KeyError(tid)

    def __setitem__(self, tid: TxnId, txn: Transaction) -> None:
        if tid != len(self._rows):
            raise ValueError(
                f"TxnTable is append-only with dense ids: expected tid "
                f"{len(self._rows)}, got {tid}"
            )
        self._rows.append(txn)

    def get(self, tid: TxnId, default: Any = None) -> Optional[Transaction]:
        if 0 <= tid < len(self._rows):
            return self._rows[tid]
        return default

    def __contains__(self, tid: object) -> bool:
        return isinstance(tid, int) and 0 <= tid < len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TxnId]:
        return iter(range(len(self._rows)))

    def __bool__(self) -> bool:
        return bool(self._rows)

    def keys(self) -> Iterator[TxnId]:
        return iter(range(len(self._rows)))

    def values(self) -> List[Transaction]:
        return self._rows

    def items(self) -> Iterator[Tuple[TxnId, Transaction]]:
        return enumerate(self._rows)

    def __repr__(self) -> str:
        return f"TxnTable({len(self._rows)} txns)"


class TimeColumn:
    """Dense per-transaction time column with a ``dict.get``-style probe.

    Backs ``Simulator._schedule_times``: one slot per transaction,
    appended at generation, written at schedule time.  ``None`` marks
    "never scheduled" (the engine substitutes the generation time when
    recording the commit, as the mapping version did via ``.get``).
    """

    __slots__ = ("_col",)

    def __init__(self) -> None:
        self._col: List[Optional[Time]] = []

    def append_slot(self) -> None:
        self._col.append(None)

    def __setitem__(self, tid: TxnId, t: Time) -> None:
        self._col[tid] = t

    def get(self, tid: TxnId, default: Optional[Time] = None) -> Optional[Time]:
        if 0 <= tid < len(self._col) and self._col[tid] is not None:
            return self._col[tid]
        return default
