"""Mobile shared objects and their transit state.

An object is, at any time, either *at rest* at a node or *in transit*
towards a destination node (paper Section II).  While in transit we track
only ``(dest, arrive_time)``: in the synchronous model an object that left
for ``v`` arriving at time ``a`` behaves, for every scheduling purpose,
exactly like the paper's artificial node connected to ``v`` with weight
``a - t`` (Section III-B(a)).  The object's *time to reach* any node ``u``
is therefore ``(a - t) + speed * d(v, u)``.
"""

from __future__ import annotations

from dataclasses import field
from typing import Dict, List, Optional, Set

from repro._compat import slotted_dataclass
from repro._types import NodeId, ObjectId, Time, TxnId
from repro.errors import SchedulingError
from repro.network.graph import Graph


@slotted_dataclass()
class SharedObject:
    """State of one mobile object.

    ``speed_den`` is the number of time steps the object takes per unit of
    distance: 1 in the base model, 2 under the distributed scheduler's
    half-speed rule (Section V) which guarantees full-speed discovery
    probes can chase a moving object.
    """

    oid: ObjectId
    location: NodeId
    speed_den: int = 1
    holder_txn: Optional[TxnId] = None
    in_transit: bool = False
    dest: Optional[NodeId] = None
    arrive_time: Optional[Time] = None
    #: scheduled future *writers*, kept sorted by (exec_time, tid); the
    #: master object travels along this queue
    queue: List["QueueEntry"] = field(default_factory=list)
    #: scheduled readers awaiting a copy, sorted by (exec_time, tid)
    read_waiters: List["QueueEntry"] = field(default_factory=list)
    #: readers whose copy has been dispatched (in flight or delivered)
    reads_served: Set[TxnId] = field(default_factory=set)
    #: readers whose copy has arrived at their home node
    reads_delivered: Set[TxnId] = field(default_factory=set)
    #: per-reader serve epoch: bumped when an in-flight/delivered copy is
    #: invalidated by a newly scheduled earlier writer; stale arrivals are
    #: dropped by comparing epochs
    read_epoch: Dict[TxnId, int] = field(default_factory=dict)
    #: number of committed writers (the current version of the data)
    version: int = 0
    #: dense intern index assigned by the engine at registration; the
    #: engine's columnar state (live accessor sets) is keyed by it
    index: int = -1

    def travel_time(self, dist) -> Time:
        """Time steps needed to cover metric distance ``dist``."""
        return self.speed_den * dist

    # ------------------------------------------------------------------
    # transit state transitions (driven by the engine + transport layer)
    # ------------------------------------------------------------------
    def begin_leg(self, dst: NodeId, arrive_time: Time) -> None:
        """Enter transit toward ``dst``, arriving at ``arrive_time``."""
        self.in_transit = True
        self.dest = dst
        self.arrive_time = arrive_time

    def complete_leg(self) -> NodeId:
        """Settle at the current leg's destination; returns the new location."""
        assert self.in_transit and self.dest is not None
        self.location = self.dest
        self.in_transit = False
        self.dest = None
        self.arrive_time = None
        return self.location

    def time_to_reach(self, graph: Graph, node: NodeId, now: Time) -> Time:
        """Upper bound on when this object could be at ``node``.

        At rest: travel time from its location.  In transit: finish the
        current leg, then travel from the leg's destination — the
        artificial-node model of Section III-B(a).
        """
        if self.in_transit:
            assert self.dest is not None and self.arrive_time is not None
            return (self.arrive_time - now) + self.travel_time(graph.distance(self.dest, node))
        return self.travel_time(graph.distance(self.location, node))

    # ------------------------------------------------------------------
    # requester queue maintenance
    # ------------------------------------------------------------------
    def enqueue(self, tid: TxnId, exec_time: Time) -> None:
        """Insert a scheduled requester, keeping (exec_time, tid) order."""
        entry = QueueEntry(exec_time, tid)
        lo, hi = 0, len(self.queue)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.queue[mid].key() < entry.key():
                lo = mid + 1
            else:
                hi = mid
        self.queue.insert(lo, entry)

    def pop_head(self, tid: TxnId) -> None:
        """Remove the head entry, asserting it belongs to ``tid``."""
        if not self.queue or self.queue[0].tid != tid:
            head = self.queue[0].tid if self.queue else None
            raise SchedulingError(
                f"object {self.oid}: transaction {tid} acquired out of order (queue head {head})"
            )
        self.queue.pop(0)

    def remove_writer(self, tid: TxnId) -> None:
        """Drop a scheduled writer from the queue, wherever it sits.

        Recovery (:mod:`repro.faults`) un-commits a transaction that
        missed its execution time before re-inserting it with a new time;
        unlike :meth:`pop_head` this does not require ``tid`` to be the
        queue head and tolerates the entry being absent.
        """
        self.queue = [e for e in self.queue if e.tid != tid]

    def next_requester(self) -> Optional["QueueEntry"]:
        """The next scheduled writer, if any."""
        return self.queue[0] if self.queue else None

    # ------------------------------------------------------------------
    # read-waiter maintenance (read/write extension)
    # ------------------------------------------------------------------
    def enqueue_reader(self, tid: TxnId, exec_time: Time) -> None:
        """Register a scheduled reader awaiting a copy."""
        entry = QueueEntry(exec_time, tid)
        lo, hi = 0, len(self.read_waiters)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.read_waiters[mid].key() < entry.key():
                lo = mid + 1
            else:
                hi = mid
        self.read_waiters.insert(lo, entry)

    def reader_serviceable(self, entry: "QueueEntry") -> bool:
        """A reader may be served once every preceding writer committed —
        i.e. no scheduled writer with a smaller (exec_time, tid) key
        remains in the master queue."""
        return not self.queue or self.queue[0].key() > entry.key()

    def finish_read(self, tid: TxnId) -> None:
        """Clear bookkeeping when a reader commits."""
        self.read_waiters = [e for e in self.read_waiters if e.tid != tid]
        self.reads_served.discard(tid)
        self.reads_delivered.discard(tid)
        self.read_epoch.pop(tid, None)

    def invalidate_reads_after(self, writer_entry: "QueueEntry") -> None:
        """A freshly scheduled writer invalidates copies of readers that
        execute after it: those readers must re-receive the writer's
        version.  Feasible by construction — the writer's color respected
        every live reader (write-read conflict edge), so the commit-time
        re-dispatch still arrives before the reader executes."""
        for entry in self.read_waiters:
            if entry.key() > writer_entry.key() and entry.tid in self.reads_served:
                self.reads_served.discard(entry.tid)
                self.reads_delivered.discard(entry.tid)
                self.read_epoch[entry.tid] = self.read_epoch.get(entry.tid, 0) + 1


@slotted_dataclass(frozen=True)
class QueueEntry:
    """One scheduled requester of an object."""

    exec_time: Time
    tid: TxnId

    def key(self):
        """Sort key: (execution time, transaction id)."""
        return (self.exec_time, self.tid)
