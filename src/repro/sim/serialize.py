"""Trace (de)serialization: archive runs, re-certify them later.

A serialized trace is self-contained for certification *given the graph*:
``certify_trace(graph, load_trace(path))`` re-checks an archived run.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.sim.trace import (
    CopyLeg,
    ExecutionTrace,
    ExpiredRecord,
    FaultRecord,
    MembershipRecord,
    ObjectLeg,
    PartitionRecord,
    RescheduleRecord,
    ShedRecord,
    TxnRecord,
    Violation,
)


def trace_to_dict(trace: ExecutionTrace) -> Dict[str, Any]:
    """Plain-JSON representation of a trace.

    The ``faults`` / ``reschedules`` keys are emitted only when non-empty:
    fault-free runs serialize exactly as they did before :mod:`repro.faults`
    existed, keeping archived and golden traces byte-identical.
    """
    out = {
        "graph_name": trace.graph_name,
        "initial_placement": {str(k): v for k, v in trace.initial_placement.items()},
        "object_speed_den": trace.object_speed_den,
        "end_time": trace.end_time,
        "messages_sent": trace.messages_sent,
        "message_hops": trace.message_hops,
        "txns": [
            {
                "tid": r.tid,
                "home": r.home,
                "objects": list(r.objects),
                "gen_time": r.gen_time,
                "schedule_time": r.schedule_time,
                "exec_time": r.exec_time,
                "reads": list(r.reads),
            }
            for r in trace.txns.values()
        ],
        "legs": [
            [l.oid, l.depart_time, l.src, l.dst, l.arrive_time] for l in trace.legs
        ],
        "copy_legs": [
            [c.oid, c.reader_tid, c.depart_time, c.src, c.dst, c.arrive_time, c.version]
            for c in trace.copy_legs
        ],
        "violations": [[v.tid, v.time, list(v.missing)] for v in trace.violations],
        "meta": dict(trace.meta),
    }
    if trace.faults:
        out["faults"] = [
            [f.kind, f.time, f.node, f.oid, f.extra] for f in trace.faults
        ]
    if trace.reschedules:
        out["reschedules"] = [
            [r.tid, r.time, r.old_exec, r.new_exec, r.backoff, list(r.missing)]
            for r in trace.reschedules
        ]
    if trace.partitions:
        out["partitions"] = [
            [[list(e) for e in p.cut], p.start, p.end] for p in trace.partitions
        ]
    if trace.membership:
        out["membership"] = [
            [m.kind, m.node, m.time, [list(e) for e in m.edges]]
            for m in trace.membership
        ]
    if trace.sheds:
        out["sheds"] = [
            [s.time, s.home, s.gen_time, s.reason, s.priority] for s in trace.sheds
        ]
    if trace.expiries:
        out["expiries"] = [
            [e.tid, e.time, e.deadline, e.gen_time] for e in trace.expiries
        ]
    return out


def trace_from_dict(data: Dict[str, Any]) -> ExecutionTrace:
    """Inverse of :func:`trace_to_dict`."""
    trace = ExecutionTrace(
        graph_name=data["graph_name"],
        initial_placement={int(k): v for k, v in data["initial_placement"].items()},
        object_speed_den=data.get("object_speed_den", 1),
    )
    trace.end_time = data.get("end_time", 0)
    trace.messages_sent = data.get("messages_sent", 0)
    trace.message_hops = data.get("message_hops", 0.0)
    for r in data.get("txns", []):
        trace.txns[r["tid"]] = TxnRecord(
            tid=r["tid"],
            home=r["home"],
            objects=tuple(r["objects"]),
            gen_time=r["gen_time"],
            schedule_time=r["schedule_time"],
            exec_time=r["exec_time"],
            reads=tuple(r.get("reads", ())),
        )
    for l in data.get("legs", []):
        trace.legs.append(ObjectLeg(*l))
    for c in data.get("copy_legs", []):
        trace.copy_legs.append(CopyLeg(*c))
    for v in data.get("violations", []):
        trace.violations.append(Violation(v[0], v[1], tuple(v[2])))
    for f in data.get("faults", []):
        trace.faults.append(FaultRecord(f[0], f[1], f[2], f[3], f[4]))
    for r in data.get("reschedules", []):
        trace.reschedules.append(
            RescheduleRecord(r[0], r[1], r[2], r[3], r[4], tuple(r[5]))
        )
    for p in data.get("partitions", []):
        trace.partitions.append(
            PartitionRecord(tuple(tuple(e) for e in p[0]), p[1], p[2])
        )
    for m in data.get("membership", []):
        trace.membership.append(
            MembershipRecord(m[0], m[1], m[2], tuple(tuple(e) for e in m[3]))
        )
    for s in data.get("sheds", []):
        trace.sheds.append(ShedRecord(s[0], s[1], s[2], s[3], s[4]))
    for e in data.get("expiries", []):
        trace.expiries.append(ExpiredRecord(e[0], e[1], e[2], e[3]))
    trace.meta.update(data.get("meta", {}))
    return trace


def save_trace(trace: ExecutionTrace, path: str) -> None:
    """Write a trace to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(trace_to_dict(trace), fh)


def load_trace(path: str) -> ExecutionTrace:
    """Read a trace previously written by :func:`save_trace`."""
    with open(path) as fh:
        return trace_from_dict(json.load(fh))
