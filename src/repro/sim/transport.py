"""Pluggable transport models: how master objects move through the graph.

The paper's base model moves an object in one leg along a shortest path
(:class:`DirectTransport`); its Section VI congestion questions need
finer models — edge-by-edge motion (:class:`HopTransport`), bounded
per-node egress (:class:`EgressCapacity`), bounded per-edge concurrency
(:class:`LinkCapacity`).  These used to be ``if``-branches inside the
engine's departure routine; they are now strategy objects selected via
``SimConfig.transport`` and composed as decorators, so capacity-curve
studies, sharded topologies, or asynchronous backends can swap the
motion model without touching the engine.

A transport answers one question: *given that this object should head
for ``target`` now, what leg does it take?*  :meth:`Transport.plan_leg`
returns ``(dst, arrive_time)`` for the leg departing at ``t``, or
``None`` when the move is blocked — in which case the transport has
already queued a retry on the engine's event spine
(:class:`~repro.sim.events.EventQueue`).  The engine keeps everything
else: commit logic, departure policy (eager/lazy), trace legs, and the
``on_depart``/``on_arrive`` probe events.

Selection and legacy mapping (``repro.sim.config.SimConfig``)::

    SimConfig(transport="hop")                  # edge-by-edge motion
    SimConfig(transport="direct")               # whole-leg motion (default)
    SimConfig(transport=MyTransport())          # custom strategy
    SimConfig(hop_motion=True)                  # legacy spelling of "hop"
    SimConfig(link_capacity=2, transport="hop") # wraps in LinkCapacity
    SimConfig(node_egress_capacity=1)           # wraps in EgressCapacity

:func:`build_transport` applies the capacity decorators outermost-first
(egress, then link, then the base), reproducing the legacy engine's
check order: an egress slot is consumed even when the link then blocks.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, Time
from repro.errors import WorkloadError
from repro.sim.objects import SharedObject

#: One planned leg: ``(dst, arrive_time)``.
Leg = Tuple[NodeId, Time]


class Transport:
    """Base strategy: subclass and implement :meth:`plan_leg`.

    ``kind`` identifies the motion granularity ("direct", "hop", or
    "custom"); ``SimConfig`` uses it to validate knob combinations (per
    -link capacity needs per-edge legs, i.e. a "hop" transport).
    """

    kind = "custom"

    def bind(self, sim) -> None:
        """Attach to a simulator; called once from ``Simulator.__init__``."""
        self.sim = sim

    def begin_step(self, t: Time) -> None:
        """Reset any per-step state (e.g. egress counters)."""

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        """The leg ``obj`` takes from its location toward ``target`` at ``t``.

        Return ``(dst, arrive_time)``, or ``None`` when blocked — after
        scheduling a retry via ``self.sim.events.push_depart``.
        """
        raise NotImplementedError


class DirectTransport(Transport):
    """Whole shortest-path legs at once (the paper's base model)."""

    kind = "direct"

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        travel = obj.travel_time(self.sim.graph.distance(obj.location, target))
        return target, t + travel


class HopTransport(Transport):
    """Edge-by-edge motion: one trace leg per hop, route re-evaluated at
    every intermediate node.

    Motion physics are identical to :class:`DirectTransport` in the
    uncongested model, but schedulers observe finer-grained positions
    (the in-transit artificial node is the next hop, not the final
    target), so committed times may differ — usually slightly better.
    Required for per-link capacity.
    """

    kind = "hop"

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        graph = self.sim.graph
        hop = graph.shortest_path(obj.location, target)[1]
        return hop, t + obj.travel_time(graph.neighbors(obj.location)[hop])


class TransportDecorator(Transport):
    """Wrap another transport; delegates everything by default."""

    def __init__(self, inner: Transport) -> None:
        self.inner = inner

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    def bind(self, sim) -> None:
        super().bind(sim)
        self.inner.bind(sim)

    def begin_step(self, t: Time) -> None:
        self.inner.begin_step(t)

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        return self.inner.plan_leg(obj, target, t)


class EgressCapacity(TransportDecorator):
    """At most ``capacity`` objects may *depart* any node per time step
    (the paper's Section VI congestion question; bench E13).

    Excess departures retry next step.  The slot is consumed before the
    inner transport plans the leg, so an inner-layer block (e.g. a full
    link) still uses up egress — matching the legacy engine.
    """

    def __init__(self, inner: Transport, capacity: int) -> None:
        if capacity < 1:
            raise WorkloadError("node_egress_capacity must be >= 1")
        super().__init__(inner)
        self.capacity = capacity
        self._used: Dict[NodeId, int] = {}

    def begin_step(self, t: Time) -> None:
        self._used = {}
        self.inner.begin_step(t)

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        used = self._used.get(obj.location, 0)
        if used >= self.capacity:
            # Congested: retry next step.
            self.sim.events.push_depart(t + 1, obj.oid)
            return None
        self._used[obj.location] = used + 1
        return self.inner.plan_leg(obj, target, t)


class LinkCapacity(TransportDecorator):
    """At most ``capacity`` objects may traverse any single edge
    concurrently, both directions combined (Section VI's bounded link
    capacity; bench E20).

    Requires a hop-granularity inner transport (each leg must be one
    edge).  A blocked traversal waits at the upstream node and retries
    at the earliest in-flight release.
    """

    def __init__(self, inner: Transport, capacity: int) -> None:
        if capacity < 1:
            raise WorkloadError("link_capacity must be >= 1")
        super().__init__(inner)
        self.capacity = capacity
        #: per-edge traversal end times, a min-heap per undirected edge
        self._busy: Dict[Tuple[NodeId, NodeId], List[Time]] = {}

    def bind(self, sim) -> None:
        super().bind(sim)
        self._busy = {}

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        leg = self.inner.plan_leg(obj, target, t)
        if leg is None:
            return None
        dst, arrive = leg
        u, v = obj.location, dst
        key = (u, v) if u < v else (v, u)
        busy = self._busy.setdefault(key, [])
        while busy and busy[0] <= t:
            heapq.heappop(busy)
        if len(busy) >= self.capacity:
            # Link full: retry when the earliest traversal releases.
            self.sim.events.push_depart(busy[0], obj.oid)
            return None
        heapq.heappush(busy, arrive)
        return leg


class FaultyTransport(TransportDecorator):
    """Inject the seeded faults of a :class:`repro.faults.FaultPlan` into
    master-object legs (the transport half of the fault layer; the engine
    injects the crash-window half into arrivals and deliveries).

    Outermost decorator.  Per planned departure, in order:

    1. **crashed source** — nothing departs from a down node; the
       departure retries at the node's restart step (no fault record:
       the window itself is recorded by the engine's crash event);
    2. **partition** — when an active cut (:class:`repro.faults.
       PartitionWindow`) separates the source from the target, the
       departure is blocked until the earliest heal time
       (``"partition-block"`` record); when an intact detour exists the
       leg is re-planned against the cut-aware shortest path
       (``"reroute"`` record, ``extra`` = added travel steps).  Rerouted
       legs bypass the inner capacity decorators — the detour models the
       network forwarding around the cut, not a scheduled departure;
    3. inner transport plans the leg (capacity slots are consumed even
       when the leg is then dropped — a lost frame still occupied the
       port);
    4. **drop** — with ``drop_prob``, the leg is silently lost: the
       object stays at rest at its source and *no retry is queued*.
       Nobody learns until a transaction misses its committed execution
       time; recovery then re-requests the object from this node, which
       the injector remembers as the last confirmed holder;
    5. **delay** — with ``delay_prob``, arrival slips by 1..``max_delay``
       extra steps.

    Drops, delays, blocks, and reroutes are recorded on the trace
    (:class:`~repro.sim.trace.FaultRecord`) via ``Simulator.record_fault``
    so the certifier can account for the extra slack and analysis can
    report degradation.
    """

    def __init__(self, inner: Transport) -> None:
        super().__init__(inner)
        self.injector = None

    def bind(self, sim) -> None:
        super().bind(sim)
        self.injector = sim.faults

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        inj = self.injector
        if inj is None:
            return self.inner.plan_leg(obj, target, t)
        src = obj.location
        restart = inj.restart_time(src, t)
        if restart is not None:
            self.sim.events.push_depart(restart, obj.oid)
            return None
        planned = self._plan_partition_aware(obj, target, t)
        if planned is None:
            return None
        leg, reroute_slack = planned
        if inj.should_drop(obj.oid, t):
            inj.mark_lost(obj.oid, src)
            self.sim.record_fault("drop", t, node=src, oid=obj.oid)
            return None
        inj.clear_lost(obj.oid)
        if reroute_slack is not None:
            # Recorded only now that the leg survived the drop check: a
            # dropped leg must leave no slack record for the certifier.
            self.sim.record_fault(
                "reroute", t, node=src, oid=obj.oid, extra=reroute_slack
            )
        dst, arrive = leg
        extra = inj.leg_delay(obj.oid, t)
        if extra:
            self.sim.record_fault("delay", t, oid=obj.oid, extra=extra)
            arrive += extra
        return dst, arrive

    def _plan_partition_aware(
        self, obj: SharedObject, target: NodeId, t: Time
    ) -> Optional[Tuple[Leg, Optional[Time]]]:
        """Plan the leg, respecting any partition cut active at ``t``.

        Separated source/target blocks until the earliest heal (records
        ``"partition-block"``, returns ``None``).  When a detour exists
        the leg is re-planned on the cut-aware shortest path: hop
        transports take the cut-aware next hop (following the *plain*
        next hop here could oscillate between two nodes until the heal),
        direct-style transports take the whole detour.  An unaffected
        leg falls through to the inner transport so capacity decorators
        keep applying.

        Returns ``(leg, reroute_slack)`` — ``reroute_slack`` is the
        extra travel beyond unpartitioned physics (``None`` when not
        rerouted); the caller records it only if the leg survives the
        drop check.
        """
        inj = self.injector
        graph = self.sim.graph
        src = obj.location
        # The routing cut = active partition cut + every departed
        # member's incident edges (elastic membership): object legs must
        # avoid both, while control messages stay partition-only.
        cut = inj.routing_cut(t)
        if cut and src != target:
            d_cut = graph.distance_avoiding(src, target, cut)
            if d_cut == float("inf"):
                heal = inj.heal_time(t)
                if heal is None:
                    # Membership-only separation: no heal is coming.
                    # Validated plans keep the surviving members
                    # connected, so this only happens to an object
                    # transiently parked on a joined node whose anchors
                    # departed — recover it to the nearest member
                    # instead of blocking forever.
                    self.sim.relocate_object(obj, t)
                    return None
                self.sim.events.push_depart(heal, obj.oid)
                self.sim.record_fault(
                    "partition-block", t, node=src, oid=obj.oid, extra=heal - t
                )
                return None
            if self.kind == "hop":
                path = graph.shortest_path_avoiding(src, target, cut)
                assert path is not None  # d_cut is finite
                hop = path[1]
                if hop != graph.shortest_path(src, target)[1]:
                    w = graph.neighbors(src)[hop]
                    # The detour edge may be longer than the plain
                    # shortest distance to that neighbour; the slack is
                    # exactly that difference, for the certifier.
                    detour = obj.travel_time(w) - obj.travel_time(
                        graph.distance(src, hop)
                    )
                    return (hop, t + obj.travel_time(w)), detour
            else:
                d_base = graph.distance(src, target)
                if d_cut > d_base:
                    detour = obj.travel_time(d_cut) - obj.travel_time(d_base)
                    return (target, t + obj.travel_time(d_cut)), detour
        leg = self.inner.plan_leg(obj, target, t)
        return None if leg is None else (leg, None)


class LatencyModel:
    """A seeded per-leg extra-delay distribution (long-tail realism).

    Built by :func:`parse_latency_dist` from a spec string:

    * ``"lognormal:MU:SIGMA[:CAP]"`` — ``int(lognormvariate(MU, SIGMA))``
      extra steps, capped at ``CAP`` (default 16) so a single draw cannot
      stall a run;
    * ``"empirical:V1,V2,..."`` — a uniform draw from the listed integer
      delays (put 0 in the list multiple times to model a mostly-fast
      network with occasional spikes).

    Draws are keyed by ``(seed, oid, depart_time)``, not by call order,
    so traces are byte-identical for a fixed seed regardless of worker
    count or departure interleaving.
    """

    __slots__ = ("spec", "kind", "mu", "sigma", "cap", "values")

    def __init__(self, spec, kind, mu=0.0, sigma=0.0, cap=16, values=()):
        self.spec = spec
        self.kind = kind
        self.mu = mu
        self.sigma = sigma
        self.cap = cap
        self.values = tuple(values)

    def draw(self, seed: int, oid, t: Time) -> Time:
        rng = random.Random(f"{seed}|net|{oid}|{t}")
        if self.kind == "lognormal":
            return min(self.cap, int(rng.lognormvariate(self.mu, self.sigma)))
        return rng.choice(self.values)


def parse_latency_dist(spec: str) -> LatencyModel:
    """Parse a latency-distribution spec string (see :class:`LatencyModel`).

    Raises :class:`~repro.errors.WorkloadError` on a malformed spec so
    ``SimConfig.validate`` fails loudly at construction.
    """
    parts = str(spec).split(":")
    try:
        if parts[0] == "lognormal" and len(parts) in (3, 4):
            mu = float(parts[1])
            sigma = float(parts[2])
            cap = int(parts[3]) if len(parts) == 4 else 16
            if sigma < 0:
                raise ValueError(f"sigma must be >= 0, got {sigma}")
            if cap < 0:
                raise ValueError(f"cap must be >= 0, got {cap}")
            return LatencyModel(spec, "lognormal", mu=mu, sigma=sigma, cap=cap)
        if parts[0] == "empirical" and len(parts) == 2:
            values = tuple(int(v) for v in parts[1].split(","))
            if not values:
                raise ValueError("empirical distribution needs >= 1 value")
            if any(v < 0 for v in values):
                raise ValueError("empirical delays must be >= 0")
            return LatencyModel(spec, "empirical", values=values)
    except WorkloadError:
        raise
    except ValueError as exc:
        raise WorkloadError(f"bad latency_dist {spec!r}: {exc}") from None
    raise WorkloadError(
        f"bad latency_dist {spec!r}: expected 'lognormal:MU:SIGMA[:CAP]' "
        "or 'empirical:V1,V2,...'"
    )


class LatencyDistTransport(TransportDecorator):
    """Add seeded per-leg delivery jitter drawn from a
    :class:`LatencyModel` (the ROADMAP real-network stretch goal).

    Outermost decorator — outside even :class:`FaultyTransport` — so a
    leg the fault layer dropped or blocked (inner ``None``) draws no
    jitter and records nothing.  Every surviving leg's extra steps are
    recorded as a ``"net-delay"`` fault so the certifier can reconcile
    the stretched arrival against exact physics; that is why
    ``SimConfig`` requires a fault plan (possibly empty) alongside
    ``latency_dist`` — late objects are absorbed by the ordinary
    recovery machinery.
    """

    def __init__(self, inner: Transport, model: LatencyModel, seed: int = 0) -> None:
        super().__init__(inner)
        self.model = model
        self.seed = seed

    def plan_leg(self, obj: SharedObject, target: NodeId, t: Time) -> Optional[Leg]:
        leg = self.inner.plan_leg(obj, target, t)
        if leg is None:
            return None
        extra = self.model.draw(self.seed, obj.oid, t)
        if extra:
            self.sim.record_fault("net-delay", t, oid=obj.oid, extra=extra)
            return leg[0], leg[1] + extra
        return leg


def build_transport(config) -> Transport:
    """Materialize ``config.transport`` (+ capacity knobs) as one strategy.

    ``config.transport`` may be "direct", "hop", ``None`` (legacy
    ``hop_motion`` flag decides), or a :class:`Transport` instance; the
    ``link_capacity`` / ``node_egress_capacity`` fields wrap the base in
    the corresponding decorators, and an active ``config.faults`` plan
    wraps everything in :class:`FaultyTransport`.
    """
    base = config.transport
    if base is None or isinstance(base, str):
        base = HopTransport() if config.transport_kind == "hop" else DirectTransport()
    if config.link_capacity is not None:
        base = LinkCapacity(base, config.link_capacity)
    if config.node_egress_capacity is not None:
        base = EgressCapacity(base, config.node_egress_capacity)
    if getattr(config, "faults", None) is not None:
        base = FaultyTransport(base)
    if getattr(config, "latency_dist", None) is not None:
        base = LatencyDistTransport(
            base,
            parse_latency_dist(config.latency_dist),
            getattr(config, "latency_seed", 0),
        )
    return base
