"""Independent certification of execution traces.

Given only the raw trace (initial placement, object legs, transaction
records) and the graph, :func:`certify_trace` re-derives whether the run was
physically possible under the paper's model:

1. every object leg takes exactly ``speed_den * d_G(src, dst)`` steps;
2. legs of each object are contiguous in space and non-overlapping in time;
3. every transaction had *all* of its objects at its home node at its
   execution step;
4. per object, transactions acquired it in non-decreasing execution-time
   order, and never before the previous acquirer committed;
5. (optional) at most one live transaction per node at any time.

This is the library's correctness oracle: tests and every benchmark run it,
so a scheduler cannot report an infeasible makespan.

The checks are transport-agnostic: each trace leg is certified on its own
(length, contiguity, non-overlap), so a hop-granularity trace — many
single-edge legs per journey, as produced by
:class:`~repro.sim.transport.HopTransport` — certifies exactly like a
direct-transport trace of whole shortest-path legs.

Fault-injected traces (:mod:`repro.faults`) certify too: a trace carrying
fault records may have *slower* legs than physics dictates, but every
step of per-object slack must be accounted for by a matching ``delay`` /
``crash-delay`` / ``reroute`` fault record (legs may never be *faster*),
every recovery reschedule must be consistent with the final execution
times, and every partition-dependent record (``reroute``,
``partition-block``, ``partition-msg``) must fall inside a
:class:`~repro.sim.trace.PartitionRecord` window *or* after an elastic
membership leave (departed edges cut the routing graph exactly like a
partition that never heals).  A fault-free trace gets the
exact-equality checks, unchanged.

Traces with elastic membership (:class:`~repro.sim.trace.
MembershipRecord`) are certified against the *final* graph: join records
are replayed onto a scratch copy via :meth:`~repro.network.graph.Graph.
add_node`.  The no-shortcut admission condition guarantees pre-existing
distances never change, so one rebuilt graph certifies every leg of the
run — including legs that predate the joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.errors import InfeasibleScheduleError
from repro.network.graph import Graph
from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class CertificationIssue:
    """One problem found by the certifier."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _object_position_intervals(
    start: NodeId, legs
) -> List[Tuple[Time, Optional[Time], NodeId]]:
    """Rest intervals ``(from_t, until_t_exclusive_or_None, node)``."""
    intervals: List[Tuple[Time, Optional[Time], NodeId]] = []
    pos = start
    t: Time = 0
    for leg in legs:
        intervals.append((t, leg.depart_time, pos))
        pos = leg.dst
        t = leg.arrive_time
    intervals.append((t, None, pos))
    return intervals


def _at_node(intervals, t: Time, node: NodeId) -> bool:
    """Was the object at rest at ``node`` at time ``t``?

    An object departing at time ``t`` was still available at its source at
    ``t`` (the model forwards *after* executing), so interval ends are
    inclusive.
    """
    for lo, hi, pos in intervals:
        if lo <= t and (hi is None or t <= hi):
            if pos == node:
                return True
    return False


def certify_trace(
    graph: Graph,
    trace: ExecutionTrace,
    *,
    one_txn_per_node: bool = False,
    raise_on_failure: bool = True,
) -> List[CertificationIssue]:
    """Certify a trace; returns the list of issues (empty = feasible)."""
    issues: List[CertificationIssue] = []
    speed = trace.object_speed_den

    # Elastic membership: replay join records onto a scratch graph so
    # legs touching joined nodes certify with real distances.  The
    # caller's graph is never mutated; no-shortcut admission means the
    # rebuilt graph is distance-correct for the whole run.
    joins = [m for m in trace.membership if m.kind == "join"]
    if joins:
        if max(m.node for m in joins) < graph.num_nodes:
            # The graph already contains the joined nodes — the caller
            # passed the engine-mutated graph of a live run.  Verify the
            # anchor edges match the records instead of rebuilding.
            for m in joins:
                for a, _w in m.edges:
                    if not graph.has_edge(m.node, a):
                        issues.append(
                            CertificationIssue(
                                "membership",
                                f"join record for node {m.node} names anchor "
                                f"{a} but the graph has no such edge",
                            )
                        )
        else:
            rebuilt = graph.copy(oracle=False)
            for m in sorted(joins, key=lambda m: m.node):
                new = rebuilt.add_node(tuple(m.edges))
                if new != m.node:
                    issues.append(
                        CertificationIssue(
                            "membership",
                            f"join record names node {m.node} but the next "
                            f"dense id is {new}",
                        )
                    )
            graph = rebuilt
    leave_times = sorted(
        m.time for m in trace.membership if m.kind == "leave"
    )

    # Fault accounting (repro.faults): per-object slack budget from
    # delay / crash-delay / reroute records.  Empty for fault-free
    # traces, which then get the exact-equality leg check below.
    has_faults = (
        bool(trace.faults) or bool(trace.partitions) or bool(trace.membership)
    )
    fault_slack: Dict[ObjectId, Time] = {}
    for f in trace.faults:
        if f.kind in ("delay", "crash-delay", "reroute", "net-delay") and f.oid is not None:
            fault_slack[f.oid] = fault_slack.get(f.oid, 0) + f.extra

    legs_by_obj: Dict[ObjectId, list] = {oid: [] for oid in trace.initial_placement}
    for leg in trace.legs:
        legs_by_obj.setdefault(leg.oid, []).append(leg)

    # 1 & 2: leg physics and contiguity.
    positions: Dict[ObjectId, List[Tuple[Time, Optional[Time], NodeId]]] = {}
    for oid, legs in legs_by_obj.items():
        legs.sort(key=lambda l: l.depart_time)
        start = trace.initial_placement.get(oid)
        if start is None:
            # Object created mid-run by a transaction; its creation node is
            # the creator's home — find it from the first leg or records.
            if legs:
                start = legs[0].src
            else:
                creators = [r for r in trace.txns.values()]
                start = creators[0].home if creators else 0
        pos, t = start, 0
        slack_used: Time = 0
        for leg in legs:
            expected = speed * graph.distance(leg.src, leg.dst)
            actual = leg.arrive_time - leg.depart_time
            if has_faults:
                # Injected delays make legs slower, never faster; the
                # per-object total is reconciled against the fault
                # records after the loop.
                if actual < expected:
                    issues.append(
                        CertificationIssue(
                            "leg-speed",
                            f"object {oid} leg {leg.src}->{leg.dst} took "
                            f"{actual}, faster than physics ({expected})",
                        )
                    )
                else:
                    slack_used += actual - expected
            elif actual != expected:
                issues.append(
                    CertificationIssue(
                        "leg-speed",
                        f"object {oid} leg {leg.src}->{leg.dst} took "
                        f"{actual}, expected {expected}",
                    )
                )
            if leg.src != pos:
                issues.append(
                    CertificationIssue(
                        "leg-gap",
                        f"object {oid} departs from {leg.src} but was at {pos}",
                    )
                )
            if leg.depart_time < t:
                issues.append(
                    CertificationIssue(
                        "leg-overlap",
                        f"object {oid} departs at {leg.depart_time} before arriving at {t}",
                    )
                )
            pos, t = leg.dst, leg.arrive_time
        if has_faults and slack_used != fault_slack.get(oid, 0):
            issues.append(
                CertificationIssue(
                    "fault-slack",
                    f"object {oid} legs carry {slack_used} steps of slack but "
                    f"fault records account for {fault_slack.get(oid, 0)}",
                )
            )
        positions[oid] = _object_position_intervals(start, legs)

    # 3: object presence at execution.
    for rec in trace.txns.values():
        for oid in rec.objects:
            ivals = positions.get(oid)
            if ivals is None:
                issues.append(
                    CertificationIssue(
                        "unknown-object", f"txn {rec.tid} uses untracked object {oid}"
                    )
                )
                continue
            if not _at_node(ivals, rec.exec_time, rec.home):
                issues.append(
                    CertificationIssue(
                        "absent-object",
                        f"txn {rec.tid} executed at t={rec.exec_time} on node "
                        f"{rec.home} without object {oid}",
                    )
                )

    # 4: per-object serialization order.
    for oid, ivals in positions.items():
        users = sorted(
            (r for r in trace.txns.values() if oid in r.objects),
            key=lambda r: (r.exec_time, r.tid),
        )
        prev = None
        for rec in users:
            if prev is not None:
                gap = speed * graph.distance(prev.home, rec.home)
                if rec.exec_time < prev.exec_time:
                    issues.append(
                        CertificationIssue(
                            "order", f"object {oid}: {rec.tid} before {prev.tid}"
                        )
                    )
                if rec.home != prev.home and rec.exec_time - prev.exec_time < gap:
                    issues.append(
                        CertificationIssue(
                            "too-fast",
                            f"object {oid}: {prev.tid}@{prev.home}(t={prev.exec_time})"
                            f" -> {rec.tid}@{rec.home}(t={rec.exec_time}) needs {gap}"
                            " steps of travel",
                        )
                    )
            prev = rec

    # 4b: read/write extension — copies cut correctly and delivered in time.
    copy_by_reader: Dict[Tuple[ObjectId, TxnId], list] = {}
    for cl in trace.copy_legs:
        copy_by_reader.setdefault((cl.oid, cl.reader_tid), []).append(cl)
    writers_by_obj: Dict[ObjectId, list] = {}
    for rec in trace.txns.values():
        for oid in rec.objects:
            writers_by_obj.setdefault(oid, []).append(rec)
    for cl in trace.copy_legs:
        expected = speed * graph.distance(cl.src, cl.dst)
        if cl.arrive_time - cl.depart_time != expected:
            issues.append(
                CertificationIssue(
                    "copy-speed",
                    f"copy of {cl.oid} for reader {cl.reader_tid} took "
                    f"{cl.arrive_time - cl.depart_time}, expected {expected}",
                )
            )
        ivals = positions.get(cl.oid)
        if ivals is not None and not _at_node(ivals, cl.depart_time, cl.src):
            issues.append(
                CertificationIssue(
                    "copy-origin",
                    f"copy of {cl.oid} cut at node {cl.src} at t={cl.depart_time}"
                    " where the master was not at rest",
                )
            )
    # Each reader must have received at least one *current* copy: right
    # destination, in time, carrying exactly the version written by its
    # preceding writers, cut no earlier than their last commit.  (Earlier
    # copies may exist — they were invalidated by later-scheduled writers
    # and only need to satisfy the physics checks above.)
    for rec in trace.txns.values():
        for oid in rec.reads:
            preceding = [
                w for w in writers_by_obj.get(oid, [])
                if (w.exec_time, w.tid) < (rec.exec_time, rec.tid)
            ]
            expect_version = len(preceding)
            last_commit = max((w.exec_time for w in preceding), default=0)
            legs = copy_by_reader.get((oid, rec.tid), [])
            ok = any(
                cl.dst == rec.home
                and cl.arrive_time <= rec.exec_time
                and cl.version == expect_version
                and cl.depart_time >= last_commit
                for cl in legs
            )
            if not ok:
                issues.append(
                    CertificationIssue(
                        "absent-copy",
                        f"reader txn {rec.tid} executed at t={rec.exec_time} without"
                        f" a current copy (version {expect_version}) of object {oid}",
                    )
                )

    # 5: one live transaction per node.
    if one_txn_per_node:
        by_node: Dict[NodeId, List] = {}
        for rec in trace.txns.values():
            by_node.setdefault(rec.home, []).append(rec)
        for node, recs in by_node.items():
            recs.sort(key=lambda r: r.gen_time)
            for a, b in zip(recs, recs[1:]):
                if b.gen_time <= a.exec_time and b.tid != a.tid:
                    # A node may generate its next txn at the commit step's
                    # successor; simultaneous liveness is the violation.
                    if b.gen_time < a.exec_time:
                        issues.append(
                            CertificationIssue(
                                "node-overlap",
                                f"node {node}: txns {a.tid} and {b.tid} live together",
                            )
                        )

    # 6: recovery reschedules (repro.faults) must be consistent with the
    # final execution times: a transaction cannot have executed before the
    # reschedule that revived it, and a recommitted time cannot precede
    # the recovery step that chose it.
    last_resched: Dict[TxnId, Time] = {}
    for r in trace.reschedules:
        if r.new_exec != -1 and r.new_exec < r.time:
            issues.append(
                CertificationIssue(
                    "reschedule",
                    f"txn {r.tid} rescheduled at t={r.time} to earlier time {r.new_exec}",
                )
            )
        last_resched[r.tid] = max(last_resched.get(r.tid, 0), r.time)
    for tid, t_resched in last_resched.items():
        rec = trace.txns.get(tid)
        if rec is not None and rec.exec_time < t_resched:
            issues.append(
                CertificationIssue(
                    "reschedule",
                    f"txn {tid} executed at t={rec.exec_time} before its last "
                    f"reschedule at t={t_resched}",
                )
            )

    # 7: partition reconciliation (repro.faults).  Every window must be
    # well-formed over real edges of G, and every partition-dependent
    # fault record must fall inside some recorded window — a reroute or
    # block with no covering partition means the transport invented a
    # detour the injected plan never asked for.
    for p in trace.partitions:
        if p.start >= p.end:
            issues.append(
                CertificationIssue(
                    "partition",
                    f"partition window [{p.start}, {p.end}) is empty or reversed",
                )
            )
        for u, v in p.cut:
            if not graph.has_edge(u, v):
                issues.append(
                    CertificationIssue(
                        "partition",
                        f"partition cut names non-edge ({u}, {v}) of {graph.name!r}",
                    )
                )
    for f in trace.faults:
        if f.kind in ("reroute", "partition-block", "partition-msg"):
            covered = any(p.covers(f.time) for p in trace.partitions)
            # A membership leave severs its incident edges permanently:
            # detours after the first departure are legitimate even with
            # no partition window (the cut never heals).
            if not covered and not (leave_times and leave_times[0] <= f.time):
                issues.append(
                    CertificationIssue(
                        "partition",
                        f"{f.kind} record at t={f.time} has no covering "
                        "partition window or prior membership leave",
                    )
                )

    # 8: service-mode cancellations (repro.service).  A deadline-expired
    # transaction was cancelled before committing: its tid must never
    # carry a TxnRecord, it may expire only once, and the cancellation
    # cannot predate the deadline it enforces.  Object conservation
    # through the cancellation is implied by checks 1-4: the released
    # queue slots leave no trace legs, so any physics inconsistency the
    # un-commit introduced would already have surfaced above.
    seen_expired = set()
    for e in trace.expiries:
        if e.tid in trace.txns:
            issues.append(
                CertificationIssue(
                    "expired-commit",
                    f"txn {e.tid} both committed (t="
                    f"{trace.txns[e.tid].exec_time}) and expired (t={e.time})",
                )
            )
        if e.tid in seen_expired:
            issues.append(
                CertificationIssue(
                    "expired-twice", f"txn {e.tid} expired more than once"
                )
            )
        seen_expired.add(e.tid)
        if e.time < e.deadline:
            issues.append(
                CertificationIssue(
                    "early-expiry",
                    f"txn {e.tid} cancelled at t={e.time}, before its "
                    f"deadline {e.deadline}",
                )
            )

    # Engine-recorded violations are certification failures too.
    for v in trace.violations:
        issues.append(CertificationIssue("engine-violation", str(v)))

    if issues and raise_on_failure:
        raise InfeasibleScheduleError(issues)
    return issues
