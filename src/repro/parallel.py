"""Deterministic process-pool fan-out (``pmap``) for seeded experiments.

Every fan-out point in the repo — multi-seed :func:`~repro.analysis.aggregate.replicate`,
chaos sweeps, CLI ``compare`` — is a loop over *pure, seeded, picklable
specs*.  This module gives them one primitive:

``pmap(fn, specs, jobs=N)``
    Run ``fn(spec)`` for every spec on a pool of ``N`` worker processes
    and return ``[fn(s) for s in specs]`` — **identical** to the serial
    list regardless of worker count or completion order.  Results are
    merged by spec index, never by arrival.

Design notes
------------
* ``jobs=1`` (the default everywhere) is a plain serial loop: no pool,
  no pickling, no new failure modes when parallelism is off.
* The worker function travels to the pool via the process initializer
  arguments.  Under the ``fork`` start method (Linux default) it is
  inherited by memory copy, so closures and lambdas work; under
  ``spawn`` the function itself must be picklable (module-level).
  Specs always cross the call queue and must be picklable either way.
* Work is submitted as index-ordered chunks with a bounded in-flight
  window (``2 * jobs`` chunks), so a million specs never materialize a
  million futures.
* Failure semantics mirror serial execution: the *lowest-index* failing
  spec's exception is raised.  If the original exception survives a
  pickle round-trip faithfully (same type, same message) it is re-raised
  unchanged, chained to a :class:`~repro.errors.ParallelError` carrying
  the spec index and remote traceback; otherwise a ``ParallelError``
  with the remote type name, message, and traceback is raised instead.
* ``KeyboardInterrupt`` (in a worker or the parent) cancels outstanding
  work, shuts the pool down, and re-raises.  A worker that dies outright
  (``os._exit``, OOM kill) surfaces as a context-rich ``ParallelError``.

Per-worker warm caches: pass ``initializer=...`` — it runs once per
worker process (e.g. pre-building a topology's Dijkstra rows) instead of
once per task.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError

__all__ = ["WorkerPool", "pmap", "resolve_jobs"]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: ``0`` means ``os.cpu_count()``.

    Negative values are rejected; ``None`` is treated as 1 (serial).
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ParallelError(f"jobs must be >= 0 (0 = cpu count), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# Worker-side plumbing.  The function (and user initializer) arrive via the
# pool initializer so they are fork-inherited rather than pickled per task.

_WORKER_FN: Optional[Callable[[Any], Any]] = None


def _worker_init(fn, initializer, initargs) -> None:
    global _WORKER_FN
    _WORKER_FN = fn
    if initializer is not None:
        initializer(*initargs)


def _pickles_faithfully(exc: BaseException) -> bool:
    """True when ``exc`` survives a pickle round-trip with type and message
    intact.  Exceptions with custom ``__init__`` signatures (e.g.
    ``InfeasibleScheduleError``) can unpickle into a corrupted object; those
    are transported as text instead of re-raised."""
    try:
        clone = pickle.loads(pickle.dumps(exc))
    except Exception:
        return False
    return type(clone) is type(exc) and str(clone) == str(exc)


def _run_chunk(start: int, specs: Sequence[Any]) -> Tuple[int, List[Any], Optional[tuple]]:
    """Execute one chunk in a worker.

    Returns ``(start, results, failure)`` where ``failure`` is ``None`` on
    success or a transportable description of the first failing spec:
    ``("exc", exc, index, tb)`` when the exception pickles faithfully,
    ``("info", type_name, message, index, tb)`` otherwise, and
    ``("kbd", index)`` for a KeyboardInterrupt.
    """
    results: List[Any] = []
    for offset, spec in enumerate(specs):
        index = start + offset
        try:
            results.append(_WORKER_FN(spec))
        except KeyboardInterrupt:
            return start, results, ("kbd", index)
        except BaseException as exc:  # transported, re-raised in the parent
            tb = traceback.format_exc()
            if _pickles_faithfully(exc):
                return start, results, ("exc", exc, index, tb)
            return start, results, ("info", type(exc).__name__, str(exc), index, tb)
    return start, results, None


# ---------------------------------------------------------------------------
# Parent-side pool.


class WorkerPool:
    """A process pool bound to one function, with deterministic ``map``.

    Parameters
    ----------
    fn:
        The per-spec function.  Fork-inherited by workers (see module
        docstring for spawn caveats).
    jobs:
        Worker count after :func:`resolve_jobs`; ``1`` runs serially in
        the calling process.
    initializer / initargs:
        Optional per-worker warm-up (build graph/Dijkstra caches once per
        worker, not per task).  Under ``jobs=1`` it runs once, lazily, in
        the calling process so cache behaviour matches.
    chunk:
        Specs per task.  Default balances scheduling overhead against
        load balance: ``ceil(n / (4 * jobs))`` clamped to [1, 32].

    Usable as a context manager; the pool is created lazily on first
    ``map`` and shut down on ``close()``/``__exit__``.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        jobs: int = 1,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        chunk: Optional[int] = None,
    ) -> None:
        self.fn = fn
        self.jobs = resolve_jobs(jobs)
        self.initializer = initializer
        self.initargs = initargs
        self.chunk = chunk
        self._executor: Optional[ProcessPoolExecutor] = None
        self._warmed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(self.fn, self.initializer, self.initargs),
            )
        return self._executor

    # -- mapping -----------------------------------------------------------

    def map(self, specs: Iterable[Any], *, ordered: bool = True) -> List[Any]:
        """``[fn(s) for s in specs]``, deterministically.

        With ``ordered=False`` results arrive in completion order (still
        the same multiset); use only for order-insensitive reductions.
        """
        specs = list(specs)
        if not specs:
            return []
        if self.jobs == 1:
            if not self._warmed:
                if self.initializer is not None:
                    self.initializer(*self.initargs)
                self._warmed = True
            return [self.fn(s) for s in specs]
        return self._map_parallel(specs, ordered=ordered)

    def _chunk_size(self, n: int) -> int:
        if self.chunk is not None:
            return max(1, int(self.chunk))
        return max(1, min(32, math.ceil(n / (4 * self.jobs))))

    def _map_parallel(self, specs: List[Any], *, ordered: bool) -> List[Any]:
        n = len(specs)
        size = self._chunk_size(n)
        chunks = [(i, specs[i:i + size]) for i in range(0, n, size)]
        executor = self._ensure_executor()

        slots: List[Any] = [None] * n
        arrival: List[Any] = []
        failure: Optional[tuple] = None  # lowest-index failure seen so far
        next_chunk = 0
        pending = set()
        window = 2 * self.jobs

        def _note_failure(fail: tuple) -> None:
            nonlocal failure
            idx = fail[2] if fail[0] in ("exc", "info") else fail[1]
            cur = None if failure is None else (
                failure[2] if failure[0] in ("exc", "info") else failure[1])
            if cur is None or idx < cur:
                failure = fail

        try:
            while pending or (next_chunk < len(chunks) and failure is None):
                while next_chunk < len(chunks) and len(pending) < window and failure is None:
                    start, chunk = chunks[next_chunk]
                    pending.add(executor.submit(_run_chunk, start, chunk))
                    next_chunk += 1
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    start, results, fail = fut.result()
                    for offset, value in enumerate(results):
                        slots[start + offset] = value
                        arrival.append(value)
                    if fail is not None:
                        _note_failure(fail)
        except KeyboardInterrupt:
            executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            raise
        except BrokenProcessPool as exc:
            self._executor = None
            raise ParallelError(
                f"worker process died while mapping {n} spec(s) with jobs={self.jobs} "
                f"(fn={getattr(self.fn, '__name__', self.fn)!r}); a worker likely "
                "crashed hard (os._exit, OOM kill, segfault) before returning a result"
            ) from exc

        if failure is not None:
            self._raise_failure(failure, n)
        return slots if ordered else arrival

    def _raise_failure(self, failure: tuple, n: int) -> None:
        kind = failure[0]
        if kind == "kbd":
            self.close()
            raise KeyboardInterrupt
        if kind == "exc":
            _, exc, index, tb = failure
            context = ParallelError(
                f"spec {index} of {n} failed in a worker (jobs={self.jobs}); "
                f"remote traceback:\n{tb}",
                index=index,
                cause_type=type(exc).__name__,
                remote_traceback=tb,
            )
            raise exc from context
        _, type_name, message, index, tb = failure
        raise ParallelError(
            f"spec {index} of {n} failed in a worker (jobs={self.jobs}) with "
            f"{type_name}: {message}\nremote traceback:\n{tb}",
            index=index,
            cause_type=type_name,
            remote_traceback=tb,
        )


def pmap(
    fn: Callable[[Any], Any],
    specs: Iterable[Any],
    *,
    jobs: int = 1,
    ordered: bool = True,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    chunk: Optional[int] = None,
) -> List[Any]:
    """One-shot deterministic parallel map (see :class:`WorkerPool`)."""
    with WorkerPool(fn, jobs=jobs, initializer=initializer,
                    initargs=initargs, chunk=chunk) as pool:
        return pool.map(specs, ordered=ordered)
