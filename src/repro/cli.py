"""Command-line interface: run, compare, and inspect DTM schedules.

Examples::

    python -m repro run --topology grid:5x5 --scheduler greedy \
        --workload bernoulli --objects 8 --k 2 --rate 0.05 --horizon 60

    python -m repro compare --topology line:32 --workload bernoulli \
        --objects 8 --k 2 --rate 0.04 --horizon 80

    python -m repro cover --topology cluster:4x4:8 --seed 0

Topology specs: ``clique:N``, ``line:N``, ``ring:N``, ``grid:AxB[xC...]``,
``torus:AxB``, ``hypercube:D``, ``butterfly:D``, ``cluster:AxB:GAMMA``,
``star:AxB``, ``tree:BxDEPTH``, ``rgg:N:RADIUS``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Tuple

from repro._types import DeparturePolicy
from repro.analysis import render_table, run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import (
    AdaptiveScheduler,
    BucketScheduler,
    CoordinatedGreedyScheduler,
    DistributedBucketScheduler,
    GreedyScheduler,
)
from repro.cover import build_sparse_cover
from repro.errors import ReproError
from repro.network import Graph, topologies
from repro.obs import CountersProbe, JsonlProbe, MultiProbe
from repro.parallel import pmap
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
)
from repro.sim.config import SimConfig
from repro.sim.serialize import save_trace
from repro.workloads import (
    BatchWorkload,
    ClosedLoopWorkload,
    OnlineWorkload,
    ZipfChooser,
    chain_workload,
    hotspot_workload,
)

SCHEDULER_NAMES = [
    "greedy",
    "greedy-uniform",
    "greedy-degree",
    "adaptive",
    "coordinated",
    "bucket",
    "bucket-line",
    "bucket-cluster",
    "bucket-star",
    "windowed",
    "distributed",
    "distributed-arrow",
    "fifo",
    "tsp",
]


def parse_topology(spec: str) -> Graph:
    """Build a graph from a compact ``kind:params`` spec (see module doc)."""
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "clique":
            return topologies.clique(int(parts[1]))
        if kind == "line":
            return topologies.line(int(parts[1]))
        if kind == "ring":
            return topologies.ring(int(parts[1]))
        if kind in ("grid", "torus"):
            dims = [int(d) for d in parts[1].split("x")]
            return topologies.grid(dims) if kind == "grid" else topologies.torus(dims)
        if kind == "hypercube":
            return topologies.hypercube(int(parts[1]))
        if kind == "butterfly":
            return topologies.butterfly(int(parts[1]))
        if kind == "cluster":
            alpha, beta = (int(x) for x in parts[1].split("x"))
            return topologies.cluster_graph(alpha, beta, int(parts[2]))
        if kind == "star":
            alpha, beta = (int(x) for x in parts[1].split("x"))
            return topologies.star_graph(alpha, beta)
        if kind == "tree":
            b, d = (int(x) for x in parts[1].split("x"))
            return topologies.tree(b, d)
        if kind == "rgg":
            seed = int(parts[3]) if len(parts) > 3 else 0
            return topologies.random_geometric(int(parts[1]), float(parts[2]), seed=seed)
    except (IndexError, ValueError) as exc:
        raise SystemExit(f"bad topology spec {spec!r}: {exc}")
    raise SystemExit(f"unknown topology kind {kind!r} (spec {spec!r})")


def make_scheduler(name: str, graph: Graph) -> Tuple[object, int]:
    """Scheduler instance plus the object speed it requires."""
    if name == "greedy":
        return GreedyScheduler(), 1
    if name == "greedy-degree":
        return GreedyScheduler(order="degree"), 1
    if name == "greedy-uniform":
        beta = max(1, int(graph.diameter()))
        return GreedyScheduler(uniform_beta=beta), 1
    if name == "adaptive":
        return AdaptiveScheduler(), 1
    if name == "coordinated":
        return CoordinatedGreedyScheduler(), 1
    if name == "bucket":
        return BucketScheduler(ColoringBatchScheduler()), 1
    if name == "bucket-line":
        return BucketScheduler(LineBatchScheduler()), 1
    if name == "bucket-cluster":
        return BucketScheduler(ClusterBatchScheduler()), 1
    if name == "bucket-star":
        return BucketScheduler(StarBatchScheduler()), 1
    if name == "windowed":
        from repro.core import WindowedBatchScheduler

        return WindowedBatchScheduler(ColoringBatchScheduler(), window=16), 1
    if name == "distributed":
        return DistributedBucketScheduler(ColoringBatchScheduler(), seed=0), 2
    if name == "distributed-arrow":
        return (
            DistributedBucketScheduler(ColoringBatchScheduler(), seed=0, discovery="arrow"),
            2,
        )
    if name == "fifo":
        return FifoSerialScheduler(), 1
    if name == "tsp":
        return TspTourScheduler(), 1
    raise SystemExit(f"unknown scheduler {name!r} (choose from {SCHEDULER_NAMES})")


def make_workload(args, graph: Graph):
    chooser = None
    if args.zipf > 0:
        chooser = ZipfChooser(args.objects, args.zipf)
    if args.workload == "batch":
        return BatchWorkload.uniform(
            graph, args.objects, args.k, seed=args.seed, chooser=chooser,
            read_fraction=args.read_fraction,
        )
    if args.workload == "bernoulli":
        return OnlineWorkload.bernoulli(
            graph, args.objects, args.k, rate=args.rate, horizon=args.horizon,
            seed=args.seed, chooser=chooser, read_fraction=args.read_fraction,
        )
    if args.workload == "poisson":
        return OnlineWorkload.poisson_bulk(
            graph, args.objects, args.k, lam=args.rate, horizon=args.horizon,
            seed=args.seed, chooser=chooser,
        )
    if args.workload == "closed-loop":
        return ClosedLoopWorkload(
            graph, args.objects, args.k, rounds=args.rounds, seed=args.seed,
            chooser=chooser, read_fraction=args.read_fraction,
        )
    if args.workload == "hotspot":
        return hotspot_workload(graph, seed=args.seed)
    if args.workload == "chain":
        return chain_workload(graph)
    raise SystemExit(f"unknown workload {args.workload!r}")


def _result_dict(name: str, res) -> dict:
    m = res.metrics
    return {
        "scheduler": name,
        "txns": m.num_txns,
        "makespan": m.makespan,
        "max_latency": m.max_latency,
        "mean_latency": round(m.mean_latency, 2),
        "p99_latency": round(m.p99_latency, 2),
        "object_travel": m.total_object_travel,
        "messages": m.messages_sent,
        "competitive_ratio": round(res.competitive_ratio, 3),
    }


def make_probe(args, jsonl_path: Optional[str] = None):
    """Build the probe requested by --obs-counters / --obs-jsonl /
    --monitor (or None when nothing was asked for)."""
    probes = []
    if getattr(args, "obs_counters", False):
        probes.append(CountersProbe())
    path = jsonl_path if jsonl_path is not None else getattr(args, "obs_jsonl", None)
    if path:
        probes.append(JsonlProbe(path))
    if getattr(args, "monitor", False):
        from repro.chaos import InvariantMonitor

        probes.append(InvariantMonitor(stall_k=getattr(args, "stall_k", 512)))
    if not probes:
        return None
    return probes[0] if len(probes) == 1 else MultiProbe(*probes)


def _close_probe(probe) -> None:
    """Close any file-owning probes (JsonlProbe) after a run."""
    if probe is None:
        return
    for p in getattr(probe, "probes", (probe,)):
        close = getattr(p, "close", None)
        if close is not None:
            close()


def make_faults(args, graph: Graph):
    """Parse ``--faults seed=S,drop=P,crash=K,partition=K,...`` into a FaultPlan."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults import FaultPlan

    horizon = getattr(args, "horizon", 60) or 60
    return FaultPlan.parse(
        spec,
        num_nodes=graph.num_nodes,
        horizon=horizon,
        edges=[(u, v) for u, v, _ in graph.edges()],
    )


def make_config(args, speed: int, probe=None, faults=None) -> SimConfig:
    """Translate CLI knobs into one SimConfig.

    Congestion studies (--link-capacity / --node-capacity) need the
    deferral engine, not hard errors, so they switch to strict=False —
    their schedules target the congestion-free model and the deferral
    count is the measurement.  Fault runs (--faults) stay strict: misses
    route through the recovery machinery, not the deferral path.

    ``--transport`` selects the motion model explicitly; without it the
    legacy inference applies (``--hop-motion`` or ``--link-capacity``
    imply the hop transport).
    """
    link_capacity = getattr(args, "link_capacity", None)
    node_capacity = getattr(args, "node_capacity", None)
    transport = getattr(args, "transport", None)
    if transport == "direct":
        if link_capacity:
            raise SystemExit(
                "--link-capacity requires a hop transport "
                "(use --transport hop, or drop --transport direct)"
            )
        if getattr(args, "hop_motion", False):
            raise SystemExit("--transport direct conflicts with --hop-motion")
    congested = bool(link_capacity or node_capacity)
    checkpoint = getattr(args, "checkpoint", None)
    return SimConfig(
        departure_policy=DeparturePolicy.LAZY if getattr(args, "lazy", False)
        else DeparturePolicy.EAGER,
        object_speed_den=max(speed, args.object_speed),
        strict=not congested,
        node_egress_capacity=node_capacity,
        hop_motion=transport != "direct"
        and (getattr(args, "hop_motion", False) or bool(link_capacity)),
        link_capacity=link_capacity,
        probe=probe,
        transport=transport,
        faults=faults,
        checkpoint_path=checkpoint,
        checkpoint_every=(
            getattr(args, "checkpoint_every", None) if checkpoint else None
        ),
    )


def _resume_sim(path: str):
    """Restore a checkpointed engine for ``--resume`` (run/stream)."""
    from repro.sim.engine import Simulator

    return Simulator.restore(path)


def cmd_run(args) -> int:
    if getattr(args, "resume", None):
        return _cmd_run_resumed(args)
    if not args.topology:
        raise SystemExit("--topology is required (unless resuming with --resume)")
    graph = parse_topology(args.topology)
    scheduler, speed = make_scheduler(args.scheduler, graph)
    workload = make_workload(args, graph)
    probe = make_probe(args)
    res = run_experiment(
        graph, scheduler, workload,
        config=make_config(args, speed, probe=probe, faults=make_faults(args, graph)),
    )
    _close_probe(probe)
    out = _result_dict(args.scheduler, res)
    out["topology"] = graph.name
    out["deadline_misses"] = len(res.trace.violations)
    if res.trace.faults or res.trace.reschedules:
        out["faults"] = res.trace.fault_counts()
        out["reschedules"] = len(res.trace.reschedules)
        out["backoff_max"] = res.trace.max_backoff()
    if res.obs is not None:
        out["obs"] = res.obs
    if args.obs_jsonl:
        out["obs_jsonl"] = args.obs_jsonl
    if args.trace:
        save_trace(res.trace, args.trace)
        out["trace_file"] = args.trace
    if args.report:
        from repro.analysis.report import run_report

        with open(args.report, "w") as fh:
            fh.write(run_report(graph, res, title=f"{graph.name} / {args.scheduler}"))
        out["report_file"] = args.report
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        obs = out.pop("obs", None)
        rows = [[k, v] for k, v in out.items()]
        if obs:
            rows.extend([[f"obs.{k}", v] for k, v in obs.items()])
        print(render_table(["metric", "value"], rows, title=f"{graph.name} / {args.scheduler}"))
    return 0


def _cmd_run_resumed(args) -> int:
    """``repro run --resume <checkpoint>``: continue a killed closed run.

    Topology, scheduler, workload, faults, and checkpoint settings all
    live inside the snapshot; the resumed run keeps checkpointing to the
    path it was started with and produces the same trace the
    uninterrupted run would have.
    """
    from repro.sim.validate import certify_trace

    sim = _resume_sim(args.resume)
    trace = sim.run()
    _close_probe(sim.config.probe)
    if sim.config.strict:
        certify_trace(sim.graph, trace)
    out = {
        "scheduler": type(sim.scheduler).__name__,
        "topology": sim.graph.name,
        "resumed_from": args.resume,
        "txns": trace.num_txns,
        "makespan": trace.makespan(),
        "max_latency": trace.max_latency(),
        "mean_latency": round(trace.mean_latency(), 2),
        "object_travel": trace.total_object_travel(),
        "messages": trace.messages_sent,
        "deadline_misses": len(trace.violations),
    }
    if trace.faults or trace.reschedules:
        out["faults"] = trace.fault_counts()
        out["reschedules"] = len(trace.reschedules)
    if getattr(args, "trace", None):
        save_trace(trace, args.trace)
        out["trace_file"] = args.trace
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        rows = [[k, v] for k, v in out.items()]
        print(render_table(["metric", "value"], rows,
                           title=f"resumed {out['topology']} / {out['scheduler']}"))
    return 0


OPEN_WORKLOAD_KINDS = ["poisson-open", "onoff-open", "diurnal-open", "adversarial-open"]


def make_stream_spec(args) -> "WorkloadSpec":
    """Build the open :class:`WorkloadSpec` a stream/frontier run uses."""
    from repro.analysis.frontier import rate_knob
    from repro.workloads import WorkloadSpec

    kind = args.workload
    knobs = {"objects": args.objects, "k": args.k}
    if args.zipf > 0:
        knobs["zipf"] = args.zipf
    if args.read_fraction > 0:
        knobs["read_fraction"] = args.read_fraction
    knobs[rate_knob(kind)] = args.lam
    if kind == "onoff-open" and args.lam_off is not None:
        knobs["lam_off"] = args.lam_off
    if kind == "diurnal-open":
        knobs["amplitude"] = args.amplitude
        knobs["period"] = args.period
    if kind == "adversarial-open":
        knobs["burst"] = args.burst
    if getattr(args, "priority_classes", 1) > 1:
        knobs["priority_classes"] = args.priority_classes
    return WorkloadSpec.make(kind, seed=args.seed, **knobs)


def make_service_config(args):
    """Build the :class:`~repro.service.ServiceConfig` requested by
    --admission/--queue-cap/--deadline/--deadline-frac (None when the
    ingestion front-end was not asked for)."""
    policy = getattr(args, "admission", None)
    if policy is None:
        return None
    from repro.service import ServiceConfig

    return ServiceConfig(
        policy=policy,
        queue_cap=args.queue_cap,
        deadline=args.deadline,
        deadline_frac=args.deadline_frac,
        seed=args.seed,
    )


def _slo_rows(slo: dict) -> list:
    rows = [
        ["stable", slo["stable"]],
        ["arrival rate", round(slo["arrival_rate"], 4)],
        ["throughput", round(slo["throughput"], 4)],
        ["p50 latency", slo["p50"]],
        ["p99 latency", slo["p99"]],
        ["p999 latency", slo["p999"]],
        ["mean latency", round(slo["mean_latency"], 3)],
        ["generated", slo["generated"]],
        ["committed", slo["committed"]],
        ["backlog at horizon", slo["backlog"]],
        ["backlog first/second half",
         f"{slo['backlog_first_half']:.1f} / {slo['backlog_second_half']:.1f}"],
    ]
    if slo.get("goodput") is not None:
        rows += [
            ["goodput", round(slo["goodput"], 4)],
            ["shed rate", round(slo["shed_rate"], 4)],
            ["deadline hit rate", round(slo["deadline_hit_rate"], 4)],
            ["p99 of admitted", slo["p99_admitted"]],
        ]
    return rows


def cmd_stream(args) -> int:
    """Run one scheduler against an open workload; print the SLO fold."""
    from repro.analysis import run_stream

    warmup = args.warmup if args.warmup is not None else args.until // 4
    if getattr(args, "resume", None):
        # Continue a killed stream run: the snapshot carries the graph,
        # scheduler, arrival stream cursor, and checkpoint settings; only
        # the horizon/warmup are re-supplied (pass the same --until as
        # the original run for a byte-identical trace).
        from repro.analysis.slo import slo_summary

        sim = _resume_sim(args.resume)
        trace = sim.run(until=args.until, warmup=warmup)
        _close_probe(sim.config.probe)
        out = {
            "topology": sim.graph.name,
            "scheduler": type(sim.scheduler).__name__,
            "resumed_from": args.resume,
            **slo_summary(trace, warmup=warmup).to_dict(),
        }
        spec = getattr(sim.workload, "spec", None)
        if spec is not None:
            out["workload"] = spec.to_dict()
        if args.json:
            print(json.dumps(out, indent=2))
        else:
            print(render_table(
                ["metric", "value"], _slo_rows(out),
                title=f"resumed {out['topology']} / {out['scheduler']}",
            ))
        return 0
    if not args.topology:
        raise SystemExit("--topology is required (unless resuming with --resume)")
    graph = parse_topology(args.topology)
    scheduler, speed = make_scheduler(args.scheduler, graph)
    spec = make_stream_spec(args)
    probe = make_probe(args)
    service = make_service_config(args)
    latency = getattr(args, "latency_dist", None)
    faults = None
    if latency:
        # Long-tail delivery rides on the recovery machinery; an empty
        # plan (no injected faults) enables it without adding any.
        from repro.faults import FaultPlan

        faults = FaultPlan(seed=args.seed)
    cfg = SimConfig(
        object_speed_den=max(speed, args.object_speed), probe=probe,
        service=service, latency_dist=latency,
        latency_seed=args.seed if latency else 0, faults=faults,
        checkpoint_path=getattr(args, "checkpoint", None),
        checkpoint_every=(
            getattr(args, "checkpoint_every", None)
            if getattr(args, "checkpoint", None) else None
        ),
    )
    res = run_stream(
        graph, scheduler, spec, until=args.until, warmup=warmup, config=cfg
    )
    _close_probe(probe)
    out = {
        "topology": graph.name,
        "scheduler": args.scheduler,
        "workload": spec.to_dict(),
        **res.slo.to_dict(),
    }
    if service is not None:
        out["admission"] = service.policy
    if res.obs is not None:
        out["obs"] = res.obs
    title = f"{graph.name} / {args.scheduler} @ λ={args.lam} ({spec.kind})"
    if service is not None:
        title += f" [{service.policy}]"
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(f"# Open-system run — {title}\n\n")
            fh.write(render_table(["metric", "value"], _slo_rows(out), title=None))
            fh.write("\n")
        out["report_file"] = args.report
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        obs = out.pop("obs", None)
        print(render_table(["metric", "value"], _slo_rows(out), title=title))
        if obs:
            print(render_table(
                ["counter", "value"], [[k, v] for k, v in obs.items()], title="obs"
            ))
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: an open-system run with the ingestion front-end
    always on — ``stream`` plus admission control, deadlines, and the
    graceful-degradation controller (:mod:`repro.service`)."""
    if args.admission is None:
        args.admission = "fifo"
    return cmd_stream(args)


def cmd_frontier(args) -> int:
    """Bisect λ per scheduler; print the stability frontier."""
    from repro.analysis import stability_frontier

    if not args.topology:
        raise SystemExit("--topology is required")
    names = args.schedulers.split(",") if args.schedulers else ["greedy", "bucket", "fifo"]
    spec = make_stream_spec(args)
    warmup = args.warmup if args.warmup is not None else args.until // 4
    res = stability_frontier(
        args.topology,
        names,
        spec,
        lam_min=args.lam_min,
        lam_max=args.lam_max,
        rounds=args.rounds,
        until=args.until,
        warmup=warmup,
        jobs=args.jobs,
        resume_path=getattr(args, "resume", None),
    )
    rows = []
    for s in res.schedulers:
        slo = s.stable_slo
        rows.append([
            s.scheduler,
            round(s.lambda_star, 4),
            round(slo["throughput"], 3) if slo else "-",
            slo["p50"] if slo else "-",
            slo["p99"] if slo else "-",
            slo["p999"] if slo else "-",
            len(s.probes),
        ])
    header = ["scheduler", "λ*", "tput@λ*", "p50", "p99", "p999", "probes"]
    title = (
        f"stability frontier — {args.topology}, {spec.kind}, "
        f"λ∈[{args.lam_min}, {args.lam_max}], until={args.until}"
    )
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(f"# {title}\n\n")
            fh.write(render_table(header, rows, title=None))
            fh.write(
                f"\nλ* is the largest probed arrival rate with a stable "
                f"verdict; latencies are the p50/p99/p999 commit latency at "
                f"λ*.  {res.probe_count} probes total.\n"
            )
    if args.json:
        print(json.dumps(res.to_dict(), indent=2))
    else:
        print(render_table(header, rows, title=title))
    return 0


def _compare_one(payload) -> dict:
    """One scheduler of a ``compare``: a full timed run, returned as the
    JSON-ready result dict.  Module-level and driven by a picklable
    ``(args, name, jsonl_path)`` payload so ``--jobs N`` can fan the
    schedulers out over a process pool."""
    args, name, jsonl_path = payload
    graph = parse_topology(args.topology)
    scheduler, speed = make_scheduler(name, graph)
    workload = make_workload(args, graph)
    probe = make_probe(args, jsonl_path=jsonl_path)
    started = time.perf_counter()
    res = run_experiment(
        graph, scheduler, workload,
        config=make_config(args, speed, probe=probe, faults=make_faults(args, graph)),
    )
    seconds = time.perf_counter() - started
    _close_probe(probe)
    d = _result_dict(name, res)
    d["seconds"] = round(seconds, 3)
    if res.trace.faults or res.trace.reschedules:
        d["faults"] = res.trace.fault_counts()
        d["reschedules"] = len(res.trace.reschedules)
    if res.obs is not None:
        d["obs"] = res.obs
    if jsonl_path:
        d["obs_jsonl"] = jsonl_path
    return d


def cmd_compare(args) -> int:
    if not args.topology:
        raise SystemExit("--topology is required")
    graph = parse_topology(args.topology)
    names = args.schedulers.split(",") if args.schedulers else [
        "greedy", "bucket", "fifo", "tsp"
    ]
    payloads = []
    for name in names:
        jsonl_path = None
        if args.obs_jsonl:
            # One stream per scheduler: results.jsonl -> results.greedy.jsonl
            root, dot, ext = args.obs_jsonl.rpartition(".")
            jsonl_path = f"{root}.{name}{dot}{ext}" if dot else f"{args.obs_jsonl}.{name}"
        payloads.append((args, name, jsonl_path))
    results = pmap(_compare_one, payloads, jobs=getattr(args, "jobs", 1))
    rows = [
        [d["scheduler"], d["txns"], d["makespan"], d["mean_latency"],
         d["p99_latency"], d["competitive_ratio"], d["messages"], d["seconds"]]
        for d in results
    ]
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(render_table(
            ["scheduler", "txns", "makespan", "mean-lat", "p99-lat", "ratio", "msgs",
             "seconds"],
            rows, title=graph.name,
        ))
        if args.obs_counters:
            for d in results:
                obs_rows = [[k, v] for k, v in d.get("obs", {}).items()]
                if obs_rows:
                    print(render_table(["counter", "value"], obs_rows,
                                       title=f"obs: {d['scheduler']}"))
    return 0


def _suite_one(payload) -> dict:
    """One ``suite`` entry as a picklable unit of work for ``--jobs N``."""
    i, entry = payload
    ns = argparse.Namespace(
        topology=entry["topology"],
        workload=entry.get("workload", "bernoulli"),
        objects=entry.get("objects", 8),
        k=entry.get("k", 2),
        rate=entry.get("rate", 0.05),
        horizon=entry.get("horizon", 60),
        rounds=entry.get("rounds", 3),
        read_fraction=entry.get("read_fraction", 0.0),
        zipf=entry.get("zipf", 0.0),
        seed=entry.get("seed", 0),
        object_speed=entry.get("object_speed", 1),
    )
    graph = parse_topology(ns.topology)
    scheduler, speed = make_scheduler(entry.get("scheduler", "greedy"), graph)
    res = run_experiment(
        graph, scheduler, make_workload(ns, graph),
        config=SimConfig(object_speed_den=max(speed, ns.object_speed)),
    )
    d = _result_dict(entry.get("scheduler", "greedy"), res)
    d["name"] = entry.get("name", f"entry-{i}")
    d["topology"] = graph.name
    return d


def cmd_suite(args) -> int:
    """Run a JSON-defined list of experiments and print one combined table.

    The suite file is a JSON array of objects, each with the keys the
    ``run`` command takes (topology, scheduler, workload, objects, k,
    rate, horizon, rounds, read_fraction, zipf, seed) plus an optional
    ``name``.  Unknown keys are rejected to catch typos.
    """
    allowed = {
        "name", "topology", "scheduler", "workload", "objects", "k",
        "rate", "horizon", "rounds", "read_fraction", "zipf", "seed",
        "object_speed",
    }
    with open(args.file) as fh:
        entries = json.load(fh)
    if not isinstance(entries, list) or not entries:
        print("suite file must be a non-empty JSON array", file=sys.stderr)
        return 2
    for i, entry in enumerate(entries):
        unknown = set(entry) - allowed
        if unknown:
            print(f"suite entry {i}: unknown keys {sorted(unknown)}", file=sys.stderr)
            return 2
    results = pmap(_suite_one, list(enumerate(entries)),
                   jobs=getattr(args, "jobs", 1))
    rows = [[d["name"], d["topology"], d["scheduler"], d["txns"],
             d["makespan"], d["mean_latency"], d["competitive_ratio"]]
            for d in results]
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print(render_table(
            ["name", "topology", "scheduler", "txns", "makespan", "mean-lat", "ratio"],
            rows, title=f"suite: {args.file}",
        ))
    return 0


def cmd_replay(args) -> int:
    """Re-run an archived trace: re-certify, regenerate its workload, and
    replay the recorded schedule (optionally under congestion knobs)."""
    from repro.core import ReplayScheduler
    from repro.sim.engine import Simulator
    from repro.sim.serialize import load_trace
    from repro.sim.validate import certify_trace
    from repro.workloads import workload_from_trace

    graph = parse_topology(args.topology)
    trace = load_trace(args.trace)
    issues = certify_trace(graph, trace, raise_on_failure=False)
    if issues:
        print(f"archive FAILED certification ({len(issues)} issues):", file=sys.stderr)
        for i in issues[:10]:
            print(f"  {i}", file=sys.stderr)
        return 1
    sim = Simulator(
        graph,
        ReplayScheduler(trace),
        workload_from_trace(trace),
        config=SimConfig(
            object_speed_den=trace.object_speed_den,
            hop_motion=args.hop_motion or bool(args.link_capacity),
            link_capacity=args.link_capacity,
            node_egress_capacity=args.node_capacity,
            strict=False,
        ),
    )
    replayed = sim.run()
    out = {
        "archived_makespan": trace.makespan(),
        "replayed_makespan": replayed.makespan(),
        "deadline_misses": len(replayed.violations),
        "txns": replayed.num_txns,
    }
    if trace.faults or trace.reschedules:
        # The archived schedule was shaped by injected faults and
        # recovery; the replay runs on a reliable network, so objects
        # route in commit order and some archived times may miss.
        out["archived_faults"] = sum(trace.fault_counts().values())
        out["note"] = "archive carries fault records; replay is fault-free"
    if args.json:
        print(json.dumps(out, indent=2))
    else:
        print(render_table(["metric", "value"], [[k, v] for k, v in out.items()],
                           title=f"replay of {args.trace} on {graph.name}"))
    return 0


def cmd_cover(args) -> int:
    graph = parse_topology(args.topology)
    cover = build_sparse_cover(graph, seed=args.seed)
    problems = cover.verify()
    rows = []
    for layer in range(cover.num_layers):
        clusters = [c for part in cover.layers[layer] for c in part]
        biggest = max(len(c.nodes) for c in clusters)
        rows.append([layer, cover.pad_of_layer(layer), len(cover.layers[layer]),
                     len(clusters), biggest])
    print(render_table(
        ["layer", "pad", "sublayers", "clusters", "max-size"],
        rows,
        title=f"sparse cover of {graph.name} (D={graph.diameter()})",
    ))
    if problems:
        print("\nPROBLEMS:")
        for p in problems:
            print(" ", p)
        return 1
    print("\nall sparse-cover properties verified")
    return 0


def cmd_topo(args) -> int:
    """Topology inspector: ``repro topo info <spec>``.

    Prints the graph's size, diameter, which distance oracle (if any)
    answers its queries in O(1), and what a full Dijkstra distance-cache
    would cost — the memory the oracle avoids materialising.
    """
    from repro.network.oracles import estimate_matrix_bytes

    graph = parse_topology(args.topology)
    n = graph.num_nodes
    oracle = graph.oracle
    cache = estimate_matrix_bytes(n)
    if cache >= 1 << 30:
        cache_h = f"{cache / (1 << 30):.1f} GiB"
    elif cache >= 1 << 20:
        cache_h = f"{cache / (1 << 20):.1f} MiB"
    else:
        cache_h = f"{cache / 1024:.1f} KiB"
    print(f"topology : {graph.name}")
    print(f"nodes    : {n}")
    print(f"edges    : {graph.num_edges()}")
    print(f"diameter : {graph.diameter()}")
    print(f"oracle   : {oracle.kind if oracle is not None else 'none (cached Dijkstra)'}")
    print(f"distance-cache estimate: {cache_h} ({'avoided by oracle' if oracle is not None else 'worst case if all rows touched'})")
    return 0


def cmd_chaos(args) -> int:
    """Chaos harness: ``repro chaos sweep`` / ``repro chaos replay``.

    ``sweep`` runs seeded fault episodes (crashes + drops + delays +
    partitions) across a scheduler rotation with invariant monitors on;
    any failure exits non-zero, optionally minimized (``--shrink``) and
    archived as a replayable artifact (``--artifact-dir``).  ``replay``
    re-runs an archived artifact and verifies the violation reproduces.
    """
    from repro import chaos

    if args.action == "replay":
        if not args.artifact:
            raise SystemExit("chaos replay needs an artifact path")
        result, reproduced = chaos.replay_artifact(args.artifact)
        out = {
            "artifact": args.artifact,
            "reproduced": reproduced,
            "violation": result.violation,
        }
        if args.json:
            print(json.dumps(out, indent=2))
        else:
            status = "reproduced" if reproduced else "NOT reproduced"
            print(f"{args.artifact}: violation {status}")
            if result.violation:
                print(f"  {result.violation['message']}")
        return 0 if reproduced else 1

    schedulers = (
        tuple(s.strip() for s in args.schedulers.split(",") if s.strip())
        if args.schedulers
        else chaos.DEFAULT_SCHEDULERS
    )

    def progress(result) -> None:
        if args.json or args.quiet:
            return
        mark = "." if result.ok else "F"
        print(mark, end="", flush=True)

    res = chaos.run_sweep(
        args.episodes,
        seed=args.seed,
        shrink=args.shrink,
        artifact_dir=args.artifact_dir,
        progress=progress,
        jobs=args.jobs,
        topology=args.topology,
        schedulers=schedulers,
        workload_kind=args.workload,
        objects=args.objects,
        k=args.k,
        horizon=args.horizon,
        drop=args.drop,
        delay=args.delay,
        max_delay=args.max_delay,
        crashes=args.crashes,
        crash_len=args.crash_len,
        partitions=args.partitions,
        partition_len=args.partition_len,
        joins=args.joins,
        leaves=args.leaves,
        lambda_mult=args.lambda_mult,
        deadline_frac=args.deadline_frac,
        stall_k=args.stall_k,
        resume_path=args.resume,
    )
    summary = res.summary()
    if args.json:
        summary["episode_violations"] = [r.to_dict() for r in res.violations]
        print(json.dumps(summary, indent=2))
    else:
        if not args.quiet:
            print()
        rows = [[k, v] for k, v in summary.items() if k != "fault_counts"]
        rows.extend(
            [f"faults.{k}", v] for k, v in sorted(summary["fault_counts"].items())
        )
        print(render_table(["metric", "value"], rows, title="chaos sweep"))
        for r in res.violations:
            print(f"FAIL {r.spec.scheduler}: {r.violation['message']}")
    return 0 if res.ok else 1


def cmd_checkpoint(args) -> int:
    """``repro checkpoint inspect <path>``: triage a snapshot header.

    Reads only the JSON header line — no unpickling, so no code from the
    snapshot runs.  Prints the schema, progress cursors, and RNG digests
    that identify the exact decision point the run was frozen at.
    """
    from repro.durability import inspect_checkpoint

    header = inspect_checkpoint(args.path)
    if args.json:
        print(json.dumps(header, indent=2))
        return 0
    rng = header.pop("rng_cursors", {})
    rows = [[k, v] for k, v in header.items()]
    rows.extend([f"rng.{k}", v] for k, v in sorted(rng.items()))
    print(render_table(["field", "value"], rows,
                       title=f"checkpoint {args.path}"))
    return 0


def cmd_profile(args) -> int:
    """Profile one run under cProfile and print the hottest functions.

    The profiled region is exactly ``run_experiment`` (engine + scheduler
    + certification); graph/workload construction is excluded so the
    table reflects the steady-state hot path.  Future hot-path claims
    should cite this output rather than intuition.
    """
    import cProfile
    import io
    import pstats

    graph = parse_topology(args.topology)
    scheduler, speed = make_scheduler(args.scheduler, graph)
    workload = make_workload(args, graph)
    config = make_config(args, speed, faults=make_faults(args, graph))
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    res = run_experiment(graph, scheduler, workload, config=config)
    profiler.disable()
    seconds = time.perf_counter() - started

    stats = pstats.Stats(profiler, stream=io.StringIO())
    stats.sort_stats(args.sort)
    summary = {
        "topology": graph.name,
        "scheduler": args.scheduler,
        "txns": res.metrics.num_txns,
        "makespan": res.metrics.makespan,
        "seconds": round(seconds, 3),
        "calls": stats.total_calls,
    }
    # (cc, nc, tt, ct) per function, hottest by the chosen sort key.
    # pstats accepts both spellings; the index table must agree.
    sort_index = {"cumulative": 3, "cumtime": 3, "tottime": 2}[args.sort]
    entries = sorted(
        stats.stats.items(), key=lambda kv: kv[1][sort_index], reverse=True
    )[: args.top]
    top = [
        {
            "function": f"{path.rsplit('/', 1)[-1]}:{line}({func})",
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        }
        for (path, line, func), (cc, nc, tt, ct, _callers) in entries
    ]
    if args.json:
        summary["top"] = top
        print(json.dumps(summary, indent=2))
    else:
        print(render_table(["metric", "value"], [[k, v] for k, v in summary.items()],
                           title=f"profile: {graph.name} / {args.scheduler}"))
        rows = [[t["ncalls"], t["tottime"], t["cumtime"], t["function"]] for t in top]
        print(render_table(["ncalls", "tottime", "cumtime", "function"], rows,
                           title=f"top {args.top} by {args.sort}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Distributed TM dynamic scheduling toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--topology", help="e.g. clique:16, grid:4x4, cluster:3x4:6")
        p.add_argument("--workload", default="bernoulli",
                       choices=["batch", "bernoulli", "poisson", "closed-loop", "hotspot", "chain"])
        p.add_argument("--objects", type=int, default=8)
        p.add_argument("--k", type=int, default=2)
        p.add_argument("--rate", type=float, default=0.05)
        p.add_argument("--horizon", type=int, default=60)
        p.add_argument("--rounds", type=int, default=3)
        p.add_argument("--read-fraction", type=float, default=0.0)
        p.add_argument("--zipf", type=float, default=0.0, help="Zipf skew s (0 = uniform)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--object-speed", type=int, default=1)
        p.add_argument("--transport", choices=["direct", "hop"], default=None,
                       help="object motion model (default: direct, or hop when "
                            "--hop-motion/--link-capacity are given)")
        p.add_argument("--json", action="store_true")
        p.add_argument("--obs-counters", action="store_true",
                       help="attach a CountersProbe; print/emit its summary")
        p.add_argument("--obs-jsonl", metavar="FILE", default=None,
                       help="stream probe events to FILE as JSONL (repro.obs schema)")
        p.add_argument("--faults", metavar="SPEC", default=None,
                       help="deterministic fault plan, e.g. "
                            "seed=1,drop=0.1,delay=0.05,max-delay=3,crash=2,crash-len=8")
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for fan-out commands "
                            "(compare/suite/chaos sweep); 0 = cpu count; "
                            "results are identical to --jobs 1")

    p_run = sub.add_parser("run", help="run one scheduler and print metrics")
    common(p_run)
    p_run.add_argument("--scheduler", default="greedy", choices=SCHEDULER_NAMES)
    p_run.add_argument("--lazy", action="store_true", help="lazy object departure")
    p_run.add_argument("--trace", help="write the execution trace to this JSON file")
    p_run.add_argument("--report", help="write a markdown run report to this file")
    p_run.add_argument("--hop-motion", action="store_true", help="edge-by-edge object motion")
    p_run.add_argument("--link-capacity", type=int, default=None,
                       help="max concurrent traversals per edge (implies hop motion)")
    p_run.add_argument("--node-capacity", type=int, default=None,
                       help="max object departures per node per step")
    p_run.add_argument("--monitor", action="store_true",
                       help="attach the runtime InvariantMonitor (repro.chaos): "
                            "abort with a structured error on any safety violation")
    p_run.add_argument("--stall-k", type=int, default=512,
                       help="liveness watchdog: flag a stall after this many "
                            "active steps without a commit (with --monitor)")
    p_run.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="write durability checkpoints here (a {step} "
                            "placeholder keeps every snapshot); SIGTERM/SIGINT "
                            "also write one before exiting")
    p_run.add_argument("--checkpoint-every", type=int, default=50,
                       help="active steps between periodic checkpoints "
                            "(with --checkpoint; default 50)")
    p_run.add_argument("--resume", metavar="PATH", default=None,
                       help="restore a checkpoint and continue the run "
                            "(other workload/topology flags are ignored)")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="run several schedulers on one workload")
    common(p_cmp)
    p_cmp.add_argument("--schedulers", help="comma-separated (default greedy,bucket,fifo,tsp)")
    p_cmp.set_defaults(func=cmd_compare)

    def stream_common(p):
        p.add_argument("--topology",
                       help="e.g. clique:16, grid:4x4, cluster:3x4:6")
        p.add_argument("--workload", default="poisson-open",
                       choices=OPEN_WORKLOAD_KINDS)
        p.add_argument("--objects", type=int, default=8)
        p.add_argument("--k", type=int, default=2)
        p.add_argument("--zipf", type=float, default=0.0,
                       help="Zipf skew s (0 = uniform)")
        p.add_argument("--read-fraction", type=float, default=0.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--object-speed", type=int, default=1)
        p.add_argument("--until", type=int, default=600,
                       help="run horizon in steps (open runs never drain)")
        p.add_argument("--warmup", type=int, default=None,
                       help="measurement cutoff in absolute steps "
                            "(default: until/4)")
        p.add_argument("--lam-off", type=float, default=None,
                       help="idle-phase rate (onoff-open)")
        p.add_argument("--amplitude", type=float, default=0.5,
                       help="rate swing (diurnal-open)")
        p.add_argument("--period", type=int, default=200,
                       help="cycle length in steps (diurnal-open)")
        p.add_argument("--burst", type=int, default=8,
                       help="burst allowance (adversarial-open)")
        p.add_argument("--json", action="store_true")
        p.add_argument("--report", help="write a markdown report to this file")

    def service_common(p, *, default_policy=None):
        from repro.service import POLICY_NAMES

        p.add_argument("--admission", default=default_policy,
                       choices=list(POLICY_NAMES),
                       help="admission-queue policy; enables the ingestion "
                            "front-end (repro.service)" +
                            ("" if default_policy is None
                             else f" (default {default_policy})"))
        p.add_argument("--queue-cap", type=int, default=64,
                       help="bound on the admission queue depth (default 64)")
        p.add_argument("--deadline", type=int, default=None,
                       help="relative commit deadline in steps stamped onto "
                            "admitted transactions; expired ones are "
                            "cancelled mid-flight")
        p.add_argument("--deadline-frac", type=float, default=1.0,
                       help="fraction of submissions that receive --deadline "
                            "(seeded coin; default 1.0)")
        p.add_argument("--priority-classes", type=int, default=1,
                       help="draw each transaction's priority class from "
                            "[0, N) in the workload (default 1 = all equal)")
        p.add_argument("--latency-dist", metavar="SPEC", default=None,
                       help="long-tail per-leg network delays: "
                            "lognormal:MU:SIGMA[:CAP] or empirical:V1,V2,...")

    def stream_obs_ckpt(p):
        p.add_argument("--scheduler", default="greedy", choices=SCHEDULER_NAMES)
        p.add_argument("--lam", type=float, default=0.5,
                       help="arrival rate λ (the open kind's rate knob)")
        p.add_argument("--obs-counters", action="store_true",
                       help="attach a CountersProbe; print/emit its summary")
        p.add_argument("--obs-jsonl", metavar="FILE", default=None,
                       help="stream probe events to FILE as JSONL")
        p.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="write durability checkpoints here ({step} "
                            "placeholder keeps every snapshot)")
        p.add_argument("--checkpoint-every", type=int, default=50,
                       help="active steps between periodic checkpoints "
                            "(with --checkpoint; default 50)")
        p.add_argument("--resume", metavar="PATH", default=None,
                       help="restore a checkpoint and continue to --until "
                            "(pass the original horizon)")
        p.add_argument("--monitor", action="store_true",
                       help="attach the InvariantMonitor (safety invariants "
                            "re-checked every step)")
        p.add_argument("--stall-k", type=int, default=512,
                       help="stall-watchdog threshold for --monitor")

    p_stream = sub.add_parser(
        "stream", help="open-system run: SLO percentiles + stability verdict"
    )
    stream_common(p_stream)
    stream_obs_ckpt(p_stream)
    service_common(p_stream)
    p_stream.set_defaults(func=cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="open-system run with the ingestion front-end on: admission "
             "control, deadlines, graceful degradation (repro.service)",
    )
    stream_common(p_serve)
    stream_obs_ckpt(p_serve)
    service_common(p_serve, default_policy="fifo")
    p_serve.set_defaults(func=cmd_serve)

    p_front = sub.add_parser(
        "frontier",
        help="bisect λ per scheduler into a throughput-vs-λ stability frontier",
    )
    stream_common(p_front)
    p_front.add_argument("--schedulers",
                         help="comma-separated (default greedy,bucket,fifo)")
    p_front.add_argument("--lam", type=float, default=0.5,
                         help="placeholder rate; the frontier overwrites it "
                              "per probe")
    p_front.add_argument("--lam-min", type=float, default=0.05)
    p_front.add_argument("--lam-max", type=float, default=4.0)
    p_front.add_argument("--rounds", type=int, default=6,
                         help="bisection rounds after the two bracketing probes")
    p_front.add_argument("--resume", metavar="PATH", default=None,
                         help="probe log for crash-resumable searches: probes "
                              "are appended as they finish and replayed on "
                              "restart")
    p_front.add_argument("--jobs", type=int, default=1,
                         help="worker processes per bisection round "
                              "(0 = cpu count); results identical to --jobs 1")
    p_front.set_defaults(func=cmd_frontier)

    p_cov = sub.add_parser("cover", help="build and verify a sparse cover")
    p_cov.add_argument("--topology", required=True)
    p_cov.add_argument("--seed", type=int, default=0)
    p_cov.set_defaults(func=cmd_cover)

    p_topo = sub.add_parser(
        "topo", help="inspect a topology: size, diameter, distance oracle"
    )
    p_topo.add_argument("action", choices=["info"])
    p_topo.add_argument("topology", help="topology spec, e.g. grid:100x100")
    p_topo.set_defaults(func=cmd_topo)

    p_rep = sub.add_parser("replay", help="re-certify and replay an archived trace")
    p_rep.add_argument("--topology", required=True)
    p_rep.add_argument("--trace", required=True, help="trace JSON written by `run --trace`")
    p_rep.add_argument("--hop-motion", action="store_true")
    p_rep.add_argument("--link-capacity", type=int, default=None)
    p_rep.add_argument("--node-capacity", type=int, default=None)
    p_rep.add_argument("--json", action="store_true")
    p_rep.set_defaults(func=cmd_replay)

    p_suite = sub.add_parser("suite", help="run a JSON-defined experiment suite")
    p_suite.add_argument("--file", required=True, help="JSON array of run configs")
    p_suite.add_argument("--json", action="store_true")
    p_suite.add_argument("--jobs", type=int, default=1,
                         help="worker processes (0 = cpu count)")
    p_suite.set_defaults(func=cmd_suite)

    p_prof = sub.add_parser(
        "profile", help="cProfile one run; print the top-N hottest functions"
    )
    common(p_prof)
    p_prof.add_argument("--scheduler", default="greedy", choices=SCHEDULER_NAMES)
    p_prof.add_argument("--top", type=int, default=20,
                        help="number of functions to show")
    p_prof.add_argument("--sort", choices=["cumulative", "cumtime", "tottime"],
                        default="cumulative",
                        help="'cumtime' is the pstats spelling of 'cumulative'")
    p_prof.set_defaults(func=cmd_profile)

    p_chaos = sub.add_parser(
        "chaos", help="chaos-search harness: seeded fault sweeps and replay"
    )
    p_chaos.add_argument("action", choices=["sweep", "replay"])
    p_chaos.add_argument("artifact", nargs="?", default=None,
                         help="artifact JSON path (replay action)")
    p_chaos.add_argument("--episodes", type=int, default=50)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--topology", default="ring:12")
    p_chaos.add_argument("--schedulers", default=None,
                         help="comma-separated rotation (default: 8 bundled)")
    p_chaos.add_argument("--workload", default="bernoulli",
                         choices=["batch", "bernoulli"])
    p_chaos.add_argument("--objects", type=int, default=6)
    p_chaos.add_argument("--k", type=int, default=2)
    p_chaos.add_argument("--horizon", type=int, default=40)
    p_chaos.add_argument("--drop", type=float, default=0.05)
    p_chaos.add_argument("--delay", type=float, default=0.1)
    p_chaos.add_argument("--max-delay", type=int, default=3)
    p_chaos.add_argument("--crashes", type=int, default=1)
    p_chaos.add_argument("--crash-len", type=int, default=6)
    p_chaos.add_argument("--partitions", type=int, default=1)
    p_chaos.add_argument("--partition-len", type=int, default=8)
    p_chaos.add_argument("--joins", type=int, default=0,
                         help="elastic-membership joins per episode plan")
    p_chaos.add_argument("--leaves", type=int, default=0,
                         help="elastic-membership leaves per episode plan "
                              "(drawn connectivity-safe)")
    p_chaos.add_argument("--lambda-mult", type=float, default=1.0,
                         help="scale each episode's arrival rate (2.0 = "
                              "sustained 2x overload; exercises shedding)")
    p_chaos.add_argument("--deadline-frac", type=float, default=0.0,
                         help="fraction of episode transactions given a "
                              "commit deadline via the ingestion front-end "
                              "(0 = service disabled)")
    p_chaos.add_argument("--stall-k", type=int, default=512)
    p_chaos.add_argument("--resume", metavar="PATH", default=None,
                         help="episode log for crash-resumable sweeps: "
                              "finished episodes are appended and replayed "
                              "on restart")
    p_chaos.add_argument("--shrink", action="store_true",
                         help="delta-debug failing plans to minimal reproducers")
    p_chaos.add_argument("--artifact-dir", default=None,
                         help="write replayable failure artifacts here")
    p_chaos.add_argument("--jobs", type=int, default=1,
                         help="worker processes for episodes and shrink "
                              "candidates (0 = cpu count); deterministic")
    p_chaos.add_argument("--json", action="store_true")
    p_chaos.add_argument("--quiet", action="store_true")
    p_chaos.set_defaults(func=cmd_chaos)

    p_ckpt = sub.add_parser(
        "checkpoint", help="inspect durability checkpoints (repro.durability)"
    )
    p_ckpt.add_argument("action", choices=["inspect"])
    p_ckpt.add_argument("path", help="checkpoint file written by --checkpoint")
    p_ckpt.add_argument("--json", action="store_true")
    p_ckpt.set_defaults(func=cmd_checkpoint)
    return parser


def main(argv: Optional[list] = None) -> int:
    from repro.errors import RunInterrupted

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except RunInterrupted as exc:
        # SIGTERM/SIGINT mid-run with --checkpoint: the engine wrote a
        # final snapshot and fsynced every probe before raising.
        print(
            f"interrupted: checkpoint written to {exc.path} "
            f"(continue with --resume {exc.path})",
            file=sys.stderr,
        )
        return 3
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
