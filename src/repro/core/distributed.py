"""Algorithm 3: the distributed bucket schedule (paper Section V).

The centralized bucket scheduler assumes a clairvoyant authority.  Here
every step of the protocol pays real message latency on the communication
graph:

1. **Discovery** — a new transaction probes the current position of each
   of its objects.  Probes travel at full speed; objects move at *half*
   speed (the engine must run with ``object_speed_den = 2``), so a probe
   chasing a moving object converges (Section V's 2x rule).  Probes follow
   forwarding pointers: a probe landing where the object used to be is
   forwarded toward the object's current position/destination, one paid
   hop at a time.
2. **Conflict collection** — the probed object answers with the
   conflicting transactions known at its node (the paper's object-carried
   metadata), and with its own position.
3. **Cluster choice & report** — the transaction computes ``y`` (furthest
   object or conflicting transaction) and reports to the leader of its
   home cluster at the lowest layer whose pad covers the
   ``y``-neighborhood (Algorithm 3 lines 4-6).
4. **Partial buckets** — the leader inserts the transaction into its
   partial ``i``-bucket.  All partial ``i``-buckets activate at the global
   times divisible by ``2**i``.  Leaders activating at the same step are
   processed in lexicographic ``(height, leader)`` order — justified by
   Corollary 1 (no conflicts between partial i-buckets within a sub-layer)
   and the height-ordered accounting of Lemma 8.
5. **Notification** — schedules computed by a leader only take effect
   after they can reach the transaction and its objects: every planned
   execution offset is floored by twice the leader's cluster eccentricity.

Modeling notes (see DESIGN.md "Substitutions"): object metadata reads are
taken from ground truth *at the probed node and time* rather than
replicated state machines, and leaders plan against the true object
positions at activation (their cluster, by construction, contains every
conflicting transaction that reported at the same sub-layer).  All
latencies — probing, chasing, reporting, notification — are paid for
real and show up in experiment E8's centralized-vs-distributed overhead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.core.base import OnlineScheduler
from repro.cover.sparse_cover import Cluster, SparseCover, build_sparse_cover
from repro.errors import SchedulingError
from repro.offline.base import BatchScheduler, SimStateView
from repro.sim.messages import Message
from repro.sim.transactions import Transaction


class _Discovery:
    """In-flight discovery session of one transaction."""

    __slots__ = ("txn", "awaiting", "object_bounds", "conflict_homes", "hops")

    def __init__(self, txn: Transaction) -> None:
        self.txn = txn
        self.awaiting: Set[ObjectId] = set(txn.all_objects)
        self.object_bounds: Dict[ObjectId, Time] = {}
        self.conflict_homes: Set[NodeId] = set()
        self.hops = 0


class DistributedBucketScheduler(OnlineScheduler):
    """Distributed bucket scheduler (Algorithm 3).

    Parameters
    ----------
    batch:
        Offline batch scheduler ``A`` used by every leader.
    seed:
        Seed for the sparse-cover construction.
    cover:
        Pre-built :class:`SparseCover` (built from the graph otherwise).
    max_level:
        Bucket level cap; defaults to Lemma 3's ``ceil(log2(n*D)) + 1``
        (with the half-speed factor folded in).
    max_chase_hops:
        Safety valve on probe chases (the 2x speed rule bounds real
        chases; this guards against scheduler bugs).
    discovery:
        ``"probe"`` (default) sends the initial probe to the object's
        last-known position read from ground truth — the documented
        idealization.  ``"arrow"`` routes the initial find along an
        Arrow spanning-tree directory maintained purely by object-motion
        events: no ground-truth reads, tree-path latencies and pointer
        maintenance messages all paid (bench E18).
    """

    def __init__(
        self,
        batch: BatchScheduler,
        seed: Optional[int] = None,
        *,
        cover: Optional[SparseCover] = None,
        max_level: Optional[int] = None,
        max_chase_hops: int = 64,
        discovery: str = "probe",
    ) -> None:
        super().__init__()
        if discovery not in ("probe", "arrow"):
            raise SchedulingError(f"unknown discovery mode {discovery!r}")
        self.batch = batch
        self.seed = seed
        self.cover = cover
        self._max_level_override = max_level
        self.max_chase_hops = max_chase_hops
        self.discovery_mode = discovery
        self.directory = None
        self.max_level: int = 0
        #: (cluster, level) -> pending transactions
        self.partial: Dict[Tuple[Cluster, int], List[Transaction]] = {}
        self._discovery: Dict[TxnId, _Discovery] = {}
        self._ecc_cache: Dict[Cluster, Time] = {}
        #: analysis hooks
        self.message_counts: Dict[str, int] = {"probe": 0, "probe-resp": 0, "report": 0}
        self.insert_log: List[Tuple[TxnId, int, Tuple[int, int], Time]] = []
        self.activation_log: List[Tuple[int, Time, int]] = []
        #: (tid, cluster, report_time) — which home cluster each
        #: transaction reported to (Lemma 5/6 empirical checks)
        self.report_log: List[Tuple[TxnId, Cluster, Time]] = []

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        super().bind(sim)
        if sim.object_speed_den < 2:
            raise SchedulingError(
                "DistributedBucketScheduler requires object_speed_den >= 2 "
                "(the half-speed rule of Section V); construct the Simulator "
                "with object_speed_den=2"
            )
        if self.cover is None:
            self.cover = build_sparse_cover(sim.graph, seed=self.seed)
        if self.discovery_mode == "arrow":
            from repro.directory.arrow import ArrowDirectory

            self.directory = ArrowDirectory(sim.graph)
            for oid, obj in sim.objects.items():
                self.directory.register(oid, obj.location)

            def observe(event, obj, t):
                if event == "register":
                    self.directory.register(obj.oid, obj.location)
                elif event == "arrive":
                    self.directory.move(obj.oid, obj.location)

            sim.add_object_observer(observe)
        n = sim.graph.num_nodes
        d = max(1, sim.graph.diameter())
        lemma3 = math.ceil(math.log2(max(2, n * d * sim.object_speed_den))) + 1
        self.max_level = self._max_level_override if self._max_level_override is not None else lemma3

    # ------------------------------------------------------------------
    # step handling
    # ------------------------------------------------------------------
    #: Incremental protocol: discovery starts on arrival, activations on
    #: due periods; everything else travels by message callback.
    wants_deltas = True

    def on_deltas(self, t: Time, deltas) -> None:
        assert self.sim is not None
        for txn in deltas.arrived:
            self._start_discovery(txn, t)
        self._activate_due(t)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        for txn in new_txns:
            self._start_discovery(txn, t)
        self._activate_due(t)

    def _due_levels(self, t: Time) -> List[int]:
        return [i for i in range(self.max_level + 1) if t % (1 << i) == 0]

    def _activate_due(self, t: Time) -> None:
        if not self.partial:
            return
        due = set(self._due_levels(t))
        if not due:
            return
        ready = [
            (level, cluster)
            for (cluster, level), txns in self.partial.items()
            if txns and level in due
        ]
        # Lowest level first; within a level, by (height, leader).
        ready.sort(key=lambda lc: (lc[0], lc[1].height, lc[1].leader, lc[1].index))
        for level, cluster in ready:
            self._activate(cluster, level, t)

    def _activate(self, cluster: Cluster, level: int, t: Time) -> None:
        bucket = self.partial.pop((cluster, level), [])
        live = [x for x in bucket if x.exec_time is None]
        if not live:
            return
        view = SimStateView(self.sim, t)
        floor = self._notify_floor(cluster)
        plan = self.batch.plan(view, live, floor=floor)
        for txn in live:
            self.sim.commit_schedule(txn, t + plan[txn.tid])
        self.activation_log.append((level, t, len(live)))
        self.emit("activate", t, level=level, size=len(live), leader=cluster.leader)

    def _notify_floor(self, cluster: Cluster) -> Time:
        """Schedule-dissemination delay: leader -> furthest member and back."""
        ecc = self._ecc_cache.get(cluster)
        if ecc is None:
            d = self.sim.graph.distances_from(cluster.leader)
            ecc = max((d[v] for v in cluster.nodes), default=0)
            self._ecc_cache[cluster] = ecc
        return 2 * ecc + 1

    # ------------------------------------------------------------------
    # discovery protocol
    # ------------------------------------------------------------------
    def _start_discovery(self, txn: Transaction, t: Time) -> None:
        disc = _Discovery(txn)
        self._discovery[txn.tid] = disc
        if not txn.all_objects:
            self._report(disc, t)
            return
        for oid in txn.all_objects:
            if self.directory is not None:
                # Honest discovery: route the find along the directory's
                # pointer path, one paid tree hop at a time.
                route = self.directory.find(oid, txn.home)
                if len(route) <= 1:
                    # pointers converge here; inspect locally
                    self._send_probe(t, txn.home, txn.home, txn.tid, oid, hops=0)
                else:
                    self._send_hop(t, txn.tid, oid, tuple(route), index=0)
                continue
            obj = self.sim.objects[oid]
            target = obj.dest if obj.in_transit else obj.location
            self._send_probe(t, txn.home, target, txn.tid, oid, hops=0)

    def _send_hop(self, t: Time, tid: TxnId, oid: ObjectId, route, index: int) -> None:
        """Forward a directory find one tree hop."""
        self.message_counts["probe"] += 1
        self.emit("probe-msg", t, kind="probe-hop")
        self.sim.router.send(
            t,
            route[index],
            route[index + 1],
            "probe-hop",
            {"tid": tid, "oid": oid, "route": route, "index": index + 1},
            self._on_probe_hop,
        )

    def _on_probe_hop(self, now: Time, msg) -> None:
        payload = msg.payload
        route, index = payload["route"], payload["index"]
        if index + 1 < len(route):
            self._send_hop(now, payload["tid"], payload["oid"], route, index)
            return
        # Reached the directory home: hand over to the normal probe logic
        # (which chases breadcrumbs if the object has moved on).
        self._send_probe(now, route[index], route[index], payload["tid"], payload["oid"], hops=0)

    def _send_probe(self, t: Time, src: NodeId, dst: NodeId, tid: TxnId, oid: ObjectId, hops: int) -> None:
        self.message_counts["probe"] += 1
        self.emit("probe-msg", t, kind="probe")
        self.sim.router.send(
            t, src, dst, "probe", {"tid": tid, "oid": oid, "hops": hops}, self._on_probe
        )

    def _on_probe(self, now: Time, msg: Message) -> None:
        payload = msg.payload
        oid, tid, hops = payload["oid"], payload["tid"], payload["hops"]
        obj = self.sim.objects[oid]
        here = msg.dst
        at_rest_here = (not obj.in_transit) and obj.location == here
        if not at_rest_here:
            # Forwarding pointer: chase the object's current whereabouts.
            if hops >= self.max_chase_hops:
                raise SchedulingError(f"probe for object {oid} exceeded chase budget")
            target = obj.dest if obj.in_transit else obj.location
            if target == here:
                # Object is in transit *to* this node: wait for its arrival
                # (one self-message delayed until then), then re-check.
                wait = max(0, (obj.arrive_time or now) - now)
                self.message_counts["probe"] += 1
                self.emit("probe-msg", now, kind="probe-wait")
                self.sim.router.send(
                    now, here, here, "probe",
                    {"tid": tid, "oid": oid, "hops": hops + 1},
                    self._on_probe, extra_delay=wait,
                )
                return
            self._send_probe(now, here, target, tid, oid, hops + 1)
            return
        # Object found: answer with position and conflict metadata (the
        # object-carried information of Section V).
        disc = self._discovery.get(tid)
        if disc is None:
            return  # transaction already reported (duplicate probe)
        txn = disc.txn
        conflicts = tuple(
            other.home
            for other in (*self.sim.live_requesters(oid), *self.sim.live_readers(oid))
            if other.tid != tid
        )
        self.message_counts["probe-resp"] += 1
        self.emit("probe-msg", now, kind="probe-resp")
        self.sim.router.send(
            now,
            here,
            txn.home,
            "probe-resp",
            {"tid": tid, "oid": oid, "pos": here, "conflicts": conflicts, "hops": hops},
            self._on_probe_resp,
        )

    def _on_probe_resp(self, now: Time, msg: Message) -> None:
        payload = msg.payload
        tid, oid = payload["tid"], payload["oid"]
        disc = self._discovery.get(tid)
        if disc is None or oid not in disc.awaiting:
            return
        disc.awaiting.discard(oid)
        disc.hops = max(disc.hops, payload["hops"])
        dist = self.sim.graph.distance(payload["pos"], disc.txn.home)
        disc.object_bounds[oid] = dist
        disc.conflict_homes.update(payload["conflicts"])
        if not disc.awaiting:
            self._report(disc, now)

    def _report(self, disc: _Discovery, t: Time) -> None:
        """Algorithm 3 lines 4-6: pick the home cluster and report."""
        txn = disc.txn
        x = max(disc.object_bounds.values(), default=0)
        conflict_dist = max(
            (self.sim.graph.distance(txn.home, h) for h in disc.conflict_homes), default=0
        )
        y = max(x, conflict_dist)
        layer = self.cover.lowest_layer_covering(txn.home, y)
        cluster = self.cover.home_cluster(txn.home, layer)
        self.report_log.append((txn.tid, cluster, t))
        self.message_counts["report"] += 1
        self.emit("probe-msg", t, kind="report")
        self.sim.router.send(
            t, txn.home, cluster.leader, "report", {"tid": txn.tid, "cluster": cluster}, self._on_report
        )
        del self._discovery[txn.tid]

    def _on_report(self, now: Time, msg: Message) -> None:
        cluster: Cluster = msg.payload["cluster"]
        txn = self.sim.txns[msg.payload["tid"]]
        if txn.exec_time is not None:
            return
        view = SimStateView(self.sim, now)
        # Skip levels that cannot hold the transaction alone (same lower
        # bound as the centralized bucket's fast path).
        solo = self.batch.completion_time(view, [txn])
        start = max(0, math.ceil(math.log2(max(1, solo))))
        for level in range(start, self.max_level + 1):
            bucket = self.partial.get((cluster, level), [])
            candidate = [x for x in bucket if x.exec_time is None] + [txn]
            if self.batch.completion_time(view, candidate) <= (1 << level):
                self.partial.setdefault((cluster, level), []).append(txn)
                self.insert_log.append((txn.tid, level, cluster.height, now))
                self.emit("bucket-insert", now, tid=txn.tid, level=level, height=cluster.height)
                return
        self.partial.setdefault((cluster, self.max_level), []).append(txn)
        self.insert_log.append((txn.tid, self.max_level, cluster.height, now))
        self.emit("bucket-insert", now, tid=txn.tid, level=self.max_level, height=cluster.height)

    # ------------------------------------------------------------------
    def next_wake_after(self, t: Time) -> Optional[Time]:
        wakes = []
        for (cluster, level), txns in self.partial.items():
            if any(x.exec_time is None for x in txns):
                p = 1 << level
                wakes.append(((t // p) + 1) * p)
        return min(wakes) if wakes else None

    def has_pending(self) -> bool:
        if self._discovery:
            return True
        return any(any(x.exec_time is None for x in txns) for txns in self.partial.values())
