"""The paper's contribution: online DTM schedulers."""

from repro.core.adaptive import AdaptiveScheduler, pick_batch_scheduler
from repro.core.base import OnlineScheduler
from repro.core.bucket import BucketScheduler
from repro.core.coloring import min_valid_color
from repro.core.coordinated import CoordinatedGreedyScheduler
from repro.core.dependency import DependencyTracker, constraints_for
from repro.core.distributed import DistributedBucketScheduler
from repro.core.greedy import GreedyScheduler
from repro.core.replay import ReplayScheduler
from repro.core.windowed import WindowedBatchScheduler

__all__ = [
    "OnlineScheduler",
    "GreedyScheduler",
    "CoordinatedGreedyScheduler",
    "BucketScheduler",
    "DistributedBucketScheduler",
    "ReplayScheduler",
    "AdaptiveScheduler",
    "pick_batch_scheduler",
    "WindowedBatchScheduler",
    "constraints_for",
    "DependencyTracker",
    "min_valid_color",
]
