"""Online scheduler interface.

A scheduler never moves objects and never executes transactions — it only
assigns execution times through :meth:`Simulator.commit_schedule`, and a
committed time is never revised (the no-revision property the paper calls
out at the end of Section II).  The engine is the ground truth for
feasibility.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro._types import Time
from repro.sim.engine import Simulator
from repro.sim.transactions import Transaction


class OnlineScheduler(abc.ABC):
    """Base class for all online schedulers."""

    #: Incremental protocol opt-in (docs/performance.md).  When True the
    #: engine calls :meth:`on_deltas` with the per-step delta feed
    #: instead of :meth:`on_step`; schedulers that leave it False keep
    #: the legacy full-scan entry point, byte-identical to before.
    wants_deltas: bool = False

    def __init__(self) -> None:
        self.sim: Optional[Simulator] = None
        self._obs = None

    def bind(self, sim: Simulator) -> None:
        """Attach to a simulator; called once by the engine."""
        self.sim = sim
        # Cached observability fast path (None when the probe is the
        # default NullProbe) — see repro.obs.
        self._obs = getattr(sim, "_obs", None)

    def emit(self, event: str, t: Time, **fields) -> None:
        """Report a scheduler decision to the run's probe (repro.obs).

        No-op (one branch) when observability is disabled.  Event names
        and fields are catalogued in :mod:`repro.obs.probe`.
        """
        if self._obs is not None:
            self._obs.on_sched(event, t, **fields)

    @abc.abstractmethod
    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        """Handle one active time step.

        ``new_txns`` are the transactions generated at ``t`` (the paper's
        ``T_t^g``); they are live and unscheduled.  Implementations may
        schedule them now (greedy) or stash them for a later activation
        (bucket schedulers).
        """

    def on_deltas(self, t: Time, deltas) -> None:
        """Incremental entry point (active when ``wants_deltas`` is True).

        ``deltas`` is a :class:`repro.core.dependency.StepDeltas`: the
        arrivals of this step plus everything that changed since the
        scheduler last ran — departed tids, released objects, and the
        dirty set of pending transactions whose constraints moved.  A
        correct implementation must produce the exact same
        ``commit_schedule`` calls the full-scan ``on_step`` would (the
        differential suite in ``tests/test_incremental.py`` pins this
        for every bundled scheduler).

        The default delegates to :meth:`on_step` with the arrivals, which
        is sufficient for schedulers that only react to new transactions.
        """
        self.on_step(t, deltas.arrived)

    def on_reschedule(self, txn: Transaction, t: Time) -> None:
        """Recovery hook (:mod:`repro.faults`): ``txn`` missed its
        committed execution time — an object was lost or late, or its home
        node crashed — and the engine has just un-committed it.  Pick a new
        execution time (or re-enter pending machinery, as the bucket
        scheduler does).

        The default re-enters the greedy coloring path against the current
        dependency state and clamps the result to the engine's recovery
        floor (exponential backoff + home-node restart), so every
        scheduler degrades gracefully under faults without further code.
        Only ever called when ``SimConfig.faults`` is active; the paper's
        no-revision property holds untouched otherwise.
        """
        from repro.core.coloring import min_valid_color
        from repro.core.dependency import constraints_for

        assert self.sim is not None, "scheduler not bound to a simulator"
        cons = constraints_for(self.sim, txn, now=t)
        color = min_valid_color(cons)
        exec_time = max(t + color, self.sim.reschedule_floor(txn))
        self.emit("reschedule", t, tid=txn.tid, color=color, exec=exec_time)
        self.sim.commit_schedule(txn, exec_time)

    def on_membership(self, kind: str, node: int, t: Time) -> None:
        """Elastic-membership hook (:class:`repro.faults.MembershipPlan`):
        ``node`` joined (``kind="join"``) or left (``kind="leave"``) the
        graph at ``t``.  The engine has already mutated the graph /
        re-homed live transactions when this fires, so schedulers that
        cache per-node state may refresh it here.  The default is a no-op:
        the built-in schedulers consult the engine's live state every
        step, and joined nodes never home transactions, so nothing needs
        invalidating.
        """

    def next_wake_after(self, t: Time) -> Optional[Time]:
        """Earliest future step at which this scheduler must run even if no
        other event occurs (e.g. a bucket activation), or ``None``."""
        return None

    def has_pending(self) -> bool:
        """True while the scheduler holds generated-but-unscheduled work."""
        return False
