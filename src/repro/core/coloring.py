"""Weighted graph coloring primitives (paper Section III-A).

A *valid coloring* assigns integers to nodes so that adjacent nodes differ
by at least their edge weight (Equation 1).  Colors translate directly to
execution times: a color difference of ``w`` leaves enough steps for an
object to travel distance ``w`` between the two transactions.

:func:`min_valid_color` implements the constructive step of Lemma 1 — given
an arbitrary partial coloring of the neighbors, find the smallest valid
color — and :func:`min_valid_color_multiple` the uniform-weight refinement
of Lemma 2 (colors restricted to multiples of the common weight ``beta``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro._types import Weight

#: One coloring constraint: a neighbor's ``(color, edge_weight)``.
Constraint = Tuple[Weight, Weight]


def min_valid_color(constraints: Iterable[Constraint], floor: Weight = 1) -> Weight:
    """Smallest ``c >= floor`` with ``|c - color| >= weight`` for each
    constraint.

    Each constraint forbids the open interval
    ``(color - weight, color + weight)``.  We sort intervals by their lower
    end and sweep a candidate upward; the candidate only moves forward, so
    the scan is a single pass after the ``O(k log k)`` sort — matching the
    per-node cost analysis at the end of Section III-B.

    Lemma 1 guarantees the result is at most ``2*Gamma - Delta`` where
    ``Gamma`` is the weighted degree and ``Delta`` the plain degree of the
    node being colored (tests assert this bound).
    """
    intervals: List[Tuple[Weight, Weight]] = []
    for color, weight in constraints:
        if weight > 0:
            intervals.append((color - weight, color + weight))
    intervals.sort()
    candidate = floor
    for lo, hi in intervals:
        if lo < candidate < hi:
            candidate = hi
    return candidate


def min_valid_color_multiple(
    constraints: Iterable[Constraint], beta: Weight, floor_multiple: int = 1
) -> Weight:
    """Smallest valid color that is a positive multiple of ``beta``.

    Lemma 2: if all edge weights equal ``beta`` and every existing color is
    a multiple of ``beta``, then some multiple ``c <= Gamma`` is valid.  We
    additionally accept *mixed* constraints (weights up to ``beta``), still
    returning a multiple of ``beta`` — useful when holders sit closer than
    the uniform distance.
    """
    intervals: List[Tuple[Weight, Weight]] = []
    for color, weight in constraints:
        if weight > 0:
            intervals.append((color - weight, color + weight))
    intervals.sort()

    def round_up(x: Weight) -> Weight:
        k = int(-(-x // beta))  # ceil division
        return max(k, floor_multiple) * beta

    candidate = round_up(floor_multiple * beta)
    for lo, hi in intervals:
        if lo < candidate < hi:
            candidate = round_up(hi)
    return candidate


def coloring_violations(
    colors: Dict[Hashable, Weight],
    edges: Iterable[Tuple[Hashable, Hashable, Weight]],
) -> List[Tuple[Hashable, Hashable, Weight]]:
    """Edges ``(u, v, w)`` whose endpoints violate Equation 1.

    Endpoints missing from ``colors`` are ignored (partial colorings are
    valid as long as colored pairs satisfy the constraint).
    """
    bad = []
    for u, v, w in edges:
        if u in colors and v in colors and abs(colors[u] - colors[v]) < w:
            bad.append((u, v, w))
    return bad


def greedy_color_sequence(
    order: Sequence[Hashable],
    neighbor_constraints,
    *,
    beta: Weight = 0,
    existing: Dict[Hashable, Weight] = None,
) -> Dict[Hashable, Weight]:
    """Color ``order`` one by one against ``existing`` plus earlier picks.

    ``neighbor_constraints(node, colors)`` must return the constraint list
    of ``node`` against the currently colored set.  With ``beta > 0`` the
    Lemma 2 multiple-of-beta rule is used.  Returns only the new colors.
    """
    colors: Dict[Hashable, Weight] = dict(existing or {})
    out: Dict[Hashable, Weight] = {}
    for node in order:
        cons = neighbor_constraints(node, colors)
        if beta > 0:
            c = min_valid_color_multiple(cons, beta)
        else:
            c = min_valid_color(cons)
        colors[node] = c
        out[node] = c
    return out
