"""Adaptive scheduler: pick the right paper algorithm for the topology.

The paper's results split cleanly by diameter: the greedy schedule is
near-optimal on small-diameter graphs (Sections III-C/D), while the
bucket conversion carries the guarantees on large-diameter graphs
(Section IV-D).  This wrapper encodes that decision rule so a user who
doesn't know their topology's regime still gets the right algorithm —
and it picks the topology-aware offline scheduler when the graph carries
a known layout.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro._types import Time
from repro.core.base import OnlineScheduler
from repro.core.bucket import BucketScheduler
from repro.core.greedy import GreedyScheduler
from repro.network.topologies import ClusterLayout, StarLayout
from repro.offline.base import BatchScheduler
from repro.offline.cluster import ClusterBatchScheduler
from repro.offline.coloring_batch import ColoringBatchScheduler
from repro.offline.line import LineBatchScheduler
from repro.offline.star import StarBatchScheduler
from repro.sim.transactions import Transaction


def pick_batch_scheduler(graph) -> BatchScheduler:
    """Topology-aware offline scheduler when the structure is known."""
    layout = getattr(graph, "layout", None)
    if isinstance(layout, ClusterLayout):
        return ClusterBatchScheduler()
    if isinstance(layout, StarLayout):
        return StarBatchScheduler()
    name = getattr(graph, "name", "")
    if name.startswith(("line", "ring")):
        return LineBatchScheduler()
    return ColoringBatchScheduler("degree")


class AdaptiveScheduler(OnlineScheduler):
    """Greedy below the diameter threshold, bucket above it.

    ``threshold_factor``: use greedy while
    ``diameter <= threshold_factor * log2(n)`` (the Section III regime),
    else the bucket conversion of :func:`pick_batch_scheduler`'s choice.
    The decision and its inputs are exposed for inspection.
    """

    def __init__(self, threshold_factor: float = 2.0) -> None:
        super().__init__()
        self.threshold_factor = threshold_factor
        self.delegate: Optional[OnlineScheduler] = None
        self.choice: str = ""

    def bind(self, sim) -> None:
        super().bind(sim)
        n = sim.graph.num_nodes
        d = sim.graph.diameter()
        if d <= self.threshold_factor * max(1, math.log2(max(2, n))):
            self.delegate = GreedyScheduler()
            self.choice = "greedy"
        else:
            self.delegate = BucketScheduler(pick_batch_scheduler(sim.graph))
            self.choice = f"bucket({self.delegate.batch.name})"
        self.delegate.bind(sim)
        self.emit("adaptive", 0, choice=self.choice)

    @property
    def wants_deltas(self) -> bool:
        # Resolved by the engine *after* bind, when the delegate exists;
        # forwards the delegate's protocol choice.
        return self.delegate is not None and bool(
            getattr(self.delegate, "wants_deltas", False)
        )

    def on_deltas(self, t: Time, deltas) -> None:
        self.delegate.on_deltas(t, deltas)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        self.delegate.on_step(t, new_txns)

    def next_wake_after(self, t: Time) -> Optional[Time]:
        return self.delegate.next_wake_after(t)

    def has_pending(self) -> bool:
        return self.delegate.has_pending()
