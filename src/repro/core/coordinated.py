"""Section III-E: the simple centralized online scheduler.

The greedy schedules of Section III assume a clairvoyant central
authority.  Section III-E's remedy for low-diameter graphs: a designated
coordinator node collects information as transactions are generated and
objects move, so each scheduling decision costs one information round-trip
— scaling every bound by O(diameter) (= O(log n) on the graphs of Section
III).

This scheduler simulates exactly that: a new transaction's request
travels to the coordinator (message latency = distance), the coordinator
colors it against its (current, accurate) view, and the decision travels
back before it can take effect — the committed execution time is floored
by the return latency.  Compared to :class:`GreedyScheduler` the measured
latencies inflate by ~2·dist(home, coordinator), exactly the Section III-E
prediction; compared to :class:`DistributedBucketScheduler` there is no
hierarchy — one node sees everything.
"""

from __future__ import annotations

from typing import List, Optional

from repro._types import NodeId, Time
from repro.core.base import OnlineScheduler
from repro.core.coloring import min_valid_color
from repro.core.dependency import constraints_for
from repro.sim.messages import Message
from repro.sim.transactions import Transaction


class CoordinatedGreedyScheduler(OnlineScheduler):
    """Greedy coloring through a single coordinator node (Section III-E).

    Parameters
    ----------
    coordinator:
        The designated node.  Defaults to a graph center (a node of
        minimum eccentricity), which minimizes the worst round-trip.
    """

    def __init__(self, coordinator: Optional[NodeId] = None) -> None:
        super().__init__()
        self._coordinator_arg = coordinator
        self.coordinator: NodeId = 0
        #: analysis hook: (tid, request_latency, color)
        self.decision_log: List[tuple] = []

    def bind(self, sim) -> None:
        super().bind(sim)
        if self._coordinator_arg is not None:
            self.coordinator = self._coordinator_arg
        else:
            g = sim.graph
            self.coordinator = min(g.nodes(), key=lambda u: (g.eccentricity(u), u))

    #: Incremental protocol: requests fire on arrival only; the O(live)
    #: has_pending scan becomes an O(1) pending-index read.
    wants_deltas = True

    def on_deltas(self, t: Time, deltas) -> None:
        if deltas.arrived:
            self.on_step(t, deltas.arrived)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        for txn in new_txns:
            # Request: home -> coordinator.
            self.sim.router.send(
                t, txn.home, self.coordinator, "sched-request", {"tid": txn.tid}, self._on_request
            )

    def _on_request(self, now: Time, msg: Message) -> None:
        txn = self.sim.txns[msg.payload["tid"]]
        if txn.exec_time is not None:
            return
        # The coordinator decides with its accurate global view, but the
        # decision only takes effect once it has travelled back: floor the
        # color by the return latency.
        back = max(1, self.sim.graph.distance(self.coordinator, txn.home))
        cons = constraints_for(self.sim, txn, now=now)
        color = min_valid_color(cons, floor=back)
        self.decision_log.append((txn.tid, now - txn.gen_time, color))
        self.emit("coord-color", now, tid=txn.tid, color=color, rtt=now - txn.gen_time + back)
        self.sim.commit_schedule(txn, now + color)

    def has_pending(self) -> bool:
        # In-flight requests keep the engine alive via the router already;
        # report pending while any live transaction is unscheduled.  The
        # pending index maintains exactly that set, O(1) per run-loop
        # iteration instead of scanning the live table.
        sim = self.sim
        if sim is None:
            return False
        index = getattr(sim, "pending", None)
        if index is not None:
            return index.has_unscheduled
        return any(x.exec_time is None for x in sim.live.values())
