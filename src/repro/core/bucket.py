"""Algorithm 2: the online bucket schedule (paper Section IV).

Converts any offline batch scheduler ``A`` into an online scheduler.
Bucket ``B_i`` holds unscheduled transactions whose batch, given the fixed
already-scheduled set ``T^s``, executes within ``2**i`` steps; ``B_i``
activates every ``2**i`` steps, at which point its contents are scheduled
by ``A`` (append-after: committed execution times are never revised).
Simultaneous activations are processed lowest level first, so higher
buckets see the lower buckets' fresh commitments as part of ``T^s``
(Algorithm 2's tie-breaking rule).

Reproduced guarantees (experiments E4-E7):

* Lemma 3 — bucket levels never exceed ``log2(n*D) + 1``;
* Lemma 4 — a transaction inserted into ``B_i`` at time ``t`` executes by
  ``t + (i+1) * 2**(i+2)``;
* Theorem 4 — competitive ratio ``O(b_A * log^3(n*D))``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro._types import Time, TxnId
from repro.core.base import OnlineScheduler
from repro.offline.base import BatchScheduler, SimStateView
from repro.sim.transactions import Transaction


class BucketScheduler(OnlineScheduler):
    """Online bucket scheduler (Algorithm 2).

    Parameters
    ----------
    batch:
        The offline batch scheduler ``A`` (already feasible in
        append-after mode; see :mod:`repro.offline`).
    max_level:
        Cap on bucket levels.  Defaults to ``ceil(log2(n * D)) + 1``
        (Lemma 3).  A transaction that fits nowhere (numerically
        impossible per Lemma 3, kept as a safety net) goes to the top
        bucket.
    align:
        If True (default), ``B_i`` activates at global times divisible by
        ``2**i``.  The paper notes alignment is not required; ``False``
        activates each level ``2**i`` steps after its previous activation,
        exercised by the ablation bench.
    """

    def __init__(
        self,
        batch: BatchScheduler,
        max_level: Optional[int] = None,
        align: bool = True,
    ) -> None:
        super().__init__()
        self.batch = batch
        self._max_level_override = max_level
        self.align = align
        self.max_level: int = 0
        self.buckets: Dict[int, List[Transaction]] = {}
        self._last_activation: Dict[int, Time] = {}
        #: analysis hooks (experiments E4): insertion and activation events
        self.insert_log: List[Tuple[TxnId, int, Time]] = []
        self.activation_log: List[Tuple[int, Time, int]] = []

    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        super().bind(sim)
        n = sim.graph.num_nodes
        d = max(1, sim.graph.diameter())
        lemma3 = math.ceil(math.log2(max(2, n * d * sim.object_speed_den))) + 1
        self.max_level = self._max_level_override if self._max_level_override is not None else lemma3
        self.buckets = {i: [] for i in range(self.max_level + 1)}
        self._last_activation = {i: 0 for i in range(self.max_level + 1)}

    # ------------------------------------------------------------------
    def _period(self, level: int) -> Time:
        return 1 << level

    def _due_levels(self, t: Time) -> List[int]:
        due = []
        for i in range(self.max_level + 1):
            p = self._period(i)
            if self.align:
                if t % p == 0:
                    due.append(i)
            else:
                if t - self._last_activation[i] >= p:
                    due.append(i)
        return due

    #: Incremental protocol: arrivals and activations only — the state
    #: view is built lazily, so steps with no insertions and only empty
    #: due buckets touch nothing but the activation bookkeeping.
    wants_deltas = True

    def on_deltas(self, t: Time, deltas) -> None:
        assert self.sim is not None
        if deltas.arrived:
            view = SimStateView(self.sim, t)
            for txn in deltas.arrived:
                self._insert(view, txn, t)
        # _activate updates _last_activation even for empty buckets
        # (align=False periods are measured from it), matching on_step.
        for level in self._due_levels(t):
            self._activate(level, t)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        view = SimStateView(self.sim, t)
        # Algorithm 2 line 4: insert each newly generated transaction into
        # the smallest bucket whose batch still fits its 2**i budget.
        for txn in new_txns:
            self._insert(view, txn, t)
        # Lines 5-8: activate due buckets, lowest level first.
        for level in self._due_levels(t):
            self._activate(level, t)

    def _insert(self, view: SimStateView, txn: Transaction, t: Time) -> None:
        # F_A of any bucket containing T is at least F_A({T}) alone, so
        # levels whose budget cannot even hold T solo are skipped without
        # planning the whole bucket (a large constant-factor win measured
        # in docs/performance.md — most dry runs used to fail these
        # low levels one by one).
        solo = self.batch.completion_time(view, [txn])
        start = max(0, math.ceil(math.log2(max(1, solo))))
        for level in range(start, self.max_level + 1):
            candidate = self.buckets[level] + [txn]
            if self.batch.completion_time(view, candidate) <= self._period(level):
                self.buckets[level].append(txn)
                self.insert_log.append((txn.tid, level, t))
                self.emit("bucket-insert", t, tid=txn.tid, level=level)
                return
        # Safety net: Lemma 3 says this cannot happen for feasible instances.
        self.buckets[self.max_level].append(txn)
        self.insert_log.append((txn.tid, self.max_level, t))
        self.emit("bucket-insert", t, tid=txn.tid, level=self.max_level)

    def _activate(self, level: int, t: Time) -> None:
        self._last_activation[level] = t
        bucket = self.buckets[level]
        if not bucket:
            return
        view = SimStateView(self.sim, t)
        plan = self.batch.plan(view, bucket)
        for txn in bucket:
            self.sim.commit_schedule(txn, t + plan[txn.tid])
        self.activation_log.append((level, t, len(bucket)))
        self.emit("activate", t, level=level, size=len(bucket))
        self.buckets[level] = []

    def on_reschedule(self, txn: Transaction, t: Time) -> None:
        """Recovery hook (:mod:`repro.faults`): a rescheduled transaction
        re-enters the normal insertion path — it lands in the smallest
        bucket whose batch still fits and is committed at that bucket's
        next activation, which naturally provides the recovery backoff."""
        assert self.sim is not None
        self._insert(SimStateView(self.sim, t), txn, t)

    # ------------------------------------------------------------------
    def next_wake_after(self, t: Time) -> Optional[Time]:
        wakes = []
        for i, bucket in self.buckets.items():
            if not bucket:
                continue
            p = self._period(i)
            if self.align:
                wakes.append(((t // p) + 1) * p)
            else:
                wakes.append(max(t + 1, self._last_activation[i] + p))
        return min(wakes) if wakes else None

    def has_pending(self) -> bool:
        return any(self.buckets.values())

    def pending_count(self) -> int:
        """Transactions sitting in buckets, not yet scheduled."""
        return sum(len(b) for b in self.buckets.values())
