"""Shared pending-transaction index for incremental scheduling.

:class:`PendingIndex` (``sim.pending``) is the engine-maintained
companion to the delta feed (:class:`repro.core.dependency.StepDeltas`):
where the feed says *what changed*, the index answers the recurring
scheduler queries in O(changed) instead of O(pending):

* **Unscheduled set** — the live transactions still waiting for an
  execution time, in arrival order.  Invariant: ``_unscheduled`` equals
  ``{tid: txn for tid, txn in sim.live.items() if txn.exec_time is
  None}`` after every engine phase.  ``CoordinatedScheduler.has_pending``
  and the run loop's quiescence check read it in O(1).
* **Per-object wait columns** — for each object (dense index, same
  interning as the engine's live accessor columns): the *scheduled*
  writers and readers still waiting to execute.  These power
  :class:`repro.offline.base.SimStateView` without filtering the full
  live accessor sets per query.  Invariant: ``sched_writers[idx]``
  equals ``{tid: txn for txn in sim.live_requesters(oid) if
  txn.exec_time is not None}``.
* **Constraint memo** — a within-step cache of
  :func:`repro.core.dependency.constraints_for` results, invalidated per
  transaction when a conflict neighbour is (un)scheduled mid-step.  The
  greedy scheduler's degree ordering computes every constraint set once
  into this memo and re-derives only the entries a same-step scheduling
  decision actually touched.

The engine feeds the index from the same lifecycle sites that feed the
dependency tracker (generate, schedule, recover, expire, commit), so it
is always consistent with the live set regardless of which scheduler —
incremental or legacy full-scan — is bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro._types import NodeId, Time, TxnId
from repro.core.coloring import Constraint
from repro.core.dependency import constraints_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.sim.engine import Simulator
    from repro.sim.transactions import Transaction


class PendingIndex:
    """Per-object wait columns, cached constraint sets, and the
    unscheduled set (see module docstring for the invariants)."""

    __slots__ = (
        "sim",
        "_unscheduled",
        "sched_writers",
        "sched_readers",
        "_memo",
        "_memo_t",
        "_stale",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: live transactions without an execution time, arrival order
        self._unscheduled: Dict[TxnId, "Transaction"] = {}
        #: per-object columns of *scheduled* waiting accessors
        self.sched_writers: List[Dict[TxnId, "Transaction"]] = []
        self.sched_readers: List[Dict[TxnId, "Transaction"]] = []
        #: within-step constraints_for memo: valid only while now == _memo_t
        self._memo: Dict[TxnId, List[Constraint]] = {}
        self._memo_t: Time = -1
        #: memo entries invalidated by a same-step scheduling change
        self._stale: Set[TxnId] = set()

    # -- engine lifecycle hooks ---------------------------------------
    def add_object_slot(self) -> None:
        """Mirror the engine's dense object interning (one column slot)."""
        self.sched_writers.append({})
        self.sched_readers.append({})

    def on_generate(self, txn: "Transaction") -> None:
        self._unscheduled[txn.tid] = txn

    def note_scheduled(self, txn: "Transaction") -> None:
        """``commit_schedule`` fixed ``txn``'s execution time."""
        sim = self.sim
        self._unscheduled.pop(txn.tid, None)
        objects = sim.objects
        tid = txn.tid
        for oid in txn.objects:
            self.sched_writers[objects[oid].index][tid] = txn
        for oid in txn.reads:
            self.sched_readers[objects[oid].index][tid] = txn
        # Pending conflict neighbours gained a constraint: drop their
        # memo entries and feed the cross-step dirty set.
        deps = sim.deps
        nbrs = deps.adj.get(tid)
        if nbrs:
            self._stale.update(nbrs)
            if deps.collect:
                deps._d_dirty.update(nbrs)

    def on_unschedule(self, txn: "Transaction") -> None:
        """Recovery revoked ``txn``'s execution time (fault layer)."""
        sim = self.sim
        tid = txn.tid
        self._unscheduled[tid] = txn
        objects = sim.objects
        for oid in txn.objects:
            self.sched_writers[objects[oid].index].pop(tid, None)
        for oid in txn.reads:
            self.sched_readers[objects[oid].index].pop(tid, None)
        self._stale.add(tid)
        deps = sim.deps
        nbrs = deps.adj.get(tid)
        if nbrs:
            self._stale.update(nbrs)
            if deps.collect:
                deps._d_dirty.add(tid)
                deps._d_dirty.update(nbrs)

    def on_retire(self, txn: "Transaction") -> None:
        """``txn`` left the live set (commit or deadline expiry)."""
        tid = txn.tid
        self._unscheduled.pop(tid, None)
        objects = self.sim.objects
        for oid in txn.objects:
            self.sched_writers[objects[oid].index].pop(tid, None)
        for oid in txn.reads:
            self.sched_readers[objects[oid].index].pop(tid, None)

    def invalidate_all(self) -> None:
        """Topology changed: every memoised constraint set is suspect."""
        self._memo.clear()
        self._stale.clear()

    # -- queries ------------------------------------------------------
    @property
    def has_unscheduled(self) -> bool:
        return bool(self._unscheduled)

    def unscheduled_count(self) -> int:
        return len(self._unscheduled)

    def constraints(self, txn: "Transaction", *, now: Time) -> List[Constraint]:
        """Memoised ``constraints_for``: at most one recomputation per
        transaction per step unless a same-step scheduling decision
        touched one of its conflict neighbours."""
        if now != self._memo_t:
            self._memo.clear()
            self._stale.clear()
            self._memo_t = now
        tid = txn.tid
        memo = self._memo
        cons = memo.get(tid)
        if cons is None or tid in self._stale:
            cons = constraints_for(self.sim, txn, now=now)
            memo[tid] = cons
            self._stale.discard(tid)
        return cons

    def scheduled_writer_pairs(self, index: int, now: Time) -> List[Tuple[Time, NodeId]]:
        """``(remaining_time, home)`` pairs of scheduled waiting writers
        of the object at dense ``index`` (SimStateView's query shape)."""
        return [
            (txn.exec_time - now, txn.home)
            for txn in self.sched_writers[index].values()
        ]

    def scheduled_reader_pairs(self, index: int, now: Time) -> List[Tuple[Time, NodeId]]:
        """Same as :meth:`scheduled_writer_pairs` for readers."""
        return [
            (txn.exec_time - now, txn.home)
            for txn in self.sched_readers[index].values()
        ]
