"""Replay scheduler: re-issue the execution times of an archived trace.

Debugging and regression tool: load a trace (``repro.sim.serialize``),
replay it against the same graph and workload, and the engine re-derives
the identical object motion — or raises precisely where the recorded
schedule no longer fits (e.g. after an engine semantics change).  Also
useful to re-run a schedule under *different* engine settings (capacity
limits, lazy departures) and observe the damage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.core.base import OnlineScheduler
from repro.errors import SchedulingError
from repro.sim.trace import ExecutionTrace
from repro.sim.transactions import Transaction


class ReplayScheduler(OnlineScheduler):
    """Assign each arriving transaction the execution time recorded for
    its counterpart in ``trace``.

    Transactions are matched by ``(gen_time, home, writes, reads)`` —
    transaction ids need not coincide with the original run (workload
    regeneration order may differ), but the multiset of transactions
    must.  Unmatched arrivals raise :class:`SchedulingError`.
    """

    def __init__(self, trace: ExecutionTrace) -> None:
        super().__init__()
        self._pool: Dict[Tuple, List[Time]] = {}
        for rec in trace.txns.values():
            key = (rec.gen_time, rec.home, tuple(sorted(rec.objects)), tuple(sorted(rec.reads)))
            self._pool.setdefault(key, []).append(rec.exec_time)
        for times in self._pool.values():
            times.sort()

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        for txn in sorted(new_txns, key=lambda x: x.tid):
            key = (txn.gen_time, txn.home, tuple(sorted(txn.objects)), tuple(sorted(txn.reads)))
            times = self._pool.get(key)
            if not times:
                raise SchedulingError(
                    f"replay: no recorded schedule for transaction {key}"
                )
            self.emit("replay", t, tid=txn.tid)
            self.sim.commit_schedule(txn, times.pop(0))

    def has_pending(self) -> bool:
        return False

    @property
    def unconsumed(self) -> int:
        """Recorded schedules not yet matched by an arrival."""
        return sum(len(v) for v in self._pool.values())
