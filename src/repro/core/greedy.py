"""Algorithm 1: the online greedy schedule (paper Section III).

Every newly generated transaction is immediately and permanently assigned
an execution time ``t + c(T)``, where ``c(T)`` is a valid color of the
extended dependency graph ``H'_t`` obtained by repeatedly applying Lemma 1
(or Lemma 2 when the graph has uniform edge weights) to the uncolored
transactions.

Guarantees reproduced by the tests and experiment E1/E2/E3:

* Theorem 1: ``T`` executes by ``t + 2*Gamma'_t(T) - Delta'_t(T)``.
* Theorem 2 (uniform weight ``beta``): ``T`` executes by
  ``t + Gamma'_t(T)`` and execution times are multiples of ``beta``.
* Theorem 3: O(k)-competitive on the clique; Section III-D: O(k log n)
  on hypercube / butterfly / log n-dimensional grid.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro._types import Time, Weight
from repro.core.base import OnlineScheduler
from repro.core.coloring import min_valid_color, min_valid_color_multiple
from repro.core.dependency import constraints_for
from repro.sim.transactions import Transaction


class GreedyScheduler(OnlineScheduler):
    """Online greedy coloring scheduler (Algorithm 1).

    Parameters
    ----------
    uniform_beta:
        If set, use the Lemma 2 rule: colors are positive multiples of
        ``beta``.  Correct when every pairwise node distance used by the
        workload is at most ``beta`` (e.g. ``beta = 1`` on the clique,
        ``beta = log2(n)`` on the hypercube).  The scheduler then *treats*
        the graph as a uniform-weight complete graph, exactly as Section
        III-D does for the hypercube.
    order:
        Order in which simultaneously generated transactions are colored:
        ``"arrival"`` (tid order, the default) or ``"degree"`` (smallest
        constraint set first — a practical tweak noted after Theorem 2,
        where Lemma 1 "can give better execution schedule when used in
        practice").
    weight_slack:
        Extra steps added to every positive constraint weight.  The base
        model assumes uncongested links; under the engine's bounded
        egress-capacity extension (Section VI's open question, bench
        E13), a slack of a few steps absorbs the serialization delay of
        objects queueing behind each other at a node.
    """

    def __init__(
        self,
        uniform_beta: Optional[Weight] = None,
        order: str = "arrival",
        weight_slack: Weight = 0,
    ) -> None:
        super().__init__()
        if order not in ("arrival", "degree"):
            raise ValueError(f"unknown coloring order {order!r}")
        if weight_slack < 0:
            raise ValueError("weight_slack must be non-negative")
        self.uniform_beta = uniform_beta
        self.order = order
        self.weight_slack = weight_slack
        #: analysis hook: (tid, color, theorem_bound) per scheduled txn
        self.color_log: List[tuple] = []

    #: Greedy only reacts to arrivals, so the incremental protocol costs
    #: nothing extra; it buys the shared constraint memo below.
    wants_deltas = True

    def on_deltas(self, t: Time, deltas) -> None:
        if deltas.arrived:
            self._color_batch(t, deltas.arrived)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None, "scheduler not bound to a simulator"
        if not new_txns:
            return
        self._color_batch(t, new_txns)

    def _color_batch(self, t: Time, new_txns: List[Transaction]) -> None:
        sim = self.sim
        index = getattr(sim, "pending", None)
        if index is not None:
            # Each constraint set is computed once into the shared
            # within-step memo; the degree ordering's sort key fills it
            # and the coloring loop below reuses it.  The memo
            # re-derives an entry only when a same-step scheduling
            # decision touched one of the transaction's conflict
            # neighbours — any live holder of a shared object is such a
            # neighbour, so the recomputed set equals what a fresh
            # full evaluation would return.
            fetch = index.constraints
        else:
            # State views / hand-rolled simulators without the index:
            # plain per-call evaluation (the original behaviour).
            def fetch(txn, *, now):
                return constraints_for(sim, txn, now=now)

        txns = list(new_txns)
        if self.order == "degree":
            txns.sort(key=lambda x: (len(fetch(x, now=t)), x.tid))
        for txn in txns:
            cons = fetch(txn, now=t)
            if self.weight_slack:
                cons = [(c, w + self.weight_slack if w > 0 else w) for c, w in cons]
            if self.uniform_beta is not None:
                color = self._uniform_color(cons, t)
            else:
                color = min_valid_color(cons)
            self.color_log.append((txn.tid, color, self._bound(cons)))
            self.emit("color", t, tid=txn.tid, color=color, constraints=len(cons))
            sim.commit_schedule(txn, t + color)

    def _uniform_color(self, cons, t: Time) -> Weight:
        """Lemma 2 online: execution at *absolute* multiples of beta.

        With arrivals at arbitrary times, relative colors are no longer
        multiples of beta across transactions; placing execution times on
        global multiples restores Lemma 2's accounting — every scheduled
        neighbor (itself on a multiple, at distance <= beta) forbids
        exactly one slot.
        """
        beta = self.uniform_beta
        abs_cons = [(t + color, w) for color, w in cons]
        exec_abs = min_valid_color_multiple(abs_cons, beta, floor_multiple=t // beta + 1)
        return exec_abs - t

    def _bound(self, cons) -> Weight:
        """Per-transaction latency bound, recorded for experiment E1.

        Plain mode — Lemma 1 shifted by the color floor of 1:
        ``1 + 2*Gamma' - Delta'``.  Uniform mode — slot counting: one
        alignment slot plus, per constraint of weight ``w``, the
        ``floor((2w-1)/beta) + 1`` multiples its forbidden interval can
        contain (= exactly one slot for a neighbor sitting on a multiple
        at distance <= beta, Lemma 2's case).
        """
        gamma = sum(w for _, w in cons)
        delta = sum(1 for _, w in cons if w > 0)
        if self.uniform_beta is None:
            return max(1, 1 + 2 * gamma - delta)
        beta = self.uniform_beta
        blocked = sum((2 * w - 1) // beta + 1 for _, w in cons if w > 0)
        return beta * (1 + blocked)
