"""Fixed-window rebatching: the obvious alternative to Algorithm 2.

Collect arrivals for ``window`` steps, then plan the whole batch with the
offline scheduler.  Practitioners reach for this before anything else —
it has no per-transaction guarantee (a transaction's wait is always
Ω(window) even when it conflicts with nothing, and heavy batches overrun
into the next window), which is precisely what the paper's exponential
bucket levels fix: lightly-conflicting transactions land in low buckets
that activate every step.  Bench E25 measures the difference.
"""

from __future__ import annotations

from typing import List, Optional

from repro._types import Time
from repro.core.base import OnlineScheduler
from repro.offline.base import BatchScheduler, SimStateView
from repro.sim.transactions import Transaction


class WindowedBatchScheduler(OnlineScheduler):
    """Plan all arrivals of each ``window``-step interval together.

    Windows close at global times divisible by ``window``; the batch is
    planned by the offline scheduler ``A`` against the already-committed
    schedule (append-after), exactly like one bucket level fixed at
    period = ``window``.
    """

    def __init__(self, batch: BatchScheduler, window: Time = 16) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self.batch = batch
        self.window = window
        self.pending: List[Transaction] = []
        #: (close_time, batch_size) log for analysis
        self.window_log: List[tuple] = []

    #: Incremental protocol: arrivals accumulate, the plan fires at
    #: window closes — identical decisions, no per-step rescan.
    wants_deltas = True

    def on_deltas(self, t: Time, deltas) -> None:
        assert self.sim is not None
        if deltas.arrived:
            self.pending.extend(deltas.arrived)
        if t % self.window == 0 and self.pending:
            self._close_window(t)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        self.pending.extend(new_txns)
        if t % self.window == 0 and self.pending:
            self._close_window(t)

    def _close_window(self, t: Time) -> None:
        view = SimStateView(self.sim, t)
        plan = self.batch.plan(view, self.pending)
        for txn in self.pending:
            self.sim.commit_schedule(txn, t + plan[txn.tid])
        self.window_log.append((t, len(self.pending)))
        self.emit("window-close", t, size=len(self.pending))
        self.pending = []

    def next_wake_after(self, t: Time) -> Optional[Time]:
        if not self.pending:
            return None
        return ((t // self.window) + 1) * self.window

    def has_pending(self) -> bool:
        return bool(self.pending)
