"""Dependency graphs ``H_t`` and extended ``H'_t`` (paper Section III-B(a)).

Nodes of ``H_t`` are the live transactions; edges join conflicting
transactions (shared object) with weight equal to the distance between
their home nodes in ``G``.  The *extended* graph ``H'_t`` adds the current
holders ``Z_t``: for each object, either its latest transaction (at rest)
or — if the object is in transit — a *temporary transaction* at the
artificial in-transit position, which "executes at time t" (color 0).

The scheduler hot path only needs, for one transaction, its constraint list
(:func:`constraints_for`); the full graph object
(:class:`ExtendedDependencyGraph`) exists for analysis: experiment E1
checks measured latencies against the Theorem 1 bound ``2*Gamma' - Delta'``
node by node.

Since the huge-topology refactor, ``H_t``'s conflict adjacency is
**delta-maintained** by a :class:`DependencyTracker` the engine attaches at
construction (``sim.deps``): edges are discovered once per transaction at
generation time and dropped at commit, so :func:`constraints_for` costs
O(degree) instead of re-scanning live accessor sets and materialising an
O(n) distance row per call.  Holder (``Z_t``) constraints stay query-time —
object positions change every step — but each is a single O(1) oracle
distance lookup on structured topologies.  The original full-scan path is
kept as :func:`_constraints_scan` and the full rebuild as
:func:`build_extended_dependency_graph`; differential tests pin the tracker
to both (see ``tests/test_dependency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro._types import NodeId, ObjectId, Time, TxnId, TxnState, Weight
from repro.core.coloring import Constraint
from repro.sim.engine import Simulator
from repro.sim.transactions import Transaction


class StepDeltas:
    """What changed since the previous scheduling step (the delta feed).

    Published by :meth:`DependencyTracker.drain_deltas` and consumed by
    schedulers that opt into the incremental protocol
    (:class:`repro.core.base.OnlineScheduler.on_deltas`).  Fields:

    * ``t`` — the current step.
    * ``arrived`` — transactions generated this step (the same list the
      legacy ``on_step`` receives as ``new_txns``).
    * ``committed`` — tids that left the live set (committed *or*
      expired) since the last drain.
    * ``released`` — object ids whose queue slots those departures
      released, in sorted order per departure.
    * ``dirty`` — still-pending (live, unscheduled) tids whose
      constraint set changed since the last drain: a conflict neighbour
      was scheduled, committed, or re-homed, or a membership/partition
      transition invalidated distances wholesale.

    The engine reuses one instance per simulator; the field values are
    only valid for the duration of the ``on_deltas`` call that receives
    them — schedulers must copy anything they keep across steps.
    """

    __slots__ = ("t", "arrived", "committed", "released", "dirty")

    def __init__(self) -> None:
        self.t: Time = 0
        self.arrived: List[Transaction] = []
        self.committed: List[TxnId] = []
        self.released: List[ObjectId] = []
        self.dirty: Set[TxnId] = set()


def holder_key(sim: Simulator, oid: ObjectId) -> Tuple[str, int]:
    """Identity of ``Z_t(o)`` — the current transaction holding ``o``.

    In transit -> a per-object temporary transaction (paper's artificial
    node); at rest at the latest acquirer's node -> that transaction;
    otherwise (never acquired, or already forwarded and waiting at its
    next requester's node before that requester committed) -> a
    per-object pseudo-transaction at the object's *position*.

    The per-object keys matter: two objects last acquired by the same
    transaction may rest at different nodes, so their holder constraints
    must not be merged (a real scheduler bug caught by the end-to-end
    property tests).
    """
    obj = sim.objects[oid]
    if obj.in_transit:
        return ("transit", oid)
    if obj.holder_txn is not None and sim.txns[obj.holder_txn].home == obj.location:
        return ("txn", obj.holder_txn)
    return ("free", oid)


def constraints_for(sim: Simulator, txn: Transaction, *, now: Time) -> List[Constraint]:
    """Coloring constraints of ``txn`` in ``H'_t`` against everything
    already colored.

    Colors follow Algorithm 1 line 4: an already-scheduled live transaction
    has color ``exec_time - t`` (its remaining time); a holder that has
    executed — or a temporary in-transit transaction — has color 0.  Edge
    weights are distances in ``G`` (travel-time bounds for holders, which
    also covers the half-speed object mode).

    Dispatches to the engine-maintained :class:`DependencyTracker` when one
    is attached (``sim.deps``, the default); state views and hand-rolled
    simulators without one fall back to the full scan.  Both paths return
    the same constraint multiset — :func:`repro.core.coloring.
    min_valid_color` sorts internally, so list order is immaterial.
    """
    deps = getattr(sim, "deps", None)
    if deps is not None:
        return deps.constraints_for(txn, now=now)
    return _constraints_scan(sim, txn, now=now)


def _constraints_scan(sim: Simulator, txn: Transaction, *, now: Time) -> List[Constraint]:
    """Reference implementation: full scan of live accessor sets."""
    cons: List[Constraint] = []
    seen_txn: Set[TxnId] = set()
    seen_holder: Set[Tuple[str, int]] = set()
    speed = sim.object_speed_den
    # One cached distance row for the whole constraint gathering.
    drow = sim.graph.distances_from(txn.home)

    def add_conflicts(oid: ObjectId, others) -> None:
        for other in others:
            if other.tid == txn.tid or other.tid in seen_txn:
                continue
            seen_txn.add(other.tid)
            if other.exec_time is None:
                continue  # pending txns are colored later (Lemma 1 is sequential)
            color = other.exec_time - now
            # Edge weights are object *travel times*: distance scaled by the
            # object speed (2x under Algorithm 3's half-speed rule).
            weight = speed * drow[other.home]
            cons.append((color, weight))

    # Read/write conflict rule: a write conflicts with every accessor; a
    # read conflicts only with writers (read-read pairs share copies).
    for oid in txn.objects:
        add_conflicts(oid, sim.live_requesters(oid))
        add_conflicts(oid, sim.live_readers(oid))
    for oid in txn.reads:
        add_conflicts(oid, sim.live_requesters(oid))
    for oid in txn.all_objects:
        # The current holder Z_t(o): color 0, weight = travel-time bound.
        key = holder_key(sim, oid)
        if key in seen_holder or key == ("txn", txn.tid):
            continue
        seen_holder.add(key)
        if key[0] == "txn" and key[1] in seen_txn:
            continue  # live holder already constrained above
        if key[0] == "txn" and key[1] in sim.live:
            holder = sim.txns[key[1]]
            if holder.exec_time is not None:
                color = max(0, holder.exec_time - now)
                weight = speed * drow[holder.home]
                cons.append((color, weight))
                seen_txn.add(key[1])
                continue
        cons.append((0, sim.object_time_to_reach(oid, txn.home)))
    return cons


@dataclass
class ExtendedDependencyGraph:
    """A materialised ``H'_t`` snapshot for analysis.

    Node keys: ``("txn", tid)`` for live transactions and executed holders,
    ``("transit", oid)`` / ``("free", oid)`` for temporary and free-object
    holders.  ``weighted_degree`` is the paper's ``Gamma'``; ``degree`` is
    ``Delta'``.
    """

    now: Time
    nodes: Set[Tuple[str, int]] = field(default_factory=set)
    edges: Dict[Tuple[Tuple[str, int], Tuple[str, int]], Weight] = field(default_factory=dict)

    def _add_edge(self, a: Tuple[str, int], b: Tuple[str, int], w: Weight) -> None:
        if a == b:
            return
        key = (a, b) if a <= b else (b, a)
        old = self.edges.get(key)
        # Two transactions sharing several objects still form ONE edge in
        # H'_t; the weight is their distance, identical for every shared
        # object except holder edges where we keep the largest bound.
        if old is None or w > old:
            self.edges[key] = w
        self.nodes.add(a)
        self.nodes.add(b)

    def degree(self, key: Tuple[str, int]) -> int:
        return sum(1 for (a, b) in self.edges if a == key or b == key)

    def weighted_degree(self, key: Tuple[str, int]) -> Weight:
        return sum(w for (a, b), w in self.edges.items() if a == key or b == key)

    def theorem1_bound(self, key: Tuple[str, int]) -> Weight:
        """Latency bound of Theorem 1: ``2*Gamma' - Delta'``."""
        return 2 * self.weighted_degree(key) - self.degree(key)


def build_extended_dependency_graph(sim: Simulator, *, now: Time) -> ExtendedDependencyGraph:
    """Materialise ``H'_t`` from current simulator state."""
    h = ExtendedDependencyGraph(now=now)
    live = list(sim.live.values())
    for txn in live:
        h.nodes.add(("txn", txn.tid))
    # Conflict edges between live transactions: write-write and
    # write-read pairs conflict; read-read pairs do not.
    writers: Dict[ObjectId, List[Transaction]] = {}
    readers: Dict[ObjectId, List[Transaction]] = {}
    for txn in live:
        for oid in txn.objects:
            writers.setdefault(oid, []).append(txn)
        for oid in txn.reads:
            readers.setdefault(oid, []).append(txn)
    speed = sim.object_speed_den
    for oid in set(writers) | set(readers):
        ws = writers.get(oid, [])
        rs = readers.get(oid, [])
        for i, a in enumerate(ws):
            for b in ws[i + 1 :]:
                h._add_edge(
                    ("txn", a.tid), ("txn", b.tid), speed * sim.graph.distance(a.home, b.home)
                )
            for b in rs:
                h._add_edge(
                    ("txn", a.tid), ("txn", b.tid), speed * sim.graph.distance(a.home, b.home)
                )
        # Holder edges to each accessor.
        key = holder_key(sim, oid)
        for a in ws + rs:
            if key == ("txn", a.tid):
                continue
            if key[0] == "txn" and key[1] in sim.live:
                w = speed * sim.graph.distance(sim.txns[key[1]].home, a.home)
            else:
                w = sim.object_time_to_reach(oid, a.home)
            h._add_edge(key, ("txn", a.tid), w)
    return h


class DependencyTracker:
    """Delta-maintained conflict adjacency of ``H_t`` (``sim.deps``).

    The engine calls :meth:`on_generate` when a transaction enters the
    system and :meth:`on_commit` when it leaves; between those two moments
    the transaction's conflict neighbourhood is static (object sets never
    change after generation, homes never move, reschedules only revise
    execution times), so each edge is discovered exactly once.  ``adj``
    stores *raw* graph distances between home nodes; the object-speed
    scaling is applied at query time, matching the scan path.

    Holder (``Z_t``) constraints are deliberately *not* cached: object
    positions change every step, and recomputing them per query is O(#
    objects of one transaction) with O(1) distance lookups on
    oracle-backed topologies.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: tid -> {conflicting live tid -> unscaled home distance}
        self.adj: Dict[TxnId, Dict[TxnId, Weight]] = {}
        #: delta-feed collection gate: set by the engine once it knows the
        #: bound scheduler opted into ``on_deltas`` — legacy full-scan
        #: schedulers never pay for (or leak) buffered deltas
        self.collect: bool = False
        self._d_committed: List[TxnId] = []
        self._d_released: List[ObjectId] = []
        self._d_dirty: Set[TxnId] = set()
        self._d_all_dirty: bool = False
        self._deltas = StepDeltas()

    # -- engine lifecycle hooks ---------------------------------------
    def on_generate(self, txn: Transaction) -> None:
        """Discover ``txn``'s conflict edges against the live set."""
        sim = self.sim
        g = sim.graph
        txns = sim.txns
        home = txn.home
        objects = sim.objects
        writers = sim._live_writers_col
        readers = sim._live_readers_col
        mine: Dict[TxnId, Weight] = {}
        # Write-write and write-read pairs conflict; read-read pairs share
        # copies and do not (same rule as the scan path).
        for oid in txn.objects:
            idx = objects[oid].index
            for tid in writers[idx]:
                if tid != txn.tid and tid not in mine:
                    mine[tid] = g.distance(home, txns[tid].home)
            for tid in readers[idx]:
                if tid != txn.tid and tid not in mine:
                    mine[tid] = g.distance(home, txns[tid].home)
        for oid in txn.reads:
            for tid in writers[objects[oid].index]:
                if tid != txn.tid and tid not in mine:
                    mine[tid] = g.distance(home, txns[tid].home)
        self.adj[txn.tid] = mine
        adj = self.adj
        for tid, d in mine.items():
            adj[tid][txn.tid] = d

    def refresh_home(self, txn: Transaction) -> None:
        """Recompute ``txn``'s edge weights after its home moved.

        Elastic membership is the one event that relocates a live
        transaction's home (an abrupt leave re-homes its transactions to
        the nearest member); the cached adjacency stores home distances,
        so both directions of every incident edge are re-measured."""
        nbrs = self.adj.get(txn.tid)
        if self.collect:
            self._d_dirty.add(txn.tid)
            if nbrs:
                self._d_dirty.update(nbrs)
        if not nbrs:
            return
        g = self.sim.graph
        txns = self.sim.txns
        home = txn.home
        adj = self.adj
        for tid in nbrs:
            d = g.distance(home, txns[tid].home)
            nbrs[tid] = d
            adj[tid][txn.tid] = d

    def on_commit(self, txn: Transaction) -> None:
        """Drop ``txn`` and its incident edges from the adjacency.

        Called for commits *and* deadline expiries — either way the
        transaction leaves the live set and its queue slots release.
        """
        nbrs = self.adj.pop(txn.tid, None)
        if self.collect:
            self._d_committed.append(txn.tid)
            self._d_released.extend(sorted(txn.all_objects))
            if nbrs:
                self._d_dirty.update(nbrs)
        if nbrs:
            adj = self.adj
            for tid in nbrs:
                other = adj.get(tid)
                if other is not None:
                    other.pop(txn.tid, None)

    # -- delta feed (incremental scheduling protocol) ------------------
    def note_scheduled(self, txn: Transaction) -> None:
        """A transaction was just assigned an execution time: its pending
        conflict neighbours gain one constraint each."""
        if self.collect:
            nbrs = self.adj.get(txn.tid)
            if nbrs:
                self._d_dirty.update(nbrs)

    def note_topology_change(self) -> None:
        """A membership or partition transition changed distances (or
        reachability) wholesale: every pending transaction is dirty."""
        if self.collect:
            self._d_all_dirty = True

    def drain_deltas(self, t: Time, arrived: List[Transaction]) -> StepDeltas:
        """Swap out the buffered deltas into the shared :class:`StepDeltas`.

        Fresh buffers are installed *before* the caller hands the deltas
        to the scheduler, so constraint changes caused by scheduling
        decisions made inside ``on_deltas`` land in the next step's feed.
        """
        sim = self.sim
        d = self._deltas
        d.t = t
        d.arrived = arrived
        d.committed = self._d_committed
        d.released = self._d_released
        if self._d_committed:
            self._d_committed = []
        if self._d_released:
            self._d_released = []
        pending = sim.pending._unscheduled
        if self._d_all_dirty:
            self._d_all_dirty = False
            self._d_dirty.clear()
            d.dirty = set(pending)
        else:
            buf = self._d_dirty
            d.dirty = {tid for tid in buf if tid in pending}
            if buf:
                self._d_dirty = set()
        return d

    # -- queries ------------------------------------------------------
    def constraints_for(self, txn: Transaction, *, now: Time) -> List[Constraint]:
        """O(degree) constraint list; same multiset as the full scan."""
        sim = self.sim
        txns = sim.txns
        g = sim.graph
        speed = sim.object_speed_den
        cons: List[Constraint] = []
        nbrs = self.adj.get(txn.tid) or {}
        for tid, d in nbrs.items():
            other = txns[tid]
            if other.exec_time is None:
                continue  # pending txns are colored later (Lemma 1 is sequential)
            cons.append((other.exec_time - now, speed * d))
        seen_holder: Set[Tuple[str, int]] = set()
        home = txn.home
        for oid in txn.all_objects:
            key = holder_key(sim, oid)
            if key in seen_holder or key == ("txn", txn.tid):
                continue
            seen_holder.add(key)
            if key[0] == "txn" and key[1] in nbrs:
                continue  # live holder already constrained above
            if key[0] == "txn" and key[1] in sim.live:
                holder = txns[key[1]]
                if holder.exec_time is not None:
                    cons.append(
                        (max(0, holder.exec_time - now), speed * g.distance(holder.home, home))
                    )
                    continue
            cons.append((0, sim.object_time_to_reach(oid, home)))
        return cons

    def snapshot(self, *, now: Time) -> ExtendedDependencyGraph:
        """Materialise ``H'_t`` from the maintained adjacency.

        Equal (same nodes, same edge dict) to
        :func:`build_extended_dependency_graph` on the same state — the
        invariant the differential tests pin.
        """
        sim = self.sim
        h = ExtendedDependencyGraph(now=now)
        speed = sim.object_speed_den
        for tid in sim.live:
            h.nodes.add(("txn", tid))
        for tid, nbrs in self.adj.items():
            for other, d in nbrs.items():
                if tid < other:
                    h._add_edge(("txn", tid), ("txn", other), speed * d)
        g = sim.graph
        txns = sim.txns
        obj_ids = sim._obj_ids
        writers = sim._live_writers_col
        readers = sim._live_readers_col
        touched = {obj_ids[idx] for idx, tids in enumerate(writers) if tids}
        touched.update(obj_ids[idx] for idx, tids in enumerate(readers) if tids)
        for oid in touched:
            key = holder_key(sim, oid)
            idx = sim.objects[oid].index
            accessors = set(writers[idx])
            accessors.update(readers[idx])
            for tid in accessors:
                if key == ("txn", tid):
                    continue
                if key[0] == "txn" and key[1] in sim.live:
                    w = speed * g.distance(txns[key[1]].home, txns[tid].home)
                else:
                    w = sim.object_time_to_reach(oid, txns[tid].home)
                h._add_edge(key, ("txn", tid), w)
        return h
