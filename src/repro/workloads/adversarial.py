"""Adversarial stress workloads.

These construct worst-case-flavoured instances used by tests and the
ablation benches: hotspot contention (every transaction wants the same
object — maximal ``l_max``) and dependency chains laid out across the
graph (maximal serialization over distance).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro._types import Time
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.sim.transactions import TxnSpec
from repro.workloads.arrivals import ManualWorkload


def hotspot_workload(
    graph: Graph,
    num_cold_objects: int = 0,
    k_cold: int = 0,
    seed: Optional[int] = None,
    *,
    time: Time = 0,
    shuffle: bool = False,
) -> ManualWorkload:
    """Every node requests hot object 0 (plus ``k_cold`` random cold ones).

    The offline optimum must serialize all n transactions through the hot
    object, so measured competitive ratios stay honest: the lower bound is
    tight here.  ``shuffle=True`` randomizes the submission (and thus tid)
    order — useful for ablations where an arrival-order scheduler must not
    accidentally coincide with the topology-aware order.
    """
    rng = np.random.default_rng(seed)
    placement = {0: int(rng.integers(0, graph.num_nodes))}
    for o in range(1, num_cold_objects + 1):
        placement[o] = int(rng.integers(0, graph.num_nodes))
    if k_cold > num_cold_objects:
        raise WorkloadError("k_cold exceeds number of cold objects")
    specs = []
    homes = list(graph.nodes())
    if shuffle:
        homes = [int(h) for h in rng.permutation(homes)]
    for home in homes:
        objs = [0]
        if k_cold:
            objs += [1 + int(i) for i in rng.choice(num_cold_objects, size=k_cold, replace=False)]
        specs.append(TxnSpec(time, home, tuple(objs)))
    return ManualWorkload(placement, specs)


def chain_workload(graph: Graph, length: Optional[int] = None, *, time: Time = 0) -> ManualWorkload:
    """A dependency chain: txn ``i`` shares object ``i`` with txn ``i+1``.

    Placed on nodes ``0..length-1``, so on a line graph the objects must
    zig-zag node to node and the optimum itself is ~length; on a clique the
    chain costs ~length as well but each hop is distance 1.
    """
    n = graph.num_nodes if length is None else int(length)
    if n > graph.num_nodes:
        raise WorkloadError("chain longer than the node count")
    if n < 2:
        raise WorkloadError("chain needs at least 2 transactions")
    placement = {i: i for i in range(n - 1)}
    specs = []
    for i in range(n):
        objs: List[int] = []
        if i > 0:
            objs.append(i - 1)
        if i < n - 1:
            objs.append(i)
        specs.append(TxnSpec(time, i, tuple(objs)))
    return ManualWorkload(placement, specs)
