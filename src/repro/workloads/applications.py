"""Application-style workloads (the paper's Section VI future work:
"evaluate our algorithm against different application benchmarks").

Three synthetic applications in the STAMP tradition, expressed in the
data-flow DTM model:

* **bank** — classic transfer benchmark: accounts are objects; a transfer
  writes two accounts (source, destination) drawn from a Zipf popularity
  law; audits read a handful of accounts.
* **vacation** — travel booking: three object families (flights, rooms,
  cars); a booking writes one of each, biased toward popular items;
  queries read availability.
* **inventory** — warehouse order processing: an order writes one hot
  catalog object (stock ledger shard by warehouse) plus reads the price
  list; restocks write the price list.

Each generator returns an online workload with seeded arrivals, so the
application mixes drop straight into the experiment harness
(bench E21).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._types import NodeId, ObjectId, Time
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.sim.transactions import TxnSpec
from repro.workloads.arrivals import ManualWorkload
from repro.workloads.generators import place_objects_uniform


def _zipf_probs(n: int, s: float) -> np.ndarray:
    w = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
    return w / w.sum()


def bank_workload(
    graph: Graph,
    *,
    num_accounts: int = 32,
    num_transfers: int = 100,
    audit_fraction: float = 0.1,
    audit_size: int = 4,
    skew: float = 1.0,
    horizon: Time = 100,
    seed: Optional[int] = None,
) -> ManualWorkload:
    """Transfers write two distinct accounts; audits read several.

    ``skew`` is the Zipf exponent of account popularity (hot accounts are
    the contention driver, as in the classic STM bank benchmark).
    """
    if num_accounts < max(2, audit_size):
        raise WorkloadError("bank needs at least max(2, audit_size) accounts")
    rng = np.random.default_rng(seed)
    placement = place_objects_uniform(graph, num_accounts, rng)
    probs = _zipf_probs(num_accounts, skew)
    specs: List[TxnSpec] = []
    times = np.sort(rng.integers(0, horizon, size=num_transfers))
    for t in times:
        home = int(rng.integers(0, graph.num_nodes))
        if rng.random() < audit_fraction:
            accounts = rng.choice(num_accounts, size=audit_size, replace=False, p=probs)
            specs.append(TxnSpec(int(t), home, (), reads=tuple(int(a) for a in accounts)))
        else:
            src, dst = rng.choice(num_accounts, size=2, replace=False, p=probs)
            specs.append(TxnSpec(int(t), home, (int(src), int(dst))))
    return ManualWorkload(placement, specs)


def vacation_workload(
    graph: Graph,
    *,
    num_flights: int = 12,
    num_rooms: int = 12,
    num_cars: int = 12,
    num_bookings: int = 80,
    query_fraction: float = 0.3,
    skew: float = 0.8,
    horizon: Time = 100,
    seed: Optional[int] = None,
) -> ManualWorkload:
    """Bookings write one flight + one room + one car (k=3, the paper's
    multi-object regime); queries read one item of each family."""
    rng = np.random.default_rng(seed)
    total = num_flights + num_rooms + num_cars
    placement = place_objects_uniform(graph, total, rng)
    fp = _zipf_probs(num_flights, skew)
    rp = _zipf_probs(num_rooms, skew)
    cp = _zipf_probs(num_cars, skew)
    specs: List[TxnSpec] = []
    times = np.sort(rng.integers(0, horizon, size=num_bookings))
    for t in times:
        home = int(rng.integers(0, graph.num_nodes))
        f = int(rng.choice(num_flights, p=fp))
        r = num_flights + int(rng.choice(num_rooms, p=rp))
        c = num_flights + num_rooms + int(rng.choice(num_cars, p=cp))
        if rng.random() < query_fraction:
            specs.append(TxnSpec(int(t), home, (), reads=(f, r, c)))
        else:
            specs.append(TxnSpec(int(t), home, (f, r, c)))
    return ManualWorkload(placement, specs)


def inventory_workload(
    graph: Graph,
    *,
    num_shards: int = 8,
    num_orders: int = 100,
    restock_fraction: float = 0.05,
    locality: float = 0.7,
    horizon: Time = 100,
    seed: Optional[int] = None,
) -> ManualWorkload:
    """Orders write their warehouse's stock shard and read the price list
    (object 0); restocks write the price list itself.

    ``locality``: probability an order goes to the shard whose placement
    node is nearest the ordering node (warehouse affinity), else uniform.
    """
    if not 0 <= locality <= 1:
        raise WorkloadError("locality must be a probability")
    rng = np.random.default_rng(seed)
    # object 0 = price list; objects 1..num_shards = stock shards
    placement = place_objects_uniform(graph, num_shards + 1, rng)
    shard_nodes = {o: placement[o] for o in range(1, num_shards + 1)}
    specs: List[TxnSpec] = []
    times = np.sort(rng.integers(0, horizon, size=num_orders))
    for t in times:
        home = int(rng.integers(0, graph.num_nodes))
        if rng.random() < restock_fraction:
            specs.append(TxnSpec(int(t), home, (0,)))
            continue
        if rng.random() < locality:
            d = graph.distances_from(home)
            shard = min(shard_nodes, key=lambda o: (d[shard_nodes[o]], o))
        else:
            shard = 1 + int(rng.integers(0, num_shards))
        specs.append(TxnSpec(int(t), home, (int(shard),), reads=(0,)))
    return ManualWorkload(placement, specs)
