"""Workload generators: object placement, choice models, arrival processes."""

from repro.workloads.arrivals import (
    BatchWorkload,
    ClosedLoopWorkload,
    ManualWorkload,
    OnlineWorkload,
    workload_from_trace,
)
from repro.workloads.generators import (
    LocalityChooser,
    UniformChooser,
    ZipfChooser,
    place_objects_uniform,
)
from repro.workloads.adversarial import chain_workload, hotspot_workload
from repro.workloads.applications import (
    bank_workload,
    inventory_workload,
    vacation_workload,
)
from repro.workloads.gap_instances import crossing_lower_bound, grid_crossing_workload
from repro.sim.transactions import TxnSpec

__all__ = [
    "TxnSpec",
    "grid_crossing_workload",
    "crossing_lower_bound",
    "workload_from_trace",
    "bank_workload",
    "vacation_workload",
    "inventory_workload",
    "BatchWorkload",
    "OnlineWorkload",
    "ClosedLoopWorkload",
    "ManualWorkload",
    "UniformChooser",
    "ZipfChooser",
    "LocalityChooser",
    "place_objects_uniform",
    "chain_workload",
    "hotspot_workload",
]
