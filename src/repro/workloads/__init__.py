"""Workload generators: object placement, choice models, arrival processes.

Two families:

* **Closed** workloads (:mod:`repro.workloads.arrivals`) — a finite
  transaction set that drains to empty (batch, bernoulli, bursty,
  closed-loop); experiments answer "what makespan?".
* **Open** (streaming) workloads (:mod:`repro.workloads.streaming`) —
  seeded *unbounded* arrival processes (Poisson, on/off bursty, diurnal,
  adversarial-rate); experiments answer "is the system stable at rate λ
  and what are the latency percentiles?" via ``Simulator.run(until=...)``
  and :mod:`repro.analysis.slo` / :mod:`repro.analysis.frontier`.

:class:`WorkloadSpec` (:mod:`repro.workloads.spec`) is the spec-first
handle over both: a frozen ``kind + seed + knobs`` value accepted by
``run_experiment`` / ``run_stream`` / ``replicate`` / ``run_grid`` and
the chaos ``EpisodeSpec`` wherever a workload instance is.
"""

from repro.workloads.arrivals import (
    BatchWorkload,
    ClosedLoopWorkload,
    ManualWorkload,
    OnlineWorkload,
    workload_from_trace,
)
from repro.workloads.generators import (
    LocalityChooser,
    ObjectChooser,
    UniformChooser,
    ZipfChooser,
    place_objects_uniform,
)
from repro.workloads.adversarial import chain_workload, hotspot_workload
from repro.workloads.applications import (
    bank_workload,
    inventory_workload,
    vacation_workload,
)
from repro.workloads.gap_instances import crossing_lower_bound, grid_crossing_workload
from repro.workloads.spec import WORKLOAD_KINDS, WorkloadSpec
from repro.workloads.streaming import (
    AdversarialOpenWorkload,
    DiurnalWorkload,
    OnOffBurstyWorkload,
    OpenWorkload,
    PoissonOpenWorkload,
)
from repro.sim.transactions import TxnSpec

__all__ = [
    # specs
    "TxnSpec",
    "WorkloadSpec",
    "WORKLOAD_KINDS",
    # closed workloads
    "BatchWorkload",
    "OnlineWorkload",
    "ClosedLoopWorkload",
    "ManualWorkload",
    "workload_from_trace",
    # open (streaming) workloads
    "OpenWorkload",
    "PoissonOpenWorkload",
    "OnOffBurstyWorkload",
    "DiurnalWorkload",
    "AdversarialOpenWorkload",
    # choosers / placement
    "ObjectChooser",
    "UniformChooser",
    "ZipfChooser",
    "LocalityChooser",
    "place_objects_uniform",
    # constructed instances
    "chain_workload",
    "hotspot_workload",
    "grid_crossing_workload",
    "crossing_lower_bound",
    "bank_workload",
    "vacation_workload",
    "inventory_workload",
]
