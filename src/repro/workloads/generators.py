"""Object placement and object-choice models.

The paper's scheduling problems (Sections III-C, IV-D) have ``w`` shared
objects and transactions that each request "an arbitrary set of ``k``
objects".  The choice models below instantiate "arbitrary": uniform
k-subsets, Zipf-skewed hotspots (the contention knob used throughout the
experiments), and locality-biased choices that prefer objects placed near
the requesting node.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._types import NodeId, ObjectId
from repro.errors import WorkloadError
from repro.network.graph import Graph


def place_objects_uniform(
    graph: Graph, num_objects: int, rng: np.random.Generator
) -> Dict[ObjectId, NodeId]:
    """Place ``num_objects`` objects on nodes chosen uniformly at random."""
    nodes = rng.integers(0, graph.num_nodes, size=num_objects)
    return {oid: int(nodes[oid]) for oid in range(num_objects)}


class ObjectChooser(abc.ABC):
    """Chooses the object set ``O(T)`` for a transaction."""

    @abc.abstractmethod
    def choose(self, home: NodeId, k: int, rng: np.random.Generator) -> List[ObjectId]:
        """Return ``k`` distinct object ids for a transaction at ``home``."""

    @staticmethod
    def _check(k: int, pool: int) -> None:
        if k > pool:
            raise WorkloadError(f"k={k} exceeds object pool size {pool}")


class UniformChooser(ObjectChooser):
    """Uniform k-subset of the object pool."""

    def __init__(self, num_objects: int) -> None:
        self.num_objects = num_objects

    def choose(self, home: NodeId, k: int, rng: np.random.Generator) -> List[ObjectId]:
        self._check(k, self.num_objects)
        return [int(o) for o in rng.choice(self.num_objects, size=k, replace=False)]


class ZipfChooser(ObjectChooser):
    """Zipf-skewed choice: object ``i`` drawn with probability ~ 1/(i+1)^s.

    ``s = 0`` degenerates to uniform; larger ``s`` concentrates contention
    on a few hot objects, driving up the per-object load ``l_max`` that
    lower-bounds execution time (Theorem 3's denominator).
    """

    def __init__(self, num_objects: int, s: float = 1.0) -> None:
        if num_objects < 1:
            raise WorkloadError("ZipfChooser needs at least one object")
        self.num_objects = num_objects
        self.s = float(s)
        weights = 1.0 / np.power(np.arange(1, num_objects + 1, dtype=float), self.s)
        self._probs = weights / weights.sum()

    def choose(self, home: NodeId, k: int, rng: np.random.Generator) -> List[ObjectId]:
        self._check(k, self.num_objects)
        return [int(o) for o in rng.choice(self.num_objects, size=k, replace=False, p=self._probs)]


class LocalityChooser(ObjectChooser):
    """Distance-biased choice: prefers objects initially placed near home.

    Probability of object ``o`` ~ ``1 / (1 + d(home, place(o)))**bias``.
    Models NUMA-style locality in rack-scale systems.
    """

    def __init__(self, graph: Graph, placement: Dict[ObjectId, NodeId], bias: float = 2.0) -> None:
        self.graph = graph
        self.placement = dict(placement)
        self.bias = float(bias)
        self._oids = sorted(self.placement)

    def choose(self, home: NodeId, k: int, rng: np.random.Generator) -> List[ObjectId]:
        self._check(k, len(self._oids))
        d = self.graph.distances_from(home)
        weights = np.array(
            [1.0 / (1.0 + d[self.placement[o]]) ** self.bias for o in self._oids]
        )
        probs = weights / weights.sum()
        picks = rng.choice(len(self._oids), size=k, replace=False, p=probs)
        return [self._oids[int(i)] for i in picks]
