"""The grid "crossing" instance family (paper lower-bound discussion).

Busch et al. [4] prove a scheduling problem on the grid with 2 objects
per transaction where *every* schedule is an ``Ω(n^{1/40}/log n)`` factor
from the optimal TSP tour length of any object — the instance that
separates execution-time scheduling from communication-cost (TSP-tour)
scheduling, and the reason the paper dismisses per-object tour schedulers
like Zhang et al. [30].

We build the *interlock pattern* at the base of that construction: on a
``side x side`` grid, a *row object* ``r_i`` serves row ``i`` and a
*column object* ``c_j`` serves column ``j``; the transaction at grid node
``(i, j)`` requests ``{r_i, c_j}``, so every row order and column order
interlock.  The full ``Ω(n^{1/40})`` separation needs a 40-level
recursive amplification of this pattern that is far beyond a practical
test workload; a single level does **not** separate the schedulers
(measured in bench E17 — per-object tours behave like row sweeps here and
do fine).  The family is still valuable as a structured cross-scheduler
stress instance with a clean certified lower bound.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro._types import NodeId, Time
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.network.topologies import grid
from repro.sim.transactions import TxnSpec
from repro.workloads.arrivals import ManualWorkload


def grid_crossing_workload(
    side: int,
    *,
    time: Time = 0,
    shuffle_seed: Optional[int] = None,
) -> Tuple[Graph, ManualWorkload]:
    """Build the graph and workload of the crossing instance.

    Objects ``0..side-1`` are the row objects (``r_i`` starts at node
    ``(i, 0)``); objects ``side..2*side-1`` are the column objects
    (``c_j`` starts at ``(0, j)``).  Transaction ``(i, j)`` sits at node
    ``i*side + j`` and writes ``{r_i, c_j}``.

    ``shuffle_seed`` randomizes the submission order (tids), exercising
    arrival-order-sensitive schedulers.
    """
    if side < 2:
        raise WorkloadError("crossing instance needs side >= 2")
    g = grid([side, side])
    placement = {}
    for i in range(side):
        placement[i] = i * side  # r_i at (i, 0)
    for j in range(side):
        placement[side + j] = j  # c_j at (0, j)
    coords = [(i, j) for i in range(side) for j in range(side)]
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        coords = [coords[k] for k in rng.permutation(len(coords))]
    specs = [
        TxnSpec(time, i * side + j, (i, side + j)) for i, j in coords
    ]
    return g, ManualWorkload(placement, specs)


def crossing_lower_bound(side: int) -> int:
    """A simple certified lower bound for the crossing instance.

    Every row object must visit all ``side`` nodes of its row: at least
    ``side - 1`` steps of travel after reaching the row, i.e. the
    object-MST bound specialised to this construction.
    """
    return max(1, side - 1)
