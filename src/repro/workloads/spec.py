"""WorkloadSpec: a frozen, picklable description of a workload.

The experiment API grew up around *instances*: every runner took a
constructed workload object, so sweeps had to thread ``(kind, seed,
knobs)`` tuples through ad-hoc dicts (the chaos harness), argparse
namespaces (the CLI), and positional ctor calls (the benches).  A
:class:`WorkloadSpec` is the spec-first replacement: one frozen value —
``kind + seed + knobs`` — that any layer can hash, pickle, serialize, and
turn into a workload with :meth:`WorkloadSpec.build`::

    spec = WorkloadSpec.make("poisson-open", seed=3, lam=0.6, objects=12, k=2)
    wl = spec.build(graph)                    # a PoissonOpenWorkload
    run_experiment(g, sched, spec.with_seed(7))   # runners build it themselves

``run_experiment`` / ``run_stream`` / ``replicate`` / ``run_grid`` and
the chaos :class:`~repro.chaos.search.EpisodeSpec` all accept a
``WorkloadSpec`` wherever they accept a workload; because the spec is a
pure value, fan-out over :mod:`repro.parallel` needs no pickling of live
workload state and every worker rebuilds bit-identical arrivals from the
seed.

Unknown kinds and misspelled knobs raise :class:`~repro.errors.
WorkloadError` at construction — a typo fails loudly instead of running
the wrong experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.errors import WorkloadError
from repro.network.graph import Graph

#: knobs every object-pool workload kind understands
_COMMON_KNOBS = frozenset({"objects", "k", "zipf", "read_fraction"})

#: kind -> (extra allowed knobs, open_system)
_KIND_KNOBS: Dict[str, Tuple[frozenset, bool]] = {
    "batch": (frozenset({"num_txns"}), False),
    "bernoulli": (frozenset({"rate", "horizon"}), False),
    "bursty": (
        frozenset({"horizon", "burst_rate", "idle_rate", "mean_burst", "mean_idle"}),
        False,
    ),
    "poisson-bulk": (frozenset({"lam", "horizon"}), False),
    "closed-loop": (frozenset({"rounds"}), False),
    "hotspot": (frozenset({"num_cold_objects", "k_cold"}), False),
    "chain": (frozenset({"length"}), False),
    "poisson-open": (frozenset({"lam"}), True),
    "onoff-open": (frozenset({"lam_on", "lam_off", "mean_on", "mean_off"}), True),
    "diurnal-open": (frozenset({"lam", "amplitude", "period"}), True),
    "adversarial-open": (frozenset({"rate", "burst", "hot_objects"}), True),
}

#: kinds whose knob set excludes the common object-pool knobs
_NO_POOL_KINDS = frozenset({"hotspot", "chain"})

#: service-mode knobs every *open* kind additionally understands
#: (:mod:`repro.workloads.streaming`): per-spec deadlines + priorities
_OPEN_KNOBS = frozenset({"deadline", "deadline_frac", "priority_classes"})


def _chooser(knobs: Mapping[str, Any]):
    zipf = float(knobs.get("zipf", 0.0))
    if zipf > 0.0:
        from repro.workloads.generators import ZipfChooser

        return ZipfChooser(int(knobs.get("objects", 8)), zipf)
    return None


def _pool_kwargs(knobs: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "chooser": _chooser(knobs),
        "read_fraction": float(knobs.get("read_fraction", 0.0)),
    }


def _open_kwargs(knobs: Mapping[str, Any]) -> Dict[str, Any]:
    """Pool kwargs + the service-mode knobs of the open kinds."""
    out = _pool_kwargs(knobs)
    if "deadline" in knobs:
        out["deadline"] = int(knobs["deadline"])
    if "deadline_frac" in knobs:
        out["deadline_frac"] = float(knobs["deadline_frac"])
    if "priority_classes" in knobs:
        out["priority_classes"] = int(knobs["priority_classes"])
    return out


def _build_batch(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.arrivals import BatchWorkload

    return BatchWorkload.uniform(
        graph,
        int(knobs.get("objects", 8)),
        int(knobs.get("k", 2)),
        seed=seed,
        num_txns=knobs.get("num_txns"),
        **_pool_kwargs(knobs),
    )


def _build_bernoulli(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.arrivals import OnlineWorkload

    return OnlineWorkload.bernoulli(
        graph,
        int(knobs.get("objects", 8)),
        int(knobs.get("k", 2)),
        rate=float(knobs.get("rate", 0.05)),
        horizon=int(knobs.get("horizon", 60)),
        seed=seed,
        **_pool_kwargs(knobs),
    )


def _build_bursty(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.arrivals import OnlineWorkload

    extra = {
        name: kind(knobs[name])
        for name, kind in (
            ("burst_rate", float), ("idle_rate", float),
            ("mean_burst", int), ("mean_idle", int),
        )
        if name in knobs
    }
    return OnlineWorkload.bursty(
        graph,
        int(knobs.get("objects", 8)),
        int(knobs.get("k", 2)),
        horizon=int(knobs.get("horizon", 60)),
        seed=seed,
        **extra,
        **_pool_kwargs(knobs),
    )


def _build_poisson_bulk(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.arrivals import OnlineWorkload

    return OnlineWorkload.poisson_bulk(
        graph,
        int(knobs.get("objects", 8)),
        int(knobs.get("k", 2)),
        lam=float(knobs.get("lam", 0.5)),
        horizon=int(knobs.get("horizon", 60)),
        seed=seed,
        chooser=_chooser(knobs),
    )


def _build_closed_loop(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.arrivals import ClosedLoopWorkload

    return ClosedLoopWorkload(
        graph,
        int(knobs.get("objects", 8)),
        int(knobs.get("k", 2)),
        rounds=int(knobs.get("rounds", 3)),
        seed=seed,
        **_pool_kwargs(knobs),
    )


def _build_hotspot(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.adversarial import hotspot_workload

    return hotspot_workload(
        graph,
        num_cold_objects=int(knobs.get("num_cold_objects", 0)),
        k_cold=int(knobs.get("k_cold", 0)),
        seed=seed,
    )


def _build_chain(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.adversarial import chain_workload

    return chain_workload(graph, length=knobs.get("length"))


def _build_poisson_open(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.streaming import PoissonOpenWorkload

    return PoissonOpenWorkload(
        graph,
        float(knobs.get("lam", 0.5)),
        num_objects=int(knobs.get("objects", 8)),
        k=int(knobs.get("k", 2)),
        seed=seed,
        **_open_kwargs(knobs),
    )


def _build_onoff_open(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.streaming import OnOffBurstyWorkload

    extra = {
        name: kind(knobs[name])
        for name, kind in (
            ("lam_on", float), ("lam_off", float),
            ("mean_on", int), ("mean_off", int),
        )
        if name in knobs
    }
    return OnOffBurstyWorkload(
        graph,
        num_objects=int(knobs.get("objects", 8)),
        k=int(knobs.get("k", 2)),
        seed=seed,
        **extra,
        **_open_kwargs(knobs),
    )


def _build_diurnal_open(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.streaming import DiurnalWorkload

    extra = {
        name: kind(knobs[name])
        for name, kind in (("amplitude", float), ("period", int))
        if name in knobs
    }
    return DiurnalWorkload(
        graph,
        float(knobs.get("lam", 0.5)),
        num_objects=int(knobs.get("objects", 8)),
        k=int(knobs.get("k", 2)),
        seed=seed,
        **extra,
        **_open_kwargs(knobs),
    )


def _build_adversarial_open(graph: Graph, seed: int, knobs: Mapping[str, Any]):
    from repro.workloads.streaming import AdversarialOpenWorkload

    extra = {
        name: kind(knobs[name])
        for name, kind in (("burst", int), ("hot_objects", int))
        if name in knobs
    }
    return AdversarialOpenWorkload(
        graph,
        float(knobs.get("rate", 0.5)),
        num_objects=int(knobs.get("objects", 8)),
        k=int(knobs.get("k", 2)),
        seed=seed,
        **extra,
        **_open_kwargs(knobs),
    )


_BUILDERS: Dict[str, Callable[[Graph, int, Mapping[str, Any]], Any]] = {
    "batch": _build_batch,
    "bernoulli": _build_bernoulli,
    "bursty": _build_bursty,
    "poisson-bulk": _build_poisson_bulk,
    "closed-loop": _build_closed_loop,
    "hotspot": _build_hotspot,
    "chain": _build_chain,
    "poisson-open": _build_poisson_open,
    "onoff-open": _build_onoff_open,
    "diurnal-open": _build_diurnal_open,
    "adversarial-open": _build_adversarial_open,
}

WORKLOAD_KINDS: Tuple[str, ...] = tuple(sorted(_BUILDERS))


def allowed_knobs(kind: str) -> frozenset:
    """The knob names ``kind`` accepts (for error messages and docs)."""
    extra, open_system = _KIND_KNOBS[kind]
    allowed = extra if kind in _NO_POOL_KINDS else _COMMON_KNOBS | extra
    if open_system:
        allowed = allowed | _OPEN_KNOBS
    return allowed


@dataclass(frozen=True)
class WorkloadSpec:
    """``kind + seed + knobs`` — everything needed to build a workload.

    ``knobs`` is stored as a sorted tuple of ``(name, value)`` pairs so
    the spec is hashable and its dict/JSON form is canonical; construct
    via :meth:`make` (keyword knobs) rather than positionally.
    """

    kind: str
    seed: int = 0
    knobs: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in _BUILDERS:
            raise WorkloadError(
                f"unknown workload kind {self.kind!r} "
                f"(choose from {list(WORKLOAD_KINDS)})"
            )
        object.__setattr__(self, "knobs", tuple(sorted(dict(self.knobs).items())))
        allowed = allowed_knobs(self.kind)
        unknown = [name for name, _ in self.knobs if name not in allowed]
        if unknown:
            raise WorkloadError(
                f"workload kind {self.kind!r} does not accept knobs {unknown} "
                f"(allowed: {sorted(allowed)})"
            )

    @classmethod
    def make(cls, kind: str, seed: int = 0, **knobs: Any) -> "WorkloadSpec":
        """The ergonomic constructor: ``WorkloadSpec.make("poisson-open",
        seed=3, lam=0.6, objects=12)``."""
        return cls(kind=kind, seed=int(seed), knobs=tuple(knobs.items()))

    # -- accessors ------------------------------------------------------
    @property
    def open_system(self) -> bool:
        """True for streaming (unbounded-arrival) kinds."""
        return _KIND_KNOBS[self.kind][1]

    def knob(self, name: str, default: Any = None) -> Any:
        for key, value in self.knobs:
            if key == name:
                return value
        return default

    def knobs_dict(self) -> Dict[str, Any]:
        return dict(self.knobs)

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """The same spec re-seeded — the unit of :func:`~repro.analysis.
        aggregate.replicate` fan-out."""
        return replace(self, seed=int(seed))

    def with_knobs(self, **knobs: Any) -> "WorkloadSpec":
        """A copy with ``knobs`` merged over the existing ones (the
        frontier uses this to move λ between bisection probes)."""
        merged = dict(self.knobs)
        merged.update(knobs)
        return replace(self, knobs=tuple(merged.items()))

    # -- the point of the class ----------------------------------------
    def build(self, graph: Graph):
        """Construct the described workload on ``graph``.

        The built workload carries its spec (``wl.spec``) when the class
        allows the attribute, so a checkpointed run can report what it
        was running after a restore.
        """
        wl = _BUILDERS[self.kind](graph, self.seed, dict(self.knobs))
        try:
            wl.spec = self
        except AttributeError:
            pass  # slotted workload class: resumed runs just omit the spec
        return wl

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "seed": self.seed, "knobs": dict(self.knobs)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        return cls(
            kind=data["kind"],
            seed=int(data.get("seed", 0)),
            knobs=tuple(dict(data.get("knobs", {})).items()),
        )
