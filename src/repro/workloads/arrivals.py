"""Arrival processes: batch, online, and closed-loop workloads.

A *workload* provides the engine with the initial object placement and a
finite stream of :class:`TxnSpec`.  ``ClosedLoopWorkload`` additionally
reacts to commits, reproducing the process of Section III-C: "once a
transaction completes execution, the node of the transaction issues in the
next step a new transaction requesting an arbitrary set of k objects".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro._types import NodeId, ObjectId, Time
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads.generators import ObjectChooser, UniformChooser, place_objects_uniform


def _split_reads(objs, read_fraction: float, rng: np.random.Generator):
    """Partition chosen objects into (writes, reads) by ``read_fraction``.

    With the read/write extension, each accessed object is independently a
    read with probability ``read_fraction`` (0 = the paper's base model).
    """
    if read_fraction <= 0.0:
        return tuple(objs), ()
    writes, reads = [], []
    for o in objs:
        (reads if rng.random() < read_fraction else writes).append(o)
    return tuple(writes), tuple(reads)


class ManualWorkload:
    """Explicit placement and specs; the building block of all others."""

    def __init__(self, placement: Mapping[ObjectId, NodeId], specs: Iterable[TxnSpec]) -> None:
        self._placement = dict(placement)
        self._specs = sorted(specs, key=lambda s: s.gen_time)

    def initial_objects(self) -> Dict[ObjectId, NodeId]:
        """Initial object placement ``{oid: node}``."""
        return dict(self._placement)

    def arrivals(self) -> List[TxnSpec]:
        """All transaction specs, sorted by generation time."""
        return list(self._specs)

    @property
    def num_txns(self) -> int:
        return len(self._specs)


class BatchWorkload(ManualWorkload):
    """All transactions generated at one time step (offline batch setting)."""

    @classmethod
    def uniform(
        cls,
        graph: Graph,
        num_objects: int,
        k: int,
        seed: Optional[int] = None,
        *,
        num_txns: Optional[int] = None,
        chooser: Optional[ObjectChooser] = None,
        time: Time = 0,
        read_fraction: float = 0.0,
    ) -> "BatchWorkload":
        """One transaction per node (or ``num_txns`` random distinct nodes),
        each requesting ``k`` objects from a pool of ``num_objects`` placed
        uniformly at random — the batch problem of Busch et al. [4].

        ``read_fraction``: probability each accessed object is a read-only
        access (read/write extension)."""
        rng = np.random.default_rng(seed)
        placement = place_objects_uniform(graph, num_objects, rng)
        chooser = chooser or UniformChooser(num_objects)
        if num_txns is None:
            homes: Sequence[NodeId] = list(graph.nodes())
        else:
            if num_txns > graph.num_nodes:
                raise WorkloadError("num_txns exceeds node count (one txn per node)")
            homes = [int(h) for h in rng.choice(graph.num_nodes, size=num_txns, replace=False)]
        specs = []
        for home in homes:
            writes, reads = _split_reads(chooser.choose(home, k, rng), read_fraction, rng)
            specs.append(TxnSpec(time, home, writes, reads=reads))
        return cls(placement, specs)


class OnlineWorkload(ManualWorkload):
    """Transactions arriving over time (the paper's dynamic setting)."""

    @classmethod
    def bernoulli(
        cls,
        graph: Graph,
        num_objects: int,
        k: int,
        rate: float,
        horizon: Time,
        seed: Optional[int] = None,
        *,
        chooser: Optional[ObjectChooser] = None,
        read_fraction: float = 0.0,
    ) -> "OnlineWorkload":
        """Each node independently generates a transaction with probability
        ``rate`` at each step in ``[0, horizon)``.

        Nodes do not wait for their previous transaction (use
        :class:`ClosedLoopWorkload` for the one-live-txn-per-node regime).
        """
        if not 0.0 <= rate <= 1.0:
            raise WorkloadError(f"rate must be a probability, got {rate}")
        rng = np.random.default_rng(seed)
        placement = place_objects_uniform(graph, num_objects, rng)
        chooser = chooser or UniformChooser(num_objects)
        specs = []
        draws = rng.random((int(horizon), graph.num_nodes))
        for t in range(int(horizon)):
            for home in graph.nodes():
                if draws[t, home] < rate:
                    writes, reads = _split_reads(
                        chooser.choose(home, k, rng), read_fraction, rng
                    )
                    specs.append(TxnSpec(t, home, writes, reads=reads))
        return cls(placement, specs)

    @classmethod
    def bursty(
        cls,
        graph: Graph,
        num_objects: int,
        k: int,
        horizon: Time,
        seed: Optional[int] = None,
        *,
        burst_rate: float = 0.3,
        idle_rate: float = 0.01,
        mean_burst: int = 8,
        mean_idle: int = 24,
        chooser: Optional[ObjectChooser] = None,
        read_fraction: float = 0.0,
    ) -> "OnlineWorkload":
        """On/off (Markov-modulated) arrivals: alternating burst and idle
        phases with geometric durations.

        Bursts are where online schedulers earn their keep — batch-like
        contention spikes arrive with no warning — while idle phases let
        backlogs drain.  ``burst_rate``/``idle_rate`` are per-node
        per-step generation probabilities within each phase.
        """
        for name, val in (("burst_rate", burst_rate), ("idle_rate", idle_rate)):
            if not 0.0 <= val <= 1.0:
                raise WorkloadError(f"{name} must be a probability, got {val}")
        if mean_burst < 1 or mean_idle < 1:
            raise WorkloadError("phase lengths must be >= 1")
        rng = np.random.default_rng(seed)
        placement = place_objects_uniform(graph, num_objects, rng)
        chooser = chooser or UniformChooser(num_objects)
        specs = []
        t = 0
        in_burst = False
        while t < horizon:
            mean = mean_burst if in_burst else mean_idle
            length = 1 + int(rng.geometric(1.0 / mean))
            rate = burst_rate if in_burst else idle_rate
            for step in range(t, min(horizon, t + length)):
                for home in graph.nodes():
                    if rng.random() < rate:
                        writes, reads = _split_reads(
                            chooser.choose(home, k, rng), read_fraction, rng
                        )
                        specs.append(TxnSpec(step, home, writes, reads=reads))
            t += length
            in_burst = not in_burst
        return cls(placement, specs)

    @classmethod
    def poisson_bulk(
        cls,
        graph: Graph,
        num_objects: int,
        k: int,
        lam: float,
        horizon: Time,
        seed: Optional[int] = None,
        *,
        chooser: Optional[ObjectChooser] = None,
    ) -> "OnlineWorkload":
        """Poisson(lam) transactions per step at uniformly random nodes."""
        rng = np.random.default_rng(seed)
        placement = place_objects_uniform(graph, num_objects, rng)
        chooser = chooser or UniformChooser(num_objects)
        specs = []
        counts = rng.poisson(lam, size=int(horizon))
        for t in range(int(horizon)):
            for _ in range(int(counts[t])):
                home = int(rng.integers(0, graph.num_nodes))
                specs.append(TxnSpec(t, home, tuple(chooser.choose(home, k, rng))))
        return cls(placement, specs)


def workload_from_trace(trace) -> ManualWorkload:
    """Rebuild the workload a trace came from (placement + specs).

    Pairs with :class:`repro.core.replay.ReplayScheduler` and the trace
    archive: load a trace, regenerate its workload, and replay or
    re-schedule it under different schedulers/engine settings.
    """
    specs = [
        TxnSpec(rec.gen_time, rec.home, tuple(rec.objects), reads=tuple(rec.reads))
        for rec in sorted(trace.txns.values(), key=lambda r: (r.gen_time, r.tid))
    ]
    return ManualWorkload(dict(trace.initial_placement), specs)


class ClosedLoopWorkload:
    """Section III-C's repeating process: every node keeps exactly one live
    transaction; a commit at ``t`` triggers a fresh k-object transaction at
    ``t + 1``, for ``rounds`` rounds per node."""

    def __init__(
        self,
        graph: Graph,
        num_objects: int,
        k: int,
        rounds: int,
        seed: Optional[int] = None,
        *,
        chooser: Optional[ObjectChooser] = None,
        nodes: Optional[Sequence[NodeId]] = None,
        read_fraction: float = 0.0,
    ) -> None:
        if rounds < 1:
            raise WorkloadError("rounds must be >= 1")
        self._rng = np.random.default_rng(seed)
        self._graph = graph
        self._k = k
        self._rounds = rounds
        self._placement = place_objects_uniform(graph, num_objects, self._rng)
        self._chooser = chooser or UniformChooser(num_objects)
        self._nodes = list(nodes) if nodes is not None else list(graph.nodes())
        self._remaining = {home: rounds - 1 for home in self._nodes}
        self._read_fraction = float(read_fraction)

    def initial_objects(self) -> Dict[ObjectId, NodeId]:
        return dict(self._placement)

    def _spec(self, t: Time, home: NodeId) -> TxnSpec:
        writes, reads = _split_reads(
            self._chooser.choose(home, self._k, self._rng), self._read_fraction, self._rng
        )
        return TxnSpec(t, home, writes, reads=reads)

    def arrivals(self) -> List[TxnSpec]:
        return [self._spec(0, home) for home in self._nodes]

    def on_commit(self, txn: Transaction, t: Time) -> List[TxnSpec]:
        left = self._remaining.get(txn.home, 0)
        if left <= 0:
            return []
        self._remaining[txn.home] = left - 1
        return [self._spec(t + 1, txn.home)]
