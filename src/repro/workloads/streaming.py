"""Open-system streaming workloads: unbounded seeded arrival processes.

Every workload in :mod:`repro.workloads.arrivals` is *closed*: a finite
transaction set drains to empty and the experiment answers "what
makespan?".  A service facing continuous traffic is an *open* system —
transactions arrive forever at rate λ and the questions become "is the
system **stable** at λ?" and "what are the commit-latency percentiles?"
(*Stable Scheduling in Transactional Memory*, PAPERS.md, frames exactly
this adversarial-rate setting).

A streaming workload carries ``open_system = True`` and provides

* ``initial_objects()`` — the seeded object placement (as for closed
  workloads), and
* ``arrival_stream()`` — a fresh **unbounded** iterator of
  :class:`~repro.sim.transactions.TxnSpec` in non-decreasing ``gen_time``
  order.  Each call restarts the stream from the seed, so a run is a pure
  function of ``(workload ctor args, horizon)`` — the determinism the
  parallel runtime and the frontier bisection rely on.

The engine pulls the stream lazily (one spec of lookahead) during
``Simulator.run(until=...)`` — see the "open-system runs" notes in
:mod:`repro.sim.engine` — so an unstable rate cannot materialize an
unbounded spec list: generation is bounded by the run horizon.

Arrival counts are drawn per step (``Poisson(rate_at(t))``), homes
uniformly at random, and object sets via any
:class:`~repro.workloads.generators.ObjectChooser` (``ZipfChooser`` is
the hotspot/popularity knob); ``read_fraction`` splits accesses into
reads per the read/write extension.

Service-mode extensions (:mod:`repro.service`): ``deadline`` stamps an
absolute commit deadline of ``gen_time + deadline`` onto a
``deadline_frac`` fraction of specs, and ``priority_classes`` draws a
uniform priority class per spec.  All three default off and then make
**zero** extra RNG draws, so pre-service arrival streams are
bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional

import numpy as np

from repro._types import NodeId, ObjectId, Time
from repro.errors import WorkloadError
from repro.network.graph import Graph
from repro.sim.transactions import TxnSpec
from repro.workloads.arrivals import _split_reads
from repro.workloads.generators import ObjectChooser, UniformChooser, place_objects_uniform

#: RNG stream tags: placement and arrivals draw from disjoint seeded
#: streams so re-running ``arrival_stream()`` never perturbs placement.
_PLACEMENT_STREAM = 17
_ARRIVAL_STREAM = 29


class OpenWorkload:
    """Base class of the open (streaming) arrival processes.

    Subclasses define the time-varying expected arrival rate via
    :meth:`rate_at` (transactions per step, summed over all nodes) or
    override :meth:`arrival_stream` entirely for non-Poisson processes.
    """

    #: engines and runners dispatch open-system handling on this flag
    open_system = True

    def __init__(
        self,
        graph: Graph,
        *,
        num_objects: int = 8,
        k: int = 2,
        seed: int = 0,
        chooser: Optional[ObjectChooser] = None,
        read_fraction: float = 0.0,
        deadline: Optional[Time] = None,
        deadline_frac: float = 1.0,
        priority_classes: int = 1,
    ) -> None:
        if num_objects < 1:
            raise WorkloadError(f"num_objects must be >= 1, got {num_objects}")
        if k < 1 or k > num_objects:
            raise WorkloadError(f"k must be in [1, num_objects={num_objects}], got {k}")
        if not 0.0 <= read_fraction <= 1.0:
            raise WorkloadError(f"read_fraction must be a probability, got {read_fraction}")
        if deadline is not None and deadline < 1:
            raise WorkloadError(f"deadline must be >= 1 step, got {deadline}")
        if not 0.0 <= deadline_frac <= 1.0:
            raise WorkloadError(f"deadline_frac must be a probability, got {deadline_frac}")
        if priority_classes < 1:
            raise WorkloadError(f"priority_classes must be >= 1, got {priority_classes}")
        self.graph = graph
        self.num_objects = int(num_objects)
        self.k = int(k)
        self.seed = int(seed)
        self.chooser = chooser or UniformChooser(num_objects)
        self.read_fraction = float(read_fraction)
        self.deadline = None if deadline is None else int(deadline)
        self.deadline_frac = float(deadline_frac)
        self.priority_classes = int(priority_classes)
        self._placement = place_objects_uniform(
            graph, num_objects, np.random.default_rng([self.seed, _PLACEMENT_STREAM])
        )

    # -- workload protocol ---------------------------------------------
    def initial_objects(self) -> Dict[ObjectId, NodeId]:
        return dict(self._placement)

    def rate_at(self, t: Time) -> float:
        """Expected arrivals (all nodes combined) at step ``t``."""
        raise NotImplementedError

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate (for reports; default: rate at 0)."""
        return self.rate_at(0)

    def arrival_stream(self) -> Iterator[TxnSpec]:
        """A fresh unbounded spec iterator, restarted from the seed."""
        rng = np.random.default_rng([self.seed, _ARRIVAL_STREAM])
        t = 0
        while True:
            n = int(rng.poisson(self.rate_at(t)))
            for _ in range(n):
                yield self._spec(t, rng)
            t += 1

    # -- helpers for subclasses ----------------------------------------
    def _spec_extras(self, t: Time, rng: np.random.Generator):
        """``(deadline, priority)`` for one spec at step ``t``.

        Draw order is fixed (priority class, then the deadline coin) and
        every draw is skipped when its knob is at the default — so a
        workload with these knobs off produces the exact pre-service
        byte stream.
        """
        priority = 0
        if self.priority_classes > 1:
            priority = int(rng.integers(0, self.priority_classes))
        deadline = None
        if self.deadline is not None:
            frac = self.deadline_frac
            if frac >= 1.0 or (frac > 0.0 and rng.random() < frac):
                deadline = t + self.deadline
        return deadline, priority

    def _spec(self, t: Time, rng: np.random.Generator) -> TxnSpec:
        home = int(rng.integers(0, self.graph.num_nodes))
        writes, reads = _split_reads(
            self.chooser.choose(home, self.k, rng), self.read_fraction, rng
        )
        deadline, priority = self._spec_extras(t, rng)
        return TxnSpec(t, home, writes, reads=reads, deadline=deadline, priority=priority)


class PoissonOpenWorkload(OpenWorkload):
    """Constant-rate Poisson arrivals: ``Poisson(lam)`` new transactions
    per step at uniformly random homes — the canonical open-system
    workload the stability frontier bisects over."""

    def __init__(self, graph: Graph, lam: float, **kwargs) -> None:
        if lam <= 0:
            raise WorkloadError(f"lam must be > 0, got {lam}")
        super().__init__(graph, **kwargs)
        self.lam = float(lam)

    def rate_at(self, t: Time) -> float:
        return self.lam


class OnOffBurstyWorkload(OpenWorkload):
    """Markov-modulated on/off arrivals: alternating burst and idle phases
    with geometric durations; rate ``lam_on`` while bursting, ``lam_off``
    while idle.  The open-system analogue of
    :meth:`~repro.workloads.arrivals.OnlineWorkload.bursty`."""

    def __init__(
        self,
        graph: Graph,
        *,
        lam_on: float = 1.0,
        lam_off: float = 0.05,
        mean_on: int = 16,
        mean_off: int = 48,
        **kwargs,
    ) -> None:
        if lam_on < 0 or lam_off < 0:
            raise WorkloadError("phase rates must be >= 0")
        if lam_on == 0 and lam_off == 0:
            # An all-zero stream would make the engine's lazy pump spin
            # forever waiting for an arrival that never comes.
            raise WorkloadError("at least one phase rate must be > 0")
        if mean_on < 1 or mean_off < 1:
            raise WorkloadError("phase lengths must be >= 1")
        super().__init__(graph, **kwargs)
        self.lam_on = float(lam_on)
        self.lam_off = float(lam_off)
        self.mean_on = int(mean_on)
        self.mean_off = int(mean_off)

    @property
    def mean_rate(self) -> float:
        on, off = self.mean_on, self.mean_off
        return (self.lam_on * on + self.lam_off * off) / (on + off)

    def rate_at(self, t: Time) -> float:  # pragma: no cover - documentational
        return self.mean_rate

    def arrival_stream(self) -> Iterator[TxnSpec]:
        rng = np.random.default_rng([self.seed, _ARRIVAL_STREAM])
        t = 0
        in_burst = False
        while True:
            mean = self.mean_on if in_burst else self.mean_off
            length = 1 + int(rng.geometric(1.0 / mean))
            lam = self.lam_on if in_burst else self.lam_off
            for step in range(t, t + length):
                for _ in range(int(rng.poisson(lam))):
                    yield self._spec(step, rng)
            t += length
            in_burst = not in_burst


class DiurnalWorkload(OpenWorkload):
    """Sinusoidally modulated arrivals: rate
    ``lam * (1 + amplitude * sin(2*pi*t / period))`` — the day/night cycle
    of a user-facing service.  Peak rate is ``lam * (1 + amplitude)``;
    stability at the mean rate is not enough if peaks outrun the
    scheduler for longer than the trough can drain."""

    def __init__(
        self,
        graph: Graph,
        lam: float,
        *,
        amplitude: float = 0.5,
        period: int = 200,
        **kwargs,
    ) -> None:
        if lam <= 0:
            raise WorkloadError(f"lam must be > 0, got {lam}")
        if not 0.0 <= amplitude <= 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1], got {amplitude}")
        if period < 2:
            raise WorkloadError(f"period must be >= 2, got {period}")
        super().__init__(graph, **kwargs)
        self.lam = float(lam)
        self.amplitude = float(amplitude)
        self.period = int(period)

    @property
    def mean_rate(self) -> float:
        return self.lam

    def rate_at(self, t: Time) -> float:
        return self.lam * (1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period))


class AdversarialOpenWorkload(OpenWorkload):
    """Adversarial-rate arrivals per *Stable Scheduling in Transactional
    Memory*: an adversary constrained to injection rate ``rate`` with
    burstiness ``burst`` (in any window of ``w`` steps it may inject at
    most ``rate * w + burst`` transactions) and playing the worst case —
    saving up the full burst allowance and dumping it as ``burst``
    simultaneous transactions that all conflict on a small hot object
    set.  A scheduler stable against this adversary is stable against any
    admissible rate-``rate`` process."""

    def __init__(
        self,
        graph: Graph,
        rate: float,
        *,
        burst: int = 8,
        hot_objects: int = 2,
        **kwargs,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise WorkloadError(f"burst must be >= 1, got {burst}")
        super().__init__(graph, **kwargs)
        if hot_objects < 1 or hot_objects > self.num_objects:
            raise WorkloadError(
                f"hot_objects must be in [1, num_objects={self.num_objects}], got {hot_objects}"
            )
        self.rate = float(rate)
        self.burst = int(burst)
        self.hot_objects = int(hot_objects)
        # All burst members draw their k objects from the hot prefix, so
        # every pair conflicts and the burst must serialize.
        self._hot_pool = max(self.k, self.hot_objects)

    def rate_at(self, t: Time) -> float:
        return self.rate

    def arrival_stream(self) -> Iterator[TxnSpec]:
        rng = np.random.default_rng([self.seed, _ARRIVAL_STREAM])
        tokens = 0.0
        t = 0
        while True:
            tokens = min(tokens + self.rate, float(self.burst))
            n = int(tokens)
            if n >= self.burst or (self.rate >= 1.0 and n >= 1):
                tokens -= n
                for _ in range(n):
                    yield self._hot_spec(t, rng)
            t += 1

    def _hot_spec(self, t: Time, rng: np.random.Generator) -> TxnSpec:
        home = int(rng.integers(0, self.graph.num_nodes))
        picks = rng.choice(self._hot_pool, size=self.k, replace=False)
        writes, reads = _split_reads(
            [int(o) for o in picks], self.read_fraction, rng
        )
        deadline, priority = self._spec_extras(t, rng)
        return TxnSpec(t, home, writes, reads=reads, deadline=deadline, priority=priority)
