"""Structured observability for the simulator and schedulers.

Attach a probe to any run::

    from repro import Simulator, SimConfig
    from repro.obs import CountersProbe

    probe = CountersProbe()
    sim = Simulator(g, scheduler, wl, config=SimConfig(probe=probe))
    sim.run()
    print(probe.summary())

The default :class:`NullProbe` is never called and leaves traces
byte-identical to an un-instrumented engine; see ``docs/observability.md``
for the protocol, the JSONL event schema, and overhead notes.
"""

from repro.obs.counters import CountersProbe
from repro.obs.gantt import GanttProbe
from repro.obs.jsonl import SCHEMA_VERSION, JsonlProbe, iter_events, load_events
from repro.obs.probe import NULL_PROBE, PHASES, MultiProbe, NullProbe, Probe

__all__ = [
    "Probe",
    "NullProbe",
    "NULL_PROBE",
    "MultiProbe",
    "CountersProbe",
    "JsonlProbe",
    "GanttProbe",
    "iter_events",
    "load_events",
    "SCHEMA_VERSION",
    "PHASES",
]
