"""The probe protocol: structured observability hooks for engine and schedulers.

A :class:`Probe` receives a callback at every interesting point of a run —
the engine's phase structure (receive / deliver / generate / schedule /
execute / depart), transaction lifecycle events, object motion, and
scheduler decisions (color chosen, bucket level assigned, wake-ups).  The
default :class:`NullProbe` has ``enabled = False``; the engine and the
scheduler base class cache that flag and skip every callback behind a
single ``if``, so a probe-less run pays no observable overhead and
produces byte-identical traces (certified by ``tests/test_obs.py`` against
pre-instrumentation golden traces).

Probes never influence the simulation: they have no return values the
engine reads, and a correct probe must not mutate the objects it is shown.

Event vocabulary
----------------
Engine-side callbacks are dedicated methods (``on_commit``, ``on_depart``,
...) because they sit on hot paths; scheduler-side decisions funnel
through the generic :meth:`Probe.on_sched` with a small, stable set of
event names:

=================  ==============================================  =========================
event              emitted by                                      fields
=================  ==============================================  =========================
``color``          GreedyScheduler / TspTourScheduler              tid, color, constraints
``coord-color``    CoordinatedGreedyScheduler                      tid, color, rtt
``bucket-insert``  BucketScheduler / DistributedBucketScheduler    tid, level[, height]
``activate``       BucketScheduler / DistributedBucketScheduler    level, size
``window-close``   WindowedBatchScheduler                          size
``adaptive``       AdaptiveScheduler                               choice
``fifo``           FifoSerialScheduler                             tid, bound
``replay``         ReplayScheduler                                 tid
``wake``           engine, when a scheduler wake-up fires          (no fields)
``probe-msg``      DistributedBucketScheduler discovery traffic    kind
=================  ==============================================  =========================
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro._types import NodeId, ObjectId, Time, TxnId

#: Engine phases, in per-step order, as reported to ``on_phase``.
PHASES = ("receive", "deliver", "generate", "schedule", "execute", "depart")


class Probe:
    """Base probe: every callback is a no-op; subclass what you need.

    ``enabled`` is read once by the engine (and by ``OnlineScheduler.bind``)
    to decide whether to call the probe at all — :class:`NullProbe` sets it
    to False, making the disabled path a single predictable branch.
    """

    enabled: bool = True

    # -- run lifecycle -------------------------------------------------
    def on_run_begin(self, sim) -> None:
        """Called once, before the first step of ``Simulator.run``."""

    def on_run_end(self, sim, trace) -> None:
        """Called once when the run loop exits (quiescence or horizon)."""

    # -- step / phase structure ----------------------------------------
    def on_step_begin(self, t: Time) -> None:
        """An active step starts (inactive steps are skipped entirely)."""

    def on_step_end(self, t: Time) -> None:
        """The active step's six phases are done."""

    def on_phase_begin(self, phase: str, t: Time) -> None:
        """One of :data:`PHASES` starts within the current step."""

    def on_phase_end(self, phase: str, t: Time) -> None:
        """The phase completed."""

    def on_alarm(self, t: Time, count: int) -> None:
        """``count`` scheduler-requested alarms popped at ``t``.

        The event spine deduplicates pending alarm times, so ``count``
        is the number of *distinct* due times retired (in practice 1),
        not the number of ``add_alarm`` calls that requested them.
        """

    # -- transaction lifecycle -----------------------------------------
    def on_generate(self, txn, t: Time) -> None:
        """Transaction generated (the paper's ``T_t^g`` membership)."""

    def on_schedule(self, txn, exec_time: Time, t: Time) -> None:
        """``commit_schedule`` fixed ``txn``'s execution time, forever."""

    def on_commit(self, txn, t: Time) -> None:
        """Transaction executed and committed at ``t``."""

    def on_defer(self, tid: TxnId, t: Time, missing: Sequence[ObjectId]) -> None:
        """Non-strict mode: execution deferred, objects still missing."""

    # -- object motion -------------------------------------------------
    def on_depart(self, oid: ObjectId, t: Time, src: NodeId, dst: NodeId, arrive: Time) -> None:
        """Master object left ``src`` toward ``dst`` (one trace leg)."""

    def on_arrive(self, oid: ObjectId, t: Time, node: NodeId) -> None:
        """Master object settled at ``node``."""

    def on_copy(self, oid: ObjectId, reader_tid: TxnId, t: Time, arrive: Time) -> None:
        """A read-only copy was cut for ``reader_tid``."""

    # -- fault injection / recovery (repro.faults) ---------------------
    def on_fault(
        self,
        kind: str,
        t: Time,
        node: Optional[NodeId] = None,
        oid: Optional[ObjectId] = None,
        extra: Time = 0,
    ) -> None:
        """An injected fault fired: ``kind`` is a
        :class:`~repro.sim.trace.FaultRecord` kind ("drop", "delay",
        "msg-delay", "crash", "restart", "crash-delay", "rerequest").
        Never called on fault-free runs (``SimConfig.faults=None``)."""

    def on_reschedule(
        self,
        tid: TxnId,
        t: Time,
        backoff: Time,
        new_exec: Time,
        missing: Sequence[ObjectId],
    ) -> None:
        """Recovery rescheduled ``tid`` at ``t`` after it missed its
        committed execution time; ``new_exec`` is -1 when the scheduler
        deferred the new commitment (e.g. to a bucket activation)."""

    # -- ingestion front-end (repro.service) ---------------------------
    def on_shed(self, t: Time, home: NodeId, reason: str, priority: int) -> None:
        """The admission queue shed a submission at ``t`` ("queue-full",
        "displaced", or "expired-in-queue").  Never called when
        ``SimConfig.service`` is None."""

    def on_expire(self, tid: TxnId, t: Time, deadline: Time) -> None:
        """An admitted transaction was cancelled mid-flight at ``t``
        because its commit deadline passed.  Never called when
        ``SimConfig.service`` is None."""

    # -- scheduler decisions -------------------------------------------
    def on_sched(self, event: str, t: Time, **fields) -> None:
        """Generic scheduler decision (see the module table for names)."""


class NullProbe(Probe):
    """The default: disabled, never called, zero overhead."""

    enabled = False


#: Shared default instance — identity-comparable, never called.
NULL_PROBE = NullProbe()


class MultiProbe(Probe):
    """Fan every callback out to several probes (e.g. counters + jsonl)."""

    def __init__(self, *probes: Probe) -> None:
        self.probes = tuple(p for p in probes if p.enabled)
        self.enabled = bool(self.probes)

    def on_run_begin(self, sim):
        for p in self.probes:
            p.on_run_begin(sim)

    def on_run_end(self, sim, trace):
        for p in self.probes:
            p.on_run_end(sim, trace)

    def on_step_begin(self, t):
        for p in self.probes:
            p.on_step_begin(t)

    def on_step_end(self, t):
        for p in self.probes:
            p.on_step_end(t)

    def on_phase_begin(self, phase, t):
        for p in self.probes:
            p.on_phase_begin(phase, t)

    def on_phase_end(self, phase, t):
        for p in self.probes:
            p.on_phase_end(phase, t)

    def on_alarm(self, t, count):
        for p in self.probes:
            p.on_alarm(t, count)

    def on_generate(self, txn, t):
        for p in self.probes:
            p.on_generate(txn, t)

    def on_schedule(self, txn, exec_time, t):
        for p in self.probes:
            p.on_schedule(txn, exec_time, t)

    def on_commit(self, txn, t):
        for p in self.probes:
            p.on_commit(txn, t)

    def on_defer(self, tid, t, missing):
        for p in self.probes:
            p.on_defer(tid, t, missing)

    def on_depart(self, oid, t, src, dst, arrive):
        for p in self.probes:
            p.on_depart(oid, t, src, dst, arrive)

    def on_arrive(self, oid, t, node):
        for p in self.probes:
            p.on_arrive(oid, t, node)

    def on_copy(self, oid, reader_tid, t, arrive):
        for p in self.probes:
            p.on_copy(oid, reader_tid, t, arrive)

    def on_fault(self, kind, t, node=None, oid=None, extra=0):
        for p in self.probes:
            p.on_fault(kind, t, node=node, oid=oid, extra=extra)

    def on_reschedule(self, tid, t, backoff, new_exec, missing):
        for p in self.probes:
            p.on_reschedule(tid, t, backoff, new_exec, missing)

    def on_shed(self, t, home, reason, priority):
        for p in self.probes:
            p.on_shed(t, home, reason, priority)

    def on_expire(self, tid, t, deadline):
        for p in self.probes:
            p.on_expire(tid, t, deadline)

    def on_sched(self, event, t, **fields):
        for p in self.probes:
            p.on_sched(event, t, **fields)

    def summary(self) -> Optional[dict]:
        """First sub-probe summary, merged left to right."""
        out: dict = {}
        for p in self.probes:
            fn = getattr(p, "summary", None)
            if fn is not None:
                sub = fn()
                if sub:
                    out.update(sub)
        return out or None
