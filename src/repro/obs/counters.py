"""Monotonic counters and per-phase wall-clock timers.

The cheapest useful probe: every callback bumps a dict entry; phase
boundaries additionally sample ``time.perf_counter`` so the run's wall
clock decomposes into the engine's six phases.  ``summary()`` flattens
everything into one JSON-friendly mapping — the ``obs`` payload of
``RunResult`` and of ``python -m repro run --obs-counters``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro._types import Time

from repro.obs.probe import Probe


class CountersProbe(Probe):
    """Counters + timers; see module docstring.

    Attributes
    ----------
    counters:
        Monotonic event counts: ``steps``, ``generated``, ``scheduled``,
        ``commits``, ``deferrals``, ``departures``, ``arrivals``,
        ``copies``, ``alarms``, plus one ``sched.<event>`` entry per
        scheduler decision kind; open (streaming) runs additionally get
        ``stream.generated`` / ``stream.committed`` / ``stream.backlog``
        / ``stream.horizon`` / ``stream.warmup`` from the engine's
        open-run bookkeeping.  Service-mode runs (:mod:`repro.service`)
        additionally get live ``service.shed`` / ``service.shed.<reason>``
        / ``service.expired`` bumps plus authoritative end-of-run
        ``service.*`` totals from ``trace.meta["service"]``.
    phase_seconds:
        Wall-clock seconds spent inside each engine phase.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.phase_seconds: Dict[str, float] = {}
        self.wall_seconds: float = 0.0
        self.first_step: Optional[Time] = None
        self.last_step: Optional[Time] = None
        self._run_t0: float = 0.0
        self._phase_t0: float = 0.0

    def _bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    # -- run / step ----------------------------------------------------
    def on_run_begin(self, sim) -> None:
        self._run_t0 = time.perf_counter()

    def on_run_end(self, sim, trace) -> None:
        self.wall_seconds += time.perf_counter() - self._run_t0
        open_meta = trace.meta.get("open")
        if open_meta is not None:
            # Open-system (streaming) bookkeeping the engine recorded just
            # before this hook: arrivals vs commits vs work left behind.
            self.counters["stream.generated"] = int(open_meta["generated"])
            self.counters["stream.committed"] = int(open_meta["committed"])
            self.counters["stream.backlog"] = int(open_meta["backlog"])
            self.counters["stream.horizon"] = int(open_meta["horizon"])
            self.counters["stream.warmup"] = int(open_meta["warmup"])
        svc = trace.meta.get("service")
        if svc is not None:
            # Service-mode bookkeeping (repro.service): the authoritative
            # end-of-run totals, overwriting any incremental counts.
            self.counters["service.submitted"] = int(svc["submitted"])
            self.counters["service.admitted"] = int(svc["admitted"])
            self.counters["service.shed"] = int(svc["shed"])
            self.counters["service.expired"] = int(svc["expired"])
            self.counters["service.deadline_commits"] = int(svc["deadline_commits"])
            self.counters["service.queue_peak"] = int(svc["queue_peak"])
            self.counters["service.backpressure_steps"] = int(svc["backpressure_steps"])

    def on_step_begin(self, t: Time) -> None:
        self._bump("steps")
        if self.first_step is None:
            self.first_step = t
        self.last_step = t

    def on_phase_begin(self, phase: str, t: Time) -> None:
        self._phase_t0 = time.perf_counter()

    def on_phase_end(self, phase: str, t: Time) -> None:
        dt = time.perf_counter() - self._phase_t0
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + dt

    def on_alarm(self, t: Time, count: int) -> None:
        self._bump("alarms", count)

    # -- lifecycle / motion --------------------------------------------
    def on_generate(self, txn, t) -> None:
        self._bump("generated")

    def on_schedule(self, txn, exec_time, t) -> None:
        self._bump("scheduled")

    def on_commit(self, txn, t) -> None:
        self._bump("commits")

    def on_defer(self, tid, t, missing) -> None:
        self._bump("deferrals")

    def on_depart(self, oid, t, src, dst, arrive) -> None:
        self._bump("departures")

    def on_arrive(self, oid, t, node) -> None:
        self._bump("arrivals")

    def on_copy(self, oid, reader_tid, t, arrive) -> None:
        self._bump("copies")

    def on_sched(self, event, t, **fields) -> None:
        self._bump(f"sched.{event}")

    # -- fault injection / recovery (repro.faults) ---------------------
    def on_fault(self, kind, t, node=None, oid=None, extra=0) -> None:
        if kind == "drop":
            self._bump("faults.dropped")
        elif kind == "crash":
            self._bump("faults.crashes")
            self._bump("faults.crashed_steps", extra)
        elif kind in ("delay", "msg-delay", "crash-delay"):
            self._bump("faults.delayed")
            self._bump("faults.delay_steps", extra)
        elif kind == "rerequest":
            self._bump("recovery.rerequests")
        elif kind == "partition":
            self._bump("faults.partitions")
            self._bump("faults.partitioned_steps", extra)
        elif kind in ("partition-block", "partition-msg"):
            self._bump("faults.partition_waits")
            self._bump("faults.partition_wait_steps", extra)
        elif kind == "reroute":
            self._bump("faults.reroutes")
            self._bump("faults.reroute_steps", extra)
        else:
            self._bump(f"faults.{kind}")

    def on_reschedule(self, tid, t, backoff, new_exec, missing) -> None:
        self._bump("recovery.reschedules")
        prev = self.counters.get("recovery.backoff_max", 0)
        if backoff > prev:
            self.counters["recovery.backoff_max"] = backoff

    # -- ingestion front-end (repro.service) ---------------------------
    def on_shed(self, t, home, reason, priority) -> None:
        self._bump("service.shed")
        self._bump(f"service.shed.{reason}")

    def on_expire(self, tid, t, deadline) -> None:
        self._bump("service.expired")

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        """Flat mapping: counters + ``phase_s.<name>`` + ``wall_s``."""
        out: Dict[str, object] = dict(sorted(self.counters.items()))
        for phase, secs in sorted(self.phase_seconds.items()):
            out[f"phase_s.{phase}"] = round(secs, 6)
        out["wall_s"] = round(self.wall_seconds, 6)
        if self.first_step is not None:
            out["first_step"] = self.first_step
            out["last_step"] = self.last_step
        return out
