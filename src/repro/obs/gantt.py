"""Live Gantt feeder: rebuild a renderable trace from probe events alone.

Proof that the event stream is self-sufficient: :class:`GanttProbe`
listens to generate/schedule/commit/depart/copy events and reconstructs an
:class:`~repro.sim.trace.ExecutionTrace` good enough for
:func:`repro.analysis.gantt.render_gantt` — without ever touching the
engine's own trace.  Useful mid-run too: ``probe.render()`` between
``run_until`` calls shows the schedule as the probe has seen it so far.
"""

from __future__ import annotations

from typing import Dict

from repro._types import Time, TxnId
from repro.obs.probe import Probe
from repro.sim.trace import CopyLeg, ExecutionTrace, ObjectLeg, TxnRecord


class GanttProbe(Probe):
    """Accumulate an ExecutionTrace view from events; render on demand."""

    def __init__(self) -> None:
        self.trace = ExecutionTrace(graph_name="", initial_placement={})
        self._gen: Dict[TxnId, tuple] = {}
        self._sched_t: Dict[TxnId, Time] = {}

    def on_run_begin(self, sim) -> None:
        self.trace.graph_name = sim.graph.name
        self.trace.object_speed_den = sim.object_speed_den
        for oid, node in sim.trace.initial_placement.items():
            self.trace.initial_placement.setdefault(oid, node)

    def on_generate(self, txn, t) -> None:
        self._gen[txn.tid] = (txn.home, tuple(sorted(txn.objects)), tuple(sorted(txn.reads)), t)

    def on_schedule(self, txn, exec_time, t) -> None:
        self._sched_t[txn.tid] = t

    def on_commit(self, txn, t) -> None:
        home, objects, reads, gen_time = self._gen.pop(
            txn.tid, (txn.home, tuple(sorted(txn.objects)), tuple(sorted(txn.reads)), txn.gen_time)
        )
        self.trace.txns[txn.tid] = TxnRecord(
            tid=txn.tid,
            home=home,
            objects=objects,
            gen_time=gen_time,
            schedule_time=self._sched_t.pop(txn.tid, gen_time),
            exec_time=t,
            reads=reads,
        )
        self.trace.end_time = max(self.trace.end_time, t)

    def on_depart(self, oid, t, src, dst, arrive) -> None:
        # New objects created mid-run first become visible when they move.
        self.trace.initial_placement.setdefault(oid, src)
        self.trace.legs.append(ObjectLeg(oid, t, src, dst, arrive))
        self.trace.end_time = max(self.trace.end_time, arrive)

    def on_copy(self, oid, reader_tid, t, arrive) -> None:
        self.trace.copy_legs.append(CopyLeg(oid, reader_tid, t, -1, -1, arrive, -1))

    def render(self, *, width: int = 72, top_txns: int = 8) -> str:
        """ASCII Gantt of everything observed so far."""
        from repro.analysis.gantt import render_gantt

        return render_gantt(self.trace, width=width, top_txns=top_txns)
