"""Append-only JSONL event stream with a versioned schema.

One line per event, first line a header record; reloadable with
:func:`load_events` for offline analysis (latency breakdowns, scheduler
decision audits, flame-style phase accounting).  The stream is append-only
and flushed on run end, so a crashed run still leaves a usable prefix.

Schema (version ``repro.obs/1``)
--------------------------------
Header line::

    {"schema": "repro.obs/1", "kind": "header", "graph": "...", "scheduler": "..."}

Event lines carry ``e`` (event name), ``t`` (simulation time), and
event-specific fields::

    {"e": "step", "t": 12}
    {"e": "generate", "t": 12, "tid": 3, "home": 5, "writes": [1], "reads": []}
    {"e": "schedule", "t": 12, "tid": 3, "exec": 17}
    {"e": "commit", "t": 17, "tid": 3}
    {"e": "defer", "t": 17, "tid": 3, "missing": [1]}
    {"e": "depart", "t": 13, "oid": 1, "src": 5, "dst": 7, "arrive": 15}
    {"e": "arrive", "t": 15, "oid": 1, "node": 7}
    {"e": "copy", "t": 13, "oid": 1, "tid": 4, "arrive": 14}
    {"e": "alarm", "t": 16, "count": 1}
    {"e": "sched.color", "t": 12, "tid": 3, "color": 5, "constraints": 2}
    {"e": "fault.drop", "t": 13, "node": 5, "oid": 1}
    {"e": "fault.crash", "t": 20, "node": 2, "extra": 8}
    {"e": "reschedule", "t": 19, "tid": 3, "backoff": 2, "exec": 24, "missing": [1]}
    {"e": "end", "t": 40, "txns": 10}

Unknown fields must be preserved by readers; unknown event names must be
skipped, not rejected — the version only bumps on incompatible changes.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.obs.probe import Probe

SCHEMA_VERSION = "repro.obs/1"


class JsonlProbe(Probe):
    """Stream every probe event to ``path`` (or a writable file object).

    Parameters
    ----------
    path:
        Target file path (truncated on construction) or an open text
        stream.  Pass a stream to capture events in memory
        (``io.StringIO``) for tests.
    phases:
        Also emit per-phase begin markers (``{"e": "phase", ...}``).
        Off by default: six extra lines per step is usually noise.
    """

    def __init__(self, path: Union[str, IO[str]], *, phases: bool = False) -> None:
        if isinstance(path, str):
            self._fh: IO[str] = open(path, "w")
            self._owns = True
        else:
            self._fh = path
            self._owns = False
        self.path = path if isinstance(path, str) else None
        self.phases = phases
        self._wrote_header = False

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    # -- run lifecycle -------------------------------------------------
    def on_run_begin(self, sim) -> None:
        if not self._wrote_header:
            self._wrote_header = True
            self._write({
                "schema": SCHEMA_VERSION,
                "kind": "header",
                "graph": sim.graph.name,
                "scheduler": type(sim.scheduler).__name__,
                "object_speed_den": sim.object_speed_den,
            })

    def on_run_end(self, sim, trace) -> None:
        self._write({"e": "end", "t": trace.end_time, "txns": len(trace.txns)})
        self._fh.flush()

    def close(self) -> None:
        """Flush, fsync, and close an owned file (idempotent).

        The fsync matters on the signal path (:mod:`repro.durability`
        closes probes before a SIGTERM/SIGINT exit): a killed run must
        leave a durable, parseable JSONL prefix on disk, not lines
        stranded in OS buffers.  Each ``on_run_end`` already flushes, so
        forgetting this only leaks a descriptor."""
        if self._owns and not self._fh.closed:
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._fh.close()

    # -- checkpoint support (repro.durability) -------------------------
    def __getstate__(self) -> dict:
        if not self._owns:
            raise ReproError(
                "JsonlProbe wrapping an open stream cannot be checkpointed; "
                "construct it with a file path instead"
            )
        self._fh.flush()
        state = self.__dict__.copy()
        state["_fh"] = None
        state["_offset"] = 0 if self._fh.closed else self._fh.tell()
        state["_closed"] = self._fh.closed
        return state

    def __setstate__(self, state: dict) -> None:
        offset = state.pop("_offset")
        closed = state.pop("_closed", False)
        self.__dict__.update(state)
        # Reopen at the checkpointed offset.  The killed run usually wrote
        # past it before dying; truncating back restores the exact prefix,
        # so the resumed run reproduces the uninterrupted file byte for
        # byte.  A missing file (checkpoint moved to a fresh directory)
        # degrades to a restart of the stream from the offset's events.
        if os.path.exists(self.path):
            fh = open(self.path, "r+")
            fh.truncate(offset)
            fh.seek(offset)
        else:
            fh = open(self.path, "w")
        self._fh = fh
        if closed:
            fh.close()

    # -- events --------------------------------------------------------
    def on_step_begin(self, t) -> None:
        self._write({"e": "step", "t": t})

    def on_phase_begin(self, phase, t) -> None:
        if self.phases:
            self._write({"e": "phase", "t": t, "name": phase})

    def on_alarm(self, t, count) -> None:
        self._write({"e": "alarm", "t": t, "count": count})

    def on_generate(self, txn, t) -> None:
        self._write({
            "e": "generate", "t": t, "tid": txn.tid, "home": txn.home,
            "writes": sorted(txn.objects), "reads": sorted(txn.reads),
        })

    def on_schedule(self, txn, exec_time, t) -> None:
        self._write({"e": "schedule", "t": t, "tid": txn.tid, "exec": exec_time})

    def on_commit(self, txn, t) -> None:
        self._write({"e": "commit", "t": t, "tid": txn.tid})

    def on_defer(self, tid, t, missing) -> None:
        self._write({"e": "defer", "t": t, "tid": tid, "missing": list(missing)})

    def on_depart(self, oid, t, src, dst, arrive) -> None:
        self._write({"e": "depart", "t": t, "oid": oid, "src": src, "dst": dst, "arrive": arrive})

    def on_arrive(self, oid, t, node) -> None:
        self._write({"e": "arrive", "t": t, "oid": oid, "node": node})

    def on_copy(self, oid, reader_tid, t, arrive) -> None:
        self._write({"e": "copy", "t": t, "oid": oid, "tid": reader_tid, "arrive": arrive})

    def on_fault(self, kind, t, node=None, oid=None, extra=0) -> None:
        rec = {"e": f"fault.{kind}", "t": t}
        if node is not None:
            rec["node"] = node
        if oid is not None:
            rec["oid"] = oid
        if extra:
            rec["extra"] = extra
        self._write(rec)

    def on_reschedule(self, tid, t, backoff, new_exec, missing) -> None:
        self._write({
            "e": "reschedule", "t": t, "tid": tid, "backoff": backoff,
            "exec": new_exec, "missing": list(missing),
        })

    def on_sched(self, event, t, **fields) -> None:
        rec = {"e": f"sched.{event}", "t": t}
        rec.update(fields)
        self._write(rec)


def load_events(path: Union[str, IO[str]], *, require_schema: bool = True) -> List[dict]:
    """Load a JSONL event stream written by :class:`JsonlProbe`.

    Returns the event records (header excluded).  Raises ``ValueError``
    when ``require_schema`` and the header is missing or carries an
    unknown schema identifier.
    """
    return list(iter_events(path, require_schema=require_schema))


def iter_events(path: Union[str, IO[str]], *, require_schema: bool = True) -> Iterator[dict]:
    """Streaming variant of :func:`load_events`."""
    fh: IO[str]
    owns = isinstance(path, str)
    fh = open(path) if owns else path
    try:
        header: Optional[dict] = None
        it = enumerate(fh)
        cur = next(it, None)
        while cur is not None:
            nxt = next(it, None)
            i, raw = cur
            line = raw.strip()
            if line:
                try:
                    rec = json.loads(line)
                except ValueError:
                    if nxt is None:
                        # A torn final line is the signature of a killed
                        # writer (SIGKILL mid-write): the prefix before it
                        # is still a valid stream, so stop, don't reject.
                        break
                    raise
                if i == 0 and rec.get("kind") == "header":
                    header = rec
                    if require_schema and rec.get("schema") != SCHEMA_VERSION:
                        raise ValueError(f"unknown obs schema {rec.get('schema')!r}")
                elif i == 0 and require_schema:
                    raise ValueError("obs stream has no header record")
                else:
                    yield rec
            cur = nxt
        if header is None and require_schema:
            raise ValueError("obs stream is empty")
    finally:
        if owns:
            fh.close()
