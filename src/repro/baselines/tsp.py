"""TSP-tour baseline (after Zhang et al. [30]).

[30] routes each object along a travelling-salesman tour of its
requesters, which minimizes *communication cost* but — per the lower bound
of Busch et al. [4] discussed in the paper's related work — can be far
from optimal in *execution time*.  We reproduce the approach as an online
scheduler: each step's new transactions are ordered by their position on a
nearest-neighbour tour of their hottest object (computed from the object's
current position) and then colored in that order, so objects do follow
NN-tours while the schedule remains feasible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro._types import ObjectId, Time
from repro.core.base import OnlineScheduler
from repro.core.coloring import min_valid_color
from repro.core.dependency import constraints_for
from repro.network.oracles import OracleRow
from repro.sim.transactions import Transaction


def nearest_neighbor_order(graph, start, txns: Sequence[Transaction]) -> List[Transaction]:
    """Order ``txns`` by a nearest-neighbour walk of their homes from
    ``start`` — the classical 2-approximation-flavoured TSP heuristic."""
    remaining = list(txns)
    order: List[Transaction] = []
    oracle = graph.oracle
    pos = start
    while remaining:
        if oracle is not None:
            drow = OracleRow(oracle, pos)
        else:
            drow = graph.distances_from(pos)
        nxt = min(remaining, key=lambda x: (drow[x.home], x.tid))
        order.append(nxt)
        remaining.remove(nxt)
        pos = nxt.home
    return order


class TspTourScheduler(OnlineScheduler):
    """Per-object nearest-neighbour tour scheduler."""

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        if not new_txns:
            return
        # Group the step's transactions by their hottest object (the one
        # most requested in this step) and order each group along a
        # nearest-neighbour tour from the object's current position.
        counts: Dict[ObjectId, int] = {}
        for txn in new_txns:
            for oid in txn.all_objects:
                counts[oid] = counts.get(oid, 0) + 1
        groups: Dict[ObjectId, List[Transaction]] = {}
        no_obj: List[Transaction] = []
        for txn in new_txns:
            if not txn.all_objects:
                no_obj.append(txn)
                continue
            hot = max(txn.all_objects, key=lambda o: (counts[o], -o))
            groups.setdefault(hot, []).append(txn)
        ordered: List[Transaction] = list(no_obj)
        for oid in sorted(groups):
            obj = self.sim.objects[oid]
            start = obj.dest if obj.in_transit else obj.location
            ordered.extend(nearest_neighbor_order(self.sim.graph, start, groups[oid]))
        for txn in ordered:
            cons = constraints_for(self.sim, txn, now=t)
            color = min_valid_color(cons)
            self.emit("color", t, tid=txn.tid, color=color, constraints=len(cons))
            self.sim.commit_schedule(txn, t + color)
