"""FIFO serial baseline: global arrival-order serialization.

The simplest correct online scheduler: transactions execute one after
another in arrival order, each waiting for the previous one to finish plus
the worst-case travel time of its own objects.  No concurrency is
exploited — two transactions on disjoint objects still serialize — so this
is the natural "no scheduler" upper anchor for every experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro._types import NodeId, ObjectId, Time
from repro.core.base import OnlineScheduler
from repro.network.oracles import OracleRow
from repro.sim.transactions import Transaction


class FifoSerialScheduler(OnlineScheduler):
    """Serializes all transactions in (arrival time, tid) order."""

    #: Incremental protocol: arrival-driven only.
    wants_deltas = True

    def __init__(self) -> None:
        super().__init__()
        self._horizon: Time = 0
        #: where each already-planned object will sit once the schedule
        #: drains (home of its last planned requester)
        self._planned_pos: Dict[ObjectId, NodeId] = {}

    def on_deltas(self, t: Time, deltas) -> None:
        if deltas.arrived:
            self.on_step(t, deltas.arrived)

    def on_step(self, t: Time, new_txns: List[Transaction]) -> None:
        assert self.sim is not None
        speed = self.sim.object_speed_den
        graph = self.sim.graph
        for txn in sorted(new_txns, key=lambda x: x.tid):
            bound: Time = 1
            # One cached Dijkstra row serves the whole object loop; with
            # an oracle the "row" answers point queries in O(1) instead.
            if graph.oracle is not None:
                drow = OracleRow(graph.oracle, txn.home)
            else:
                drow = graph.distances_from(txn.home)
            for oid in txn.all_objects:
                pos = self._planned_pos.get(oid)
                if pos is None:
                    reach = self.sim.object_time_to_reach(oid, txn.home)
                else:
                    reach = speed * drow[pos]
                bound = max(bound, reach)
            exec_time = max(self._horizon, t) + bound
            self.emit("fifo", t, tid=txn.tid, bound=bound)
            self.sim.commit_schedule(txn, exec_time)
            self._horizon = exec_time
            # Only writes move the master object; a read receives a copy
            # and must not perturb the planned master position.
            for oid in txn.objects:
                self._planned_pos[oid] = txn.home
