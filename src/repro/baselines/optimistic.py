"""Optimistic DTM baseline: acquire-on-demand with aborts and backoff.

The paper's schedulers are *pessimistic*: execution times are planned so
no conflict ever materializes.  Classic distributed TM implementations
(the systems the introduction cites) are *optimistic*: a transaction
simply requests its objects, holds what it gets, and aborts (releasing
everything, retrying after randomized backoff) when it appears
deadlocked.  This module implements that execution style so experiments
can measure what the paper's scheduling buys (bench E24).

Semantics:

* each object keeps a FCFS queue of requesting transactions; a free
  object is granted to the queue head and shipped to its node;
* a transaction commits the step it holds *all* of its objects locally;
* a transaction that has made no acquisition progress for
  ``hold_timeout`` steps aborts: held objects are released (and re-granted
  to the next waiters), and it re-requests everything after a randomized
  exponential backoff;
* committed work produces a standard :class:`ExecutionTrace` (object legs
  are real movements, so the independent certifier accepts it); abort
  statistics land in ``trace.meta``.

This is deliberately a *separate* miniature engine: the main simulator's
contract (execution times committed once, in advance) is exactly what an
optimistic system does not have.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro._types import NodeId, ObjectId, Time, TxnId
from repro.errors import SchedulingError
from repro.network.graph import Graph
from repro.sim.trace import ExecutionTrace, ObjectLeg, TxnRecord


class _Txn:
    __slots__ = ("tid", "home", "objects", "gen_time", "held", "state",
                 "retry_at", "attempts", "last_progress")

    def __init__(self, tid, home, objects, gen_time):
        self.tid = tid
        self.home = home
        self.objects = frozenset(objects)
        self.gen_time = gen_time
        self.held: Set[ObjectId] = set()
        self.state = "pending"  # pending | waiting | backoff | done
        self.retry_at: Time = 0
        self.attempts = 0
        self.last_progress: Time = gen_time


class _Obj:
    __slots__ = ("oid", "location", "in_transit", "dest", "arrive", "owner", "queue")

    def __init__(self, oid, location):
        self.oid = oid
        self.location = location
        self.in_transit = False
        self.dest: Optional[NodeId] = None
        self.arrive: Time = 0
        self.owner: Optional[TxnId] = None
        self.queue: List[TxnId] = []


class OptimisticDTMSimulator:
    """Run a workload under optimistic acquire-abort-retry execution."""

    def __init__(
        self,
        graph: Graph,
        workload,
        *,
        hold_timeout: Optional[Time] = None,
        backoff_base: int = 4,
        backoff_cap: int = 256,
        seed: int = 0,
        max_steps: int = 200_000,
    ) -> None:
        self.graph = graph
        self.hold_timeout = hold_timeout if hold_timeout is not None else 4 * max(1, graph.diameter())
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.trace = ExecutionTrace(graph_name=graph.name, initial_placement={})
        self.objects: Dict[ObjectId, _Obj] = {}
        for oid, node in workload.initial_objects().items():
            self.objects[oid] = _Obj(oid, node)
            self.trace.initial_placement[oid] = node
        self.txns: Dict[TxnId, _Txn] = {}
        self._arrivals: List[Tuple[Time, int, _Txn]] = []
        for i, spec in enumerate(sorted(workload.arrivals(), key=lambda s: s.gen_time)):
            if spec.reads:
                raise SchedulingError("optimistic baseline covers write-only workloads")
            txn = _Txn(i, spec.home, spec.objects, spec.gen_time)
            self.txns[i] = txn
            heapq.heappush(self._arrivals, (spec.gen_time, i, txn))
        self.aborts = 0
        self.wasted_travel: Time = 0

    # ------------------------------------------------------------------
    def run(self) -> ExecutionTrace:
        t: Time = 0
        live = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise SchedulingError(
                    f"optimistic execution livelocked ({self.max_steps} steps, "
                    f"{self.aborts} aborts)"
                )
            # arrivals
            while self._arrivals and self._arrivals[0][0] <= t:
                _, _, txn = heapq.heappop(self._arrivals)
                live += 1
                txn.state = "waiting"
                txn.last_progress = t
                self._request_all(txn, t)
            # deliveries
            for obj in self.objects.values():
                if obj.in_transit and obj.arrive <= t:
                    obj.in_transit = False
                    obj.location = obj.dest
                    obj.dest = None
                    if obj.owner is not None:
                        holder = self.txns[obj.owner]
                        holder.held.add(obj.oid)
                        holder.last_progress = t
            # commits
            for txn in self.txns.values():
                if txn.state == "waiting" and txn.held == txn.objects and txn.objects:
                    self._commit(txn, t)
                    live -= 1
                elif txn.state == "waiting" and not txn.objects:
                    self._commit(txn, t)
                    live -= 1
            # timeouts -> aborts
            for txn in self.txns.values():
                if txn.state == "waiting" and t - txn.last_progress > self.hold_timeout:
                    self._abort(txn, t)
            # retries
            for txn in self.txns.values():
                if txn.state == "backoff" and txn.retry_at <= t:
                    txn.state = "waiting"
                    txn.last_progress = t
                    self._request_all(txn, t)
            # grants / shipping
            for obj in self.objects.values():
                self._maybe_grant(obj, t)
            if live == 0 and not self._arrivals:
                break
            t += 1
        self.trace.end_time = t
        self.trace.meta["aborts"] = self.aborts
        self.trace.meta["wasted_travel"] = self.wasted_travel
        return self.trace

    # ------------------------------------------------------------------
    def _request_all(self, txn: _Txn, t: Time) -> None:
        for oid in sorted(txn.objects):
            obj = self.objects[oid]
            if txn.tid not in obj.queue and obj.owner != txn.tid:
                obj.queue.append(txn.tid)

    def _maybe_grant(self, obj: _Obj, t: Time) -> None:
        if obj.in_transit:
            return
        if obj.owner is None:
            # grant to the first still-waiting requester
            while obj.queue:
                head = obj.queue.pop(0)
                if self.txns[head].state == "waiting":
                    obj.owner = head
                    break
            if obj.owner is None:
                return
        holder = self.txns[obj.owner]
        if obj.location == holder.home:
            if obj.oid not in holder.held:
                holder.held.add(obj.oid)
                holder.last_progress = t
            return
        # ship to the owner
        dist = self.graph.distance(obj.location, holder.home)
        obj.in_transit = True
        obj.dest = holder.home
        obj.arrive = t + dist
        self.trace.legs.append(ObjectLeg(obj.oid, t, obj.location, holder.home, obj.arrive))

    def _commit(self, txn: _Txn, t: Time) -> None:
        txn.state = "done"
        for oid in txn.objects:
            obj = self.objects[oid]
            obj.owner = None  # remains at txn.home until re-granted
        self.trace.txns[txn.tid] = TxnRecord(
            tid=txn.tid,
            home=txn.home,
            objects=tuple(sorted(txn.objects)),
            gen_time=txn.gen_time,
            schedule_time=t,
            exec_time=t,
        )

    def _abort(self, txn: _Txn, t: Time) -> None:
        self.aborts += 1
        txn.attempts += 1
        # release held objects and leave every queue
        for oid in txn.objects:
            obj = self.objects[oid]
            if obj.owner == txn.tid:
                if obj.in_transit:
                    # the shipment completes, then the object is free
                    self.wasted_travel += max(0, obj.arrive - t)
                obj.owner = None
            if txn.tid in obj.queue:
                obj.queue.remove(txn.tid)
        txn.held.clear()
        txn.state = "backoff"
        window = min(self.backoff_cap, self.backoff_base ** min(8, txn.attempts))
        txn.retry_at = t + 1 + int(self.rng.integers(0, max(1, window)))
