"""Baseline schedulers and execution styles (experiments E9, E24)."""

from repro.baselines.fifo import FifoSerialScheduler
from repro.baselines.optimistic import OptimisticDTMSimulator
from repro.baselines.tsp import TspTourScheduler

__all__ = ["FifoSerialScheduler", "TspTourScheduler", "OptimisticDTMSimulator"]
