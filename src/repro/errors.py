"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Malformed graph or invalid graph query (unknown node, no path...)."""


class SchedulingError(ReproError):
    """A scheduler produced or was asked to produce an invalid schedule."""


class InfeasibleScheduleError(SchedulingError):
    """A schedule was certified infeasible by the validator.

    Carries the list of violations so tests and benches can report exactly
    which transaction missed which object.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        preview = "; ".join(str(v) for v in self.violations[:5])
        more = "" if len(self.violations) <= 5 else f" (+{len(self.violations) - 5} more)"
        super().__init__(f"infeasible schedule: {preview}{more}")


class ParallelError(ReproError):
    """A parallel fan-out (``repro.parallel``) failed inside a worker.

    Raised when the original worker exception cannot be transported
    faithfully across the process boundary (or the pool itself broke);
    carries the spec index, the original exception type name, and the
    remote traceback text so the failure stays debuggable.
    """

    def __init__(self, message, *, index=None, cause_type=None, remote_traceback=None):
        self.index = index
        self.cause_type = cause_type
        self.remote_traceback = remote_traceback
        super().__init__(message)


class WorkloadError(ReproError):
    """Invalid workload specification (k larger than object pool, ...)."""


class WarmupError(WorkloadError):
    """The measurement warmup does not fit inside the run horizon.

    ``warmup >= horizon`` leaves an empty SLO window: every percentile
    would be NaN and the stability verdict meaningless.  Raised by
    :meth:`repro.sim.config.SimConfig.validate` (``warmup`` vs
    ``max_time``) and :meth:`repro.sim.engine.Simulator.run` (``warmup``
    vs ``until``) instead of silently reporting empty windows.
    Subclasses :class:`WorkloadError` so pre-existing handlers keep
    working.
    """


class ServiceError(ReproError):
    """Invalid ingestion-service configuration (repro.service)."""


class CheckpointError(ReproError):
    """A durability checkpoint could not be written, read, or applied."""


class RunInterrupted(ReproError):
    """A run was stopped by SIGTERM/SIGINT after writing a checkpoint.

    Carries the checkpoint path so drivers (the CLI, sweep harnesses) can
    tell the user exactly how to resume.
    """

    def __init__(self, message, *, path=None, signum=None):
        self.path = path
        self.signum = signum
        super().__init__(message)


class CoverError(ReproError):
    """Sparse cover construction failed to satisfy a required property."""
