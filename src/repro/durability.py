"""Checkpoint/restore for long simulations (schema ``repro.checkpoint/1``).

A checkpoint is one file with two parts:

* a single JSON **header line** — schema version, step/now, live txn and
  object counts, RNG cursor digests — readable without unpickling, so
  ``repro checkpoint inspect`` and sweep resumption can triage snapshots
  cheaply (and safely: no code runs);
* a pickle **payload** of the full :class:`~repro.sim.engine.Simulator`
  — event-spine buckets, columnar txn table, dependency edges, transport
  in-flight legs, fault injector cursors, probe state, and the trace
  prefix.

Restoring (:func:`load_checkpoint` / ``Simulator.restore``) yields an
engine that continues the run and produces a trace **byte-identical** to
the uninterrupted one: all fault randomness is stateless string-keyed
RNG (:mod:`repro.faults`), open-system arrival streams are rebuilt from
their seed and fast-forwarded by the consumed-spec count, and the
engine's pickle hooks capture every mutable cursor.

Checkpoints are written atomically (temp file + ``os.replace`` + fsync),
so a crash *during* checkpointing never corrupts the previous snapshot.
Periodic writes are driven by ``SimConfig.checkpoint_every``; SIGTERM/
SIGINT during a run with ``checkpoint_path`` set triggers a final write
plus probe fsync before the run raises
:class:`~repro.errors.RunInterrupted`.

Serializing the payload is O(run history) — late in a long run one
snapshot costs hundreds of milliseconds — so periodic writes can also
run **asynchronously** (:func:`save_checkpoint_async`, selected by
``SimConfig(checkpoint_sync=False)``): the engine forks at the step
boundary and a detached child serializes the copy-on-write image while
the parent simulates on.  The child sees the exact step-boundary state,
so the snapshot bytes are identical to a synchronous write; the parent
pays only the fork (``benchmarks/bench_checkpoint.py`` guards the
overhead at < 5%).  Where ``os.fork`` is unavailable the async path
falls back to the synchronous writer.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from typing import Any, Dict

from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "save_checkpoint",
    "save_checkpoint_async",
    "reap_async_writers",
    "load_checkpoint",
    "inspect_checkpoint",
    "resolve_checkpoint_path",
    "close_probes",
]

CHECKPOINT_SCHEMA = "repro.checkpoint/1"


def _digest(*parts: Any) -> str:
    """Short stable digest of a tuple of state cursors (hex, 12 chars)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()[:12]


def _rng_cursors(sim) -> Dict[str, str]:
    """Digests of every RNG-adjacent cursor the run's determinism rests on.

    The fault layer's randomness is stateless (string-keyed
    ``random.Random`` per decision), so its "cursor" is the plan seed
    plus the injector's mutable bookkeeping; the arrival stream's cursor
    is the consumed-spec count; the tid and spec-sequence counters are
    the engine's own monotone cursors.  Matching digests between two
    snapshots mean the runs are at identical decision points.
    """
    cursors = {
        "tid": _digest(sim._tid_counter),
        "spec-seq": _digest(sim.events._spec_seq),
        "arrivals": _digest(sim._arrival_pulled, sim._arrival_buffered),
    }
    inj = sim.faults
    if inj is not None:
        cursors["faults"] = _digest(
            inj.plan.seed,
            sorted(inj.reschedule_counts.items()),
            sorted(inj.lost.items()),
        )
    return cursors


def resolve_checkpoint_path(path: str, step: int) -> str:
    """Expand a ``{step}`` placeholder (keep-every-snapshot mode)."""
    return path.format(step=step) if "{step}" in path else path


def save_checkpoint(sim, path: str) -> str:
    """Write ``sim`` to ``path`` atomically; returns the resolved path."""
    resolved = resolve_checkpoint_path(path, sim._active_steps)
    payload = pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "step": sim._active_steps,
        "now": sim.now,
        "graph": sim.graph.name,
        "nodes": sim.graph.num_nodes,
        "scheduler": type(sim.scheduler).__name__,
        "live_txns": len(sim.live),
        "txns_total": len(sim.txns),
        "committed": len(sim.trace.txns),
        "objects": len(sim.objects),
        "events_pending": len(sim.events),
        "messages_in_flight": sim.router.pending,
        "rng_cursors": _rng_cursors(sim),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    tmp = resolved + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, separators=(",", ":")).encode() + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, resolved)
    return resolved


#: pids of in-flight forked checkpoint writers, reaped opportunistically
_ASYNC_WRITERS: list = []


def reap_async_writers(block: bool = False) -> None:
    """Collect finished forked checkpoint writers (no zombies linger).

    Called automatically before every :func:`save_checkpoint_async`;
    ``block=True`` waits for every outstanding writer — useful in tests
    that want all snapshot files on disk before asserting on them.
    """
    for pid in _ASYNC_WRITERS[:]:
        try:
            done, _ = os.waitpid(pid, 0 if block else os.WNOHANG)
        except ChildProcessError:
            done = pid  # already collected elsewhere
        if done:
            _ASYNC_WRITERS.remove(pid)


def save_checkpoint_async(sim, path: str) -> str:
    """Write ``sim`` to ``path`` from a forked child; returns the resolved
    path the write will land at.

    The fork happens at the caller's step boundary, so the child's
    copy-on-write image — and therefore the snapshot bytes — are
    identical to what :func:`save_checkpoint` would produce, but the
    parent pays only the fork and simulates on while the niced child
    serializes.  The parent never blocks on the writer: finished writers
    are reaped on the next call (:func:`reap_async_writers`).  The child
    still writes atomically, so a reader never observes a partial file;
    it may just observe the *previous* snapshot until the new one lands.
    Prefer a ``{step}`` path template with this mode: concurrent writers
    then target distinct files, so a slow older writer can never replace
    a newer fixed-path snapshot.  Falls back to the synchronous writer
    where ``os.fork`` does not exist.
    """
    if not hasattr(os, "fork"):
        return save_checkpoint(sim, path)
    resolved = resolve_checkpoint_path(path, sim._active_steps)
    reap_async_writers()
    pid = os.fork()
    if pid:
        _ASYNC_WRITERS.append(pid)
        return resolved
    # Child: serialize + atomic write, then hard-exit so inherited file
    # buffers (probes, logs) are never double-flushed.
    try:
        try:
            os.nice(10)  # the writer must not starve the simulating parent
        except OSError:
            pass
        save_checkpoint(sim, resolved)
    finally:
        os._exit(0)


def _read_header(fh: io.BufferedReader, path: str) -> dict:
    line = fh.readline()
    try:
        header = json.loads(line)
    except ValueError:
        raise CheckpointError(f"{path}: not a repro checkpoint (bad header)") from None
    schema = header.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unknown checkpoint schema {schema!r} "
            f"(this build reads {CHECKPOINT_SCHEMA!r})"
        )
    return header


def inspect_checkpoint(path: str) -> dict:
    """Parse a checkpoint's header only — no unpickling, no code runs."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)


def load_checkpoint(path: str):
    """Rebuild the :class:`Simulator` stored at ``path``.

    The payload hash recorded in the header is verified before
    unpickling, so a torn write (e.g. copied mid-checkpoint) fails with a
    clear error instead of an arbitrary pickle exception.
    """
    with open(path, "rb") as fh:
        header = _read_header(fh, path)
        payload = fh.read()
    if len(payload) != header["payload_bytes"] or (
        hashlib.sha256(payload).hexdigest() != header["payload_sha256"]
    ):
        raise CheckpointError(
            f"{path}: payload corrupt ({len(payload)} bytes, expected "
            f"{header['payload_bytes']}) — was the file truncated?"
        )
    return pickle.loads(payload)


def close_probes(probe) -> None:
    """Flush-and-close every file-owning probe in ``probe`` (fsync path).

    Walks a :class:`~repro.obs.multi.MultiProbe` composite; used by the
    engine's signal exit so a killed run leaves durable JSONL prefixes.
    """
    if probe is None:
        return
    for p in getattr(probe, "probes", (probe,)):
        close = getattr(p, "close", None)
        if close is not None:
            close()
