"""Systematic failure injection: every safety net must catch its failure.

For each contract in the system, inject a violation and assert the right
guard fires: scheduler contracts (engine), trace physics (certifier),
coloring validity (fuzz), directory invariants, and serialization
tampering.  Silence on any of these would mean a bug class could slip
through the whole harness unnoticed.
"""

import pytest

from repro.core import GreedyScheduler
from repro.core.base import OnlineScheduler
from repro.errors import GraphError, InfeasibleScheduleError, SchedulingError
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.sim.trace import CopyLeg, ObjectLeg
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.testing import fuzz_scheduler, random_instance
from repro.workloads import ManualWorkload


def run_with(scheduler_cls, specs=None, placement=None, **engine_kw):
    g = topologies.line(8)
    placement = placement if placement is not None else {0: 0}
    specs = specs if specs is not None else [TxnSpec(0, 5, (0,))]
    wl = ManualWorkload(placement, specs)
    return Simulator(g, scheduler_cls(), wl, **engine_kw).run()


class TestSchedulerContractInjection:
    def test_ignores_travel_time(self):
        class Ignores(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 1)

        with pytest.raises(InfeasibleScheduleError):
            run_with(Ignores)

    def test_schedules_in_past(self):
        class Past(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, max(0, t - 3))

        with pytest.raises(SchedulingError):
            run_with(Past, specs=[TxnSpec(5, 5, (0,))])

    def test_revises_committed_time(self):
        class Revises(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 10)
                    self.sim.commit_schedule(txn, t + 20)

        with pytest.raises(SchedulingError, match="already scheduled"):
            run_with(Revises)

    def test_never_schedules(self):
        class Never(OnlineScheduler):
            def on_step(self, t, new_txns):
                pass

        with pytest.raises(SchedulingError, match="deadlock"):
            run_with(Never)

    def test_ignores_conflicts(self):
        """Scheduling two conflicting txns at the same remote time."""

        class Collides(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 6)

        specs = [TxnSpec(0, 5, (0,)), TxnSpec(0, 7, (0,))]
        with pytest.raises(InfeasibleScheduleError):
            run_with(Collides, specs=specs)

    def test_fuzz_catches_subtle_offset_bug(self):
        """An off-by-one on the color (classic bug) must be caught by the
        public fuzz harness within a few dozen instances."""
        from repro.core.coloring import min_valid_color
        from repro.core.dependency import constraints_for

        class OffByOne(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    c = min_valid_color(constraints_for(self.sim, txn, now=t))
                    self.sim.commit_schedule(txn, t + max(1, c - 1))

        with pytest.raises(InfeasibleScheduleError):
            fuzz_scheduler(OffByOne, trials=60, seed=1)


class TestStepContextInjection:
    """Scheduler exceptions must surface with simulation context: the
    step, the scheduler class, and the transactions being scheduled."""

    def test_foreign_exception_wrapped_with_context(self):
        class Boom(OnlineScheduler):
            def on_step(self, t, new_txns):
                if new_txns:
                    raise ValueError("bucket arithmetic went negative")

        with pytest.raises(SchedulingError) as ei:
            run_with(Boom, specs=[TxnSpec(3, 5, (0,))])
        msg = str(ei.value)
        assert "Boom.on_step failed at t=3" in msg
        assert "[0]" in msg                      # the offending txn ids
        assert "bucket arithmetic went negative" in msg
        assert isinstance(ei.value.__cause__, ValueError)  # original chained

    def test_repro_error_keeps_type_and_gains_context(self):
        class Revises(OnlineScheduler):
            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 10)
                    self.sim.commit_schedule(txn, t + 20)

        # The original message still matches (guards existing handlers)...
        with pytest.raises(SchedulingError, match="already scheduled") as ei:
            run_with(Revises)
        # ...and the context note is appended to it.
        assert "Revises.on_step at t=0" in str(ei.value)


class TestTracePhysicsInjection:
    def base_trace(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        return g, Simulator(g, GreedyScheduler(), wl).run()

    def test_teleport_injection(self):
        g, trace = self.base_trace()
        trace.legs[0] = ObjectLeg(0, 0, 3, 5, 5)  # departs from wrong node
        assert any(
            i.kind in ("leg-gap", "leg-speed")
            for i in certify_trace(g, trace, raise_on_failure=False)
        )

    def test_ftl_injection(self):
        g, trace = self.base_trace()
        leg = trace.legs[0]
        trace.legs[0] = ObjectLeg(leg.oid, leg.depart_time, leg.src, leg.dst, leg.depart_time + 1)
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "leg-speed" for i in issues)

    def test_phantom_copy_injection(self):
        """A copy cut from a node the master never visited."""
        g, trace = self.base_trace()
        trace.copy_legs.append(CopyLeg(0, 99, 1, 7, 7, 1, version=0))
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "copy-origin" for i in issues)

    def test_time_travel_exec_injection(self):
        g, trace = self.base_trace()
        rec = trace.txns[0]
        from repro.sim.trace import TxnRecord

        trace.txns[0] = TxnRecord(rec.tid, rec.home, rec.objects, rec.gen_time,
                                  rec.schedule_time, 1)  # before object arrival
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "absent-object" for i in issues)


class TestDirectoryInjection:
    def test_pointer_cycle_detected(self):
        from repro.directory import ArrowDirectory

        g = topologies.line(6)
        d = ArrowDirectory(g)
        d.register(0, 3)
        # corrupt: create a two-cycle
        d._pointers[0][2] = 1
        d._pointers[0][1] = 2
        with pytest.raises(GraphError, match="cycle"):
            d.find(0, 1)

    def test_lost_sink_detected(self):
        from repro.directory import ArrowDirectory

        g = topologies.line(6)
        d = ArrowDirectory(g)
        d.register(0, 3)
        d._pointers[0][3] = 2  # no node points to itself anymore
        with pytest.raises(GraphError, match="sink"):
            d.home(0)


class TestChaseBudgetInjection:
    def test_probe_chase_budget_guard(self):
        """With an absurdly small chase budget the guard trips instead of
        looping forever."""
        from repro.core import DistributedBucketScheduler
        from repro.offline import ColoringBatchScheduler

        g = topologies.line(16)
        specs = [TxnSpec(0, 12, (0,)), TxnSpec(40, 0, (0,))]
        wl = ManualWorkload({0: 0}, specs)
        sched = DistributedBucketScheduler(
            ColoringBatchScheduler(), seed=0, max_chase_hops=0
        )
        with pytest.raises(SchedulingError, match="chase budget"):
            Simulator(g, sched, wl, object_speed_den=2).run()
