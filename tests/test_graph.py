"""Unit tests for the weighted graph substrate."""

import pytest

from repro.errors import GraphError
from repro.network import Graph, topologies


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_single_node(self):
        g = Graph(1, [])
        assert g.num_nodes == 1
        assert g.distance(0, 0) == 0
        assert g.diameter() == 0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 0, 1), (0, 1, 1)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, 0)])
        with pytest.raises(GraphError):
            Graph(2, [(0, 1, -3)])

    def test_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2, 1)])

    def test_isolated_graph_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [])

    def test_parallel_edges_keep_minimum(self):
        g = Graph(2, [(0, 1, 5), (1, 0, 2), (0, 1, 9)])
        assert g.distance(0, 1) == 2
        assert g.num_edges() == 1

    def test_disconnected_detected_on_query(self):
        g = Graph(4, [(0, 1, 1), (2, 3, 1)])
        with pytest.raises(GraphError):
            g.distance(0, 3)


class TestShortestPaths:
    def test_line_distances(self):
        g = topologies.line(10)
        assert g.distance(0, 9) == 9
        assert g.distance(3, 7) == 4
        assert g.distance(5, 5) == 0

    def test_distance_symmetric(self):
        g = topologies.grid([3, 4])
        for u in g.nodes():
            for v in g.nodes():
                assert g.distance(u, v) == g.distance(v, u)

    def test_weighted_shortcut(self):
        # 0-1-2 with weights 1,1 plus direct 0-2 weight 5: path wins.
        g = Graph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        assert g.distance(0, 2) == 2

    def test_shortest_path_endpoints_and_length(self):
        g = topologies.grid([4, 4])
        path = g.shortest_path(0, 15)
        assert path[0] == 0 and path[-1] == 15
        total = sum(g.neighbors(a)[b] for a, b in zip(path, path[1:]))
        assert total == g.distance(0, 15) == 6

    def test_triangle_inequality(self):
        g = topologies.cluster_graph(3, 4, 5)
        nodes = list(g.nodes())
        for u in nodes[::3]:
            for v in nodes[::4]:
                for w in nodes[::5]:
                    assert g.distance(u, w) <= g.distance(u, v) + g.distance(v, w)

    def test_distances_from_is_cached(self):
        g = topologies.line(6)
        a = g.distances_from(2)
        b = g.distances_from(2)
        assert a is b


class TestDerived:
    def test_diameter_line(self):
        assert topologies.line(17).diameter() == 16

    def test_diameter_clique(self):
        assert topologies.clique(9).diameter() == 1

    def test_eccentricity_center_of_line(self):
        g = topologies.line(9)
        assert g.eccentricity(4) == 4
        assert g.eccentricity(0) == 8

    def test_ball(self):
        g = topologies.line(10)
        assert sorted(g.ball(5, 2)) == [3, 4, 5, 6, 7]
        assert g.ball(0, 0) == [0]

    def test_metric_mst_single_and_empty(self):
        g = topologies.line(5)
        assert g.metric_mst_weight([]) == 0
        assert g.metric_mst_weight([3]) == 0
        assert g.metric_mst_weight([3, 3]) == 0

    def test_metric_mst_on_line_is_span(self):
        g = topologies.line(10)
        # On a line the metric MST of any subset is the span of the subset.
        assert g.metric_mst_weight([2, 7, 5]) == 5
        assert g.metric_mst_weight([0, 9]) == 9

    def test_metric_mst_on_clique(self):
        g = topologies.clique(6)
        assert g.metric_mst_weight([0, 1, 2, 3]) == 3  # 3 unit edges

    def test_metric_mst_duplicates_ignored(self):
        g = topologies.line(8)
        assert g.metric_mst_weight([1, 1, 6, 6]) == 5
