"""Tests for gantt rendering, reports, and fairness metrics."""

from repro.analysis import (
    comparison_report,
    jain_fairness,
    latency_fairness,
    object_lanes,
    render_gantt,
    run_experiment,
    run_report,
    txn_lanes,
)
from repro.baselines import FifoSerialScheduler
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload


def small_run():
    g = topologies.line(8)
    specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,)), TxnSpec(3, 4, (1,))]
    wl = ManualWorkload({0: 0, 1: 4}, specs)
    return g, run_experiment(g, GreedyScheduler(), wl)


class TestGantt:
    def test_object_lanes_shapes(self):
        g, res = small_run()
        lanes = object_lanes(res.trace, width=40)
        assert len(lanes) == 2
        for lane in lanes:
            assert lane.startswith("o")
            assert len(lane.split("|")[1]) == 40

    def test_transit_marks_present(self):
        g, res = small_run()
        lanes = object_lanes(res.trace, width=60)
        assert any(">" in lane for lane in lanes)  # object 0 travelled
        assert all("*" in lane for lane in lanes)  # all objects consumed

    def test_txn_lanes_sorted_by_latency(self):
        g, res = small_run()
        lanes = txn_lanes(res.trace, width=40)
        lats = [int(l.rsplit("lat=", 1)[1]) for l in lanes]
        assert lats == sorted(lats, reverse=True)

    def test_render_gantt_complete(self):
        g, res = small_run()
        out = render_gantt(res.trace, width=50)
        assert "objects" in out and "transactions" in out

    def test_empty_trace(self):
        from repro.sim.trace import ExecutionTrace

        out = render_gantt(ExecutionTrace("t", {}))
        assert "objects" in out


class TestReports:
    def test_run_report_sections(self):
        g, res = small_run()
        md = run_report(g, res, title="T")
        assert md.startswith("# T")
        assert "## Metrics" in md
        assert "## Schedule" in md
        assert "competitive ratio" in md

    def test_run_report_no_gantt(self):
        g, res = small_run()
        md = run_report(g, res, include_gantt=False)
        assert "## Schedule" not in md

    def test_comparison_report(self):
        g = topologies.clique(8)
        mk = lambda: BatchWorkload.uniform(g, num_objects=4, k=2, seed=0)
        a = run_experiment(g, GreedyScheduler(), mk())
        b = run_experiment(g, FifoSerialScheduler(), mk())
        md = comparison_report(g, [("greedy", a), ("fifo", b)])
        assert "Best makespan: **greedy**" in md
        assert "fifo" in md


class TestFairness:
    def test_jain_bounds(self):
        assert jain_fairness([5, 5, 5]) == 1.0
        single = jain_fairness([9, 0, 0])
        assert abs(single - 1 / 3) < 1e-9
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0

    def test_latency_fairness_of_run(self):
        g, res = small_run()
        f = latency_fairness(res.trace)
        assert 0 < f <= 1.0

    def test_fifo_less_fair_than_greedy_under_load(self):
        g = topologies.clique(12)
        mk = lambda: BatchWorkload.uniform(g, num_objects=12, k=1, seed=5)
        greedy = run_experiment(g, GreedyScheduler(), mk())
        fifo = run_experiment(g, FifoSerialScheduler(), mk())
        assert latency_fairness(greedy.trace) >= latency_fairness(fifo.trace) - 0.05
