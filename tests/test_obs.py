"""Observability layer (``repro.obs``) tests.

Three pillars:

* **Byte-identity** — with the default ``NullProbe`` the engine must
  produce traces byte-identical to the pre-observability goldens captured
  in ``tests/data/golden_*.json`` (and they must still certify).
* **Ground truth** — ``CountersProbe`` counters must agree with the
  trace the run produced (commits == transactions, departures == legs...).
* **Round-trip** — ``JsonlProbe`` streams reload through ``load_events``
  with the versioned schema intact, and ``GanttProbe`` can rebuild a
  renderable trace from events alone.
"""

import io
import json
import os

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.obs import (
    NULL_PROBE,
    CountersProbe,
    GanttProbe,
    JsonlProbe,
    MultiProbe,
    NullProbe,
    Probe,
    load_events,
)
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.sim import Simulator, certify_trace
from repro.sim.serialize import trace_to_dict
from repro.workloads import ClosedLoopWorkload, OnlineWorkload
from repro.sim import SimConfig

DATA = os.path.join(os.path.dirname(__file__), "data")


def _golden_cases():
    """(name, graph factory, scheduler factory, workload factory) per golden."""
    return {
        "golden_greedy_clique16.json": (
            lambda: topologies.clique(16),
            lambda: GreedyScheduler(uniform_beta=1),
            lambda g: ClosedLoopWorkload(g, num_objects=8, k=2, rounds=3, seed=0),
        ),
        "golden_bucket_grid5x5.json": (
            lambda: topologies.grid([5, 5]),
            lambda: BucketScheduler(ColoringBatchScheduler()),
            lambda g: OnlineWorkload.bernoulli(g, 8, 2, rate=0.05, horizon=80, seed=0),
        ),
        "golden_bucket_line32.json": (
            lambda: topologies.line(32),
            lambda: BucketScheduler(LineBatchScheduler()),
            lambda g: OnlineWorkload.bernoulli(g, 8, 2, rate=0.05, horizon=80, seed=0),
        ),
    }


@pytest.mark.parametrize("golden", sorted(_golden_cases()))
def test_null_probe_traces_byte_identical_to_goldens(golden):
    """Default (probe-less) runs reproduce the pre-observability traces."""
    graph_f, sched_f, wl_f = _golden_cases()[golden]
    g = graph_f()
    res = run_experiment(g, sched_f(), wl_f(g))
    got = json.dumps(trace_to_dict(res.trace), sort_keys=True, indent=0)
    with open(os.path.join(DATA, golden)) as fh:
        want = fh.read()
    assert got == want, f"trace drifted from {golden}"
    certify_trace(g, res.trace)


def test_null_probe_is_disabled_and_uninvoked():
    assert NullProbe().enabled is False
    assert NULL_PROBE.enabled is False
    g = topologies.clique(6)
    wl = ClosedLoopWorkload(g, num_objects=4, k=2, rounds=2, seed=1)
    sim = Simulator(g, GreedyScheduler(), wl)
    assert sim._obs is None  # call sites compiled down to a None check
    sim.run()


def _clique_run(probe):
    g = topologies.clique(16)
    wl = ClosedLoopWorkload(g, num_objects=8, k=2, rounds=3, seed=0)
    return run_experiment(g, GreedyScheduler(uniform_beta=1), wl, config=SimConfig(probe=probe))


def test_counters_match_trace_ground_truth_on_clique():
    probe = CountersProbe()
    res = _clique_run(probe)
    c = probe.counters
    trace = res.trace
    assert c["generated"] == len(trace.txns)
    assert c["scheduled"] == len(trace.txns)
    assert c["commits"] == len(trace.txns)
    assert c["departures"] == len(trace.legs)
    assert c["arrivals"] == len(trace.legs)  # every leg lands
    assert c["sched.color"] == len(trace.txns)  # greedy colors each txn once
    assert probe.last_step == trace.end_time
    s = probe.summary()
    assert s["commits"] == c["commits"]
    assert s["wall_s"] > 0
    assert set(f"phase_s.{p}" for p in
               ("receive", "deliver", "generate", "schedule", "execute", "depart")
               ) <= set(s)
    # results flow through RunResult.obs as well
    assert res.obs == s


def test_counters_probe_overhead_trace_identical():
    """Counting must observe, never perturb: same trace with and without."""
    base = _clique_run(None)
    probed = _clique_run(CountersProbe())
    assert (json.dumps(trace_to_dict(base.trace), sort_keys=True)
            == json.dumps(trace_to_dict(probed.trace), sort_keys=True))


def test_jsonl_probe_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    probe = JsonlProbe(str(path), phases=True)
    res = _clique_run(probe)
    probe.close()

    events = load_events(str(path))
    assert events, "no events written"
    kinds = {e["e"] for e in events}
    assert {"step", "generate", "schedule", "commit", "depart", "end"} <= kinds
    assert "phase" in kinds  # phases=True adds phase markers
    # schema header consumed by the loader, raw first line carries it
    first = json.loads(path.read_text().splitlines()[0])
    assert first["schema"] == "repro.obs/1"
    assert first["kind"] == "header"
    assert first["graph"] == "clique(n=16)"
    commits = [e for e in events if e["e"] == "commit"]
    assert len(commits) == len(res.trace.txns)
    end = [e for e in events if e["e"] == "end"]
    assert len(end) == 1
    assert end[0]["t"] == res.trace.end_time
    assert end[0]["txns"] == len(res.trace.txns)


def test_jsonl_loader_rejects_missing_schema(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"e": "step", "t": 0}\n')
    with pytest.raises(ValueError):
        load_events(str(path))


def test_jsonl_probe_accepts_stream():
    buf = io.StringIO()
    probe = JsonlProbe(buf)
    _clique_run(probe)
    lines = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert lines[0]["kind"] == "header"
    assert lines[-1]["e"] == "end"


def test_gantt_probe_rebuilds_renderable_trace():
    probe = GanttProbe()
    res = _clique_run(probe)
    rebuilt = probe.trace
    assert rebuilt is not None
    assert len(rebuilt.txns) == len(res.trace.txns)
    assert rebuilt.end_time == res.trace.end_time
    assert len(rebuilt.legs) == len(res.trace.legs)
    art = probe.render(width=60)
    assert art.strip()


def test_multi_probe_fans_out_and_merges_summary(tmp_path):
    counters = CountersProbe()
    jsonl = JsonlProbe(str(tmp_path / "multi.jsonl"))
    multi = MultiProbe(counters, jsonl)
    assert multi.enabled
    res = _clique_run(multi)
    jsonl.close()
    assert counters.counters["commits"] == len(res.trace.txns)
    assert load_events(str(tmp_path / "multi.jsonl"))
    assert "commits" in multi.summary()


def test_multi_probe_of_disabled_probes_is_disabled():
    assert MultiProbe(NullProbe(), NullProbe()).enabled is False


def test_base_probe_is_complete_no_op():
    """Every hook on the base Probe is callable with engine-shaped args."""
    p = Probe()
    assert p.enabled
    g = topologies.clique(4)
    wl = ClosedLoopWorkload(g, num_objects=2, k=1, rounds=1, seed=0)
    res = run_experiment(g, GreedyScheduler(), wl, config=SimConfig(probe=p))  # exercises all hooks
    assert res.makespan >= 0
    assert res.obs is None  # base Probe has no summary()
