"""Unit tests for the topology constructors."""

import math

import pytest

from repro.errors import GraphError
from repro.network import topologies


class TestClique:
    def test_sizes(self):
        g = topologies.clique(7)
        assert g.num_nodes == 7
        assert g.num_edges() == 21
        assert g.diameter() == 1

    def test_weighted(self):
        g = topologies.clique(4, weight=3)
        assert g.distance(0, 3) == 3


class TestLineRing:
    def test_line(self):
        g = topologies.line(5)
        assert g.num_edges() == 4
        assert g.distance(0, 4) == 4

    def test_ring_wraps(self):
        g = topologies.ring(8)
        assert g.distance(0, 7) == 1
        assert g.distance(0, 4) == 4
        assert g.diameter() == 4

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            topologies.ring(2)


class TestGrid:
    def test_2d_grid(self):
        g = topologies.grid([3, 5])
        assert g.num_nodes == 15
        assert g.diameter() == 2 + 4

    def test_3d_grid(self):
        g = topologies.grid([2, 3, 4])
        assert g.num_nodes == 24
        assert g.diameter() == 1 + 2 + 3

    def test_logn_dim_grid_is_hypercube(self):
        g = topologies.grid([2, 2, 2])
        h = topologies.hypercube(3)
        assert g.num_nodes == h.num_nodes
        assert g.num_edges() == h.num_edges()
        assert g.diameter() == h.diameter() == 3

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            topologies.grid([])
        with pytest.raises(GraphError):
            topologies.grid([3, 0])

    def test_torus_wraps(self):
        g = topologies.torus([4, 4])
        assert g.diameter() == 4  # 2 + 2 with wraparound


class TestHypercube:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_structure(self, d):
        g = topologies.hypercube(d)
        assert g.num_nodes == 2**d
        assert g.num_edges() == d * 2 ** (d - 1)
        assert g.diameter() == d

    def test_distance_is_hamming(self):
        g = topologies.hypercube(4)
        assert g.distance(0b0000, 0b1111) == 4
        assert g.distance(0b0101, 0b0110) == 2


class TestButterfly:
    def test_sizes(self):
        g = topologies.butterfly(3)
        assert g.num_nodes == 4 * 8
        # each of dim levels contributes 2 edges per row
        assert g.num_edges() == 3 * 8 * 2

    def test_diameter_logarithmic(self):
        for d in (2, 3, 4):
            g = topologies.butterfly(d)
            assert g.diameter() <= 2 * d


class TestCluster:
    def test_layout(self):
        g = topologies.cluster_graph(3, 4, gamma=6)
        assert g.num_nodes == 12
        layout = g.layout
        assert len(layout.cliques) == 3
        assert layout.bridges == (0, 4, 8)
        assert layout.clique_of(5) == 1

    def test_distances(self):
        g = topologies.cluster_graph(2, 3, gamma=5)
        assert g.distance(1, 2) == 1  # intra-clique
        assert g.distance(0, 3) == 5  # bridge to bridge
        assert g.distance(1, 4) == 7  # 1 + gamma + 1

    def test_gamma_constraint(self):
        with pytest.raises(GraphError):
            topologies.cluster_graph(2, 4, gamma=3)


class TestStar:
    def test_layout(self):
        g = topologies.star_graph(3, 4)
        assert g.num_nodes == 13
        assert g.layout.center == 0
        assert g.layout.ray_of(0) is None
        assert g.layout.ray_of(5) == 1

    def test_distances(self):
        g = topologies.star_graph(2, 3)
        assert g.distance(0, 1) == 1
        assert g.distance(0, 3) == 3  # outer end of ray 0
        assert g.distance(3, 6) == 6  # across the center

    def test_diameter(self):
        g = topologies.star_graph(4, 5)
        assert g.diameter() == 10


class TestTree:
    def test_binary_tree_sizes(self):
        g = topologies.tree(2, 3)
        assert g.num_nodes == 15
        assert g.num_edges() == 14
        assert g.diameter() == 6

    def test_ternary_tree(self):
        g = topologies.tree(3, 2)
        assert g.num_nodes == 13
        assert g.distance(0, 12) == 2

    def test_degenerate_path(self):
        g = topologies.tree(1, 4)
        assert g.num_nodes == 5
        assert g.diameter() == 4

    def test_invalid(self):
        with pytest.raises(GraphError):
            topologies.tree(0, 3)


class TestRandomGeometric:
    def test_connected_and_deterministic(self):
        g1 = topologies.random_geometric(30, 0.3, seed=5)
        g2 = topologies.random_geometric(30, 0.3, seed=5)
        assert g1.num_nodes == 30
        assert list(g1.edges()) == list(g2.edges())
        # connectivity: any query succeeds
        assert g1.distance(0, 29) > 0

    def test_sparse_radius_still_connected(self):
        g = topologies.random_geometric(25, 0.05, seed=1)
        assert g.diameter() > 0
