"""Checkpoint/restore (``repro.durability``): crash-resumable runs.

The contract under test is byte-identity: a run killed at *any*
checkpoint and resumed must produce exactly the trace the uninterrupted
run produces — same commits, same fault records, same serialized JSON
artifact.  Comparison uses the canonical trace serialization
(:mod:`repro.sim.serialize`), the archival byte format; raw
``pickle.dumps`` of in-memory traces is deliberately *not* the
comparator (pickle memoizes shared references, so two semantically
identical traces can pickle differently after a restore).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main, make_scheduler
from repro.durability import (
    CHECKPOINT_SCHEMA,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import CheckpointError, WorkloadError
from repro.faults import FaultPlan, JoinEvent, LeaveEvent, MembershipPlan
from repro.network.topologies import grid
from repro.obs.jsonl import iter_events
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.serialize import trace_to_dict
from repro.workloads import OnlineWorkload


def _trace_bytes(trace) -> bytes:
    """Canonical archival bytes of a trace (the identity comparator)."""
    return json.dumps(trace_to_dict(trace), sort_keys=True).encode()


def _build(scheduler_name, plan, tmp_path, every=5, seed=9, horizon=25, sync=True):
    g = grid([3, 3])
    sched, speed = make_scheduler(scheduler_name, g)
    wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.4, horizon=horizon, seed=seed)
    cfg = SimConfig(
        object_speed_den=speed,
        faults=plan,
        checkpoint_every=every,
        checkpoint_path=os.path.join(str(tmp_path), "ck-{step}.bin"),
        checkpoint_sync=sync,
    )
    return Simulator(g, sched, wl, config=cfg)


CHURN = MembershipPlan(
    joins=(JoinEvent(9, 8, ((4, 1),)),),
    leaves=(LeaveEvent(1, 10, graceful=False), LeaveEvent(7, 14, graceful=True)),
)

#: fault modes the restore property is exercised under
FAULT_MODES = {
    "clean": None,
    "faults": FaultPlan(seed=5, drop_prob=0.05, delay_prob=0.1, max_delay=3),
    "partitions": FaultPlan.random(
        11,
        num_nodes=9,
        horizon=25,
        drop_prob=0.05,
        partition_count=1,
        partition_len=6,
        edges=[(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4)],
    ),
    "churn": FaultPlan(seed=5, drop_prob=0.05, membership=CHURN),
}


class TestRestoreByteIdentity:
    """Kill-at-every-k-th-step: each snapshot resumes byte-identically."""

    @pytest.mark.parametrize("scheduler", ["greedy", "bucket", "distributed"])
    @pytest.mark.parametrize("mode", sorted(FAULT_MODES))
    def test_every_checkpoint_resumes_identically(
        self, scheduler, mode, tmp_path
    ):
        sim = _build(scheduler, FAULT_MODES[mode], tmp_path)
        ref = _trace_bytes(sim.run())
        snapshots = sorted(
            f for f in os.listdir(tmp_path) if f.startswith("ck-")
        )
        assert snapshots, "run produced no checkpoints"
        for name in snapshots:
            resumed = Simulator.restore(os.path.join(str(tmp_path), name))
            assert _trace_bytes(resumed.run()) == ref, (
                f"{scheduler}/{mode}: resume from {name} diverged"
            )

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_async_checkpoints_resume_identically(self, tmp_path):
        """checkpoint_sync=False: forked writers produce the same snapshots
        (same bytes, same resumed trace) — the run just doesn't stall."""
        from repro.durability import reap_async_writers

        sim = _build("greedy", FAULT_MODES["faults"], tmp_path, sync=False)
        ref = _trace_bytes(sim.run())
        reap_async_writers(block=True)  # all snapshot files on disk
        expected = [
            os.path.join(str(tmp_path), f"ck-{s}.bin") for s in (5, 10, 15)
        ]
        for path in expected:
            assert os.path.exists(path), f"async snapshot {path} never landed"
            resumed = Simulator.restore(path)
            assert _trace_bytes(resumed.run()) == ref

    def test_restore_continues_checkpointing(self, tmp_path):
        sim = _build("greedy", None, tmp_path)
        sim.run()
        first = sorted(f for f in os.listdir(tmp_path) if f.startswith("ck-"))
        resumed = Simulator.restore(os.path.join(str(tmp_path), first[0]))
        resumed.run()
        # the resumed engine keeps writing to the same {step} template
        again = sorted(f for f in os.listdir(tmp_path) if f.startswith("ck-"))
        assert set(first) <= set(again)


class TestCheckpointFile:
    def test_header_inspectable_without_unpickling(self, tmp_path):
        sim = _build("greedy", None, tmp_path)
        path = os.path.join(str(tmp_path), "snap.bin")
        sim.run_until(10)
        resolved = save_checkpoint(sim, path)
        header = inspect_checkpoint(resolved)
        assert header["schema"] == CHECKPOINT_SCHEMA
        assert header["graph"] == "grid(3x3)"
        assert header["scheduler"] == "GreedyScheduler"
        assert header["payload_bytes"] > 0
        assert set(header["rng_cursors"]) >= {"tid", "spec-seq", "arrivals"}

    def test_corrupt_payload_rejected(self, tmp_path):
        sim = _build("greedy", None, tmp_path)
        sim.run_until(10)
        path = save_checkpoint(sim, os.path.join(str(tmp_path), "snap.bin"))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:-20])  # torn copy
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            load_checkpoint(path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "junk.bin")
        with open(path, "wb") as fh:
            fh.write(b"\x80\x04 not a header\n")
        with pytest.raises(CheckpointError, match="bad header"):
            inspect_checkpoint(path)

    def test_config_rejects_bad_checkpoint_interval(self):
        with pytest.raises(WorkloadError, match="checkpoint_every"):
            SimConfig(checkpoint_every=0, checkpoint_path="x.bin")
        with pytest.raises(WorkloadError, match="checkpoint_path"):
            SimConfig(checkpoint_every=5)


class TestInspectCli:
    def test_inspect_golden_stdout(self, tmp_path, capsys):
        """`repro checkpoint inspect` output is deterministic and complete:
        two identically-seeded runs snapshot to byte-identical stdout."""
        outputs = []
        for _ in range(2):
            sim = _build("greedy", None, tmp_path)
            sim.run_until(12)
            path = save_checkpoint(
                sim, os.path.join(str(tmp_path), "golden.bin")
            )
            assert main(["checkpoint", "inspect", path]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        for needle in (
            CHECKPOINT_SCHEMA,
            "grid(3x3)",
            "GreedyScheduler",
            "rng.tid",
            "rng.arrivals",
        ):
            assert needle in outputs[0], f"missing {needle!r} in inspect output"

    def test_inspect_json(self, tmp_path, capsys):
        sim = _build("greedy", None, tmp_path)
        sim.run_until(12)
        path = save_checkpoint(sim, os.path.join(str(tmp_path), "j.bin"))
        assert main(["checkpoint", "inspect", path, "--json"]) == 0
        header = json.loads(capsys.readouterr().out)
        assert header == inspect_checkpoint(path)


class TestJsonlDurability:
    def test_torn_final_line_tolerated(self, tmp_path):
        """A reader of a killed run's JSONL sees every complete record and
        silently drops the torn tail (satellite of the SIGTERM fsync path)."""
        path = os.path.join(str(tmp_path), "events.jsonl")
        from repro.obs.jsonl import JsonlProbe

        g = grid([3, 3])
        sched, speed = make_scheduler("greedy", g)
        wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.4, horizon=15, seed=3)
        sim = Simulator(
            g, sched, wl,
            config=SimConfig(object_speed_den=speed, probe=JsonlProbe(path)),
        )
        sim.run()
        sim.config.probe.close()
        whole = list(iter_events(path))
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) - 7])  # tear mid-final-record
        torn = list(iter_events(path))
        assert torn == whole[: len(torn)]
        assert len(whole) - len(torn) == 1


@pytest.mark.slow
class TestKillAndResumeProcess:
    """True SIGTERM kill of a CLI subprocess, then --resume: the trace
    artifact matches the uninterrupted run byte-for-byte."""

    def _env(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    def _cli(self, *extra):
        return [
            sys.executable, "-m", "repro.cli", "run",
            "--topology", "grid:4x4", "--workload", "bernoulli",
            "--objects", "8", "--k", "2", "--rate", "0.3",
            "--horizon", "50", "--seed", "7",
            "--faults", "seed=3,drop=0.05,join=1,leave=1",
            "--json", *extra,
        ]

    def test_sigterm_then_resume_byte_identical(self, tmp_path):
        env = self._env()
        ref = os.path.join(str(tmp_path), "ref.json")
        subprocess.run(
            self._cli("--trace", ref), env=env, check=True,
            capture_output=True, timeout=120,
        )
        ck = os.path.join(str(tmp_path), "ck.bin")
        got = os.path.join(str(tmp_path), "got.json")
        proc = subprocess.Popen(
            self._cli("--trace", got, "--checkpoint", ck,
                      "--checkpoint-every", "5"),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(0.6)
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=120)
        if proc.returncode == 0:
            pytest.skip("run finished before the signal landed")
        assert proc.returncode == 3, err.decode()
        assert b"--resume" in err
        assert os.path.exists(ck)
        resumed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "run",
             "--resume", ck, "--trace", got, "--json"],
            env=env, capture_output=True, timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert open(ref, "rb").read() == open(got, "rb").read()
