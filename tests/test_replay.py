"""Tests for the replay scheduler."""

import pytest

from repro.analysis import run_experiment
from repro.core import GreedyScheduler, ReplayScheduler
from repro.errors import SchedulingError
from repro.network import topologies
from repro.sim.serialize import trace_from_dict, trace_to_dict
from repro.workloads import BatchWorkload, OnlineWorkload


def record(graph, workload_factory):
    res = run_experiment(graph, GreedyScheduler(), workload_factory())
    return res.trace


class TestReplay:
    def test_replay_reproduces_schedule(self):
        g = topologies.grid([3, 3])
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=8)
        original = record(g, mk)
        replayed = run_experiment(g, ReplayScheduler(original), mk()).trace
        assert {t: r.exec_time for t, r in replayed.txns.items()} == {
            t: r.exec_time for t, r in original.txns.items()
        }
        assert replayed.legs == original.legs

    def test_replay_from_serialized(self):
        g = topologies.clique(8)
        mk = lambda: BatchWorkload.uniform(g, num_objects=4, k=2, seed=3)
        original = record(g, mk)
        revived = trace_from_dict(trace_to_dict(original))
        replayed = run_experiment(g, ReplayScheduler(revived), mk()).trace
        assert replayed.makespan() == original.makespan()

    def test_replay_with_reads(self):
        g = topologies.line(10)
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=4, k=2, rate=0.06, horizon=25, seed=9, read_fraction=0.5
        )
        original = record(g, mk)
        replayed = run_experiment(g, ReplayScheduler(original), mk()).trace
        assert len(replayed.copy_legs) == len(original.copy_legs)

    def test_mismatched_workload_rejected(self):
        g = topologies.clique(6)
        original = record(g, lambda: BatchWorkload.uniform(g, num_objects=4, k=2, seed=1))
        other = BatchWorkload.uniform(g, num_objects=4, k=2, seed=2)
        with pytest.raises(SchedulingError, match="replay"):
            run_experiment(g, ReplayScheduler(original), other)

    def test_unconsumed_counter(self):
        g = topologies.clique(6)
        original = record(g, lambda: BatchWorkload.uniform(g, num_objects=4, k=2, seed=1))
        sched = ReplayScheduler(original)
        assert sched.unconsumed == len(original.txns)
        run_experiment(g, sched, BatchWorkload.uniform(g, num_objects=4, k=2, seed=1))
        assert sched.unconsumed == 0
