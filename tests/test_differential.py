"""Differential property tests: independent engine configurations must
agree where the model says they must.

* leg-mode vs hop-mode motion: same physics, same per-transfer arrival
  times for single transfers; certified feasible in both; makespans match
  when schedulers see identical observations (batch problems, where
  nothing is in transit at scheduling time).
* strict vs non-strict engines on feasible schedules: identical traces.
* ample capacities vs no capacities: identical traces.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import BatchWorkload, ManualWorkload

SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def batch_instances(draw):
    kind = draw(st.sampled_from(["line", "grid", "clique", "star"]))
    if kind == "line":
        g = topologies.line(draw(st.integers(3, 10)))
    elif kind == "grid":
        g = topologies.grid([draw(st.integers(2, 4)), draw(st.integers(2, 4))])
    elif kind == "clique":
        g = topologies.clique(draw(st.integers(3, 8)))
    else:
        g = topologies.star_graph(draw(st.integers(2, 3)), draw(st.integers(1, 3)))
    n = g.num_nodes
    no = draw(st.integers(1, 4))
    placement = {o: draw(st.integers(0, n - 1)) for o in range(no)}
    specs = []
    for _ in range(draw(st.integers(1, 8))):
        k = draw(st.integers(1, no))
        objs = draw(st.lists(st.integers(0, no - 1), min_size=k, max_size=k, unique=True))
        specs.append(TxnSpec(0, draw(st.integers(0, n - 1)), tuple(objs)))
    return g, placement, specs


def run_engine(g, placement, specs, **kw):
    wl = ManualWorkload(placement, specs)
    return Simulator(g, GreedyScheduler(), wl, **kw).run()


class TestLegVsHop:
    @given(batch_instances())
    @SETTINGS
    def test_batch_exec_times_identical(self, inst):
        """For batch problems all scheduling happens at t=0 with every
        object at rest, so leg and hop modes observe identical state and
        must commit identical schedules."""
        g, placement, specs = inst
        leg = run_engine(g, placement, specs)
        hop = run_engine(g, placement, specs, hop_motion=True)
        assert {t: r.exec_time for t, r in leg.txns.items()} == {
            t: r.exec_time for t, r in hop.txns.items()
        }

    @given(batch_instances())
    @SETTINGS
    def test_hop_traces_certify(self, inst):
        g, placement, specs = inst
        hop = run_engine(g, placement, specs, hop_motion=True)
        assert certify_trace(g, hop) == []

    @given(batch_instances())
    @SETTINGS
    def test_hop_travel_equals_leg_travel(self, inst):
        """Total travel time is path length in both modes (hop legs just
        split the same shortest paths)."""
        g, placement, specs = inst
        leg = run_engine(g, placement, specs)
        hop = run_engine(g, placement, specs, hop_motion=True)
        assert leg.total_object_travel() == hop.total_object_travel()


class TestEngineConfigEquivalences:
    @given(batch_instances())
    @SETTINGS
    def test_nonstrict_equals_strict_on_feasible(self, inst):
        g, placement, specs = inst
        strict = run_engine(g, placement, specs, strict=True)
        loose = run_engine(g, placement, specs, strict=False)
        assert loose.violations == []
        assert strict.legs == loose.legs
        assert {t: r.exec_time for t, r in strict.txns.items()} == {
            t: r.exec_time for t, r in loose.txns.items()
        }

    @given(batch_instances())
    @SETTINGS
    def test_huge_capacities_are_noops(self, inst):
        g, placement, specs = inst
        base = run_engine(g, placement, specs)
        capped = run_engine(
            g, placement, specs,
            hop_motion=True, link_capacity=10_000,
            node_egress_capacity=10_000, strict=False,
        )
        assert capped.violations == []
        assert {t: r.exec_time for t, r in base.txns.items()} == {
            t: r.exec_time for t, r in capped.txns.items()
        }


class TestScale:
    def test_large_run_fast_and_certified(self):
        """Scale smoke: 1000+ transactions on a 128-node line completes in
        seconds and certifies (regression guard for the performance
        work in docs/performance.md)."""
        import time

        from repro.core import BucketScheduler
        from repro.offline import LineBatchScheduler
        from repro.workloads import OnlineWorkload

        g = topologies.line(128)
        wl = OnlineWorkload.bernoulli(g, num_objects=32, k=2, rate=0.02, horizon=400, seed=0)
        t0 = time.perf_counter()
        trace = Simulator(g, BucketScheduler(LineBatchScheduler()), wl).run()
        elapsed = time.perf_counter() - t0
        assert trace.num_txns == wl.num_txns
        certify_trace(g, trace)
        assert elapsed < 120, f"large run took {elapsed:.0f}s"
