"""Open-system streaming workloads, SLO analysis, and the frontier."""

import json

import pytest

from repro.analysis import (
    backlog_series,
    latency_percentiles,
    run_experiment,
    run_stream,
    slo_summary,
    stability_frontier,
    stability_verdict,
    throughput,
)
from repro import DeparturePolicy
from repro.baselines import FifoSerialScheduler
from repro.chaos.search import EpisodeSpec, make_workload, run_episode
from repro.core import GreedyScheduler
from repro.errors import ReproError, WorkloadError
from repro.faults import FaultPlan
from repro.network import topologies
from repro.obs import CountersProbe
from repro.sim import SimConfig, Simulator
from repro.workloads import (
    AdversarialOpenWorkload,
    BatchWorkload,
    DiurnalWorkload,
    OnOffBurstyWorkload,
    PoissonOpenWorkload,
    WorkloadSpec,
)


def _trace_key(trace):
    """A byte-comparable fold of everything a run committed."""
    return sorted(
        (r.tid, r.home, r.gen_time, r.schedule_time, r.exec_time, tuple(r.objects))
        for r in trace.txns.values()
    )


class TestStreamingWorkloads:
    def test_arrival_stream_restarts_from_seed(self):
        g = topologies.clique(6)
        wl = PoissonOpenWorkload(g, 0.8, seed=5)
        first = [next(wl.arrival_stream()) for _ in range(1)]
        a = [s for _, s in zip(range(50), wl.arrival_stream())]
        b = [s for _, s in zip(range(50), wl.arrival_stream())]
        assert [(s.gen_time, s.home, s.objects) for s in a] == [
            (s.gen_time, s.home, s.objects) for s in b
        ]
        assert first[0].gen_time == a[0].gen_time

    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: PoissonOpenWorkload(g, 0.6, seed=2),
            lambda g: OnOffBurstyWorkload(g, seed=2),
            lambda g: DiurnalWorkload(g, 0.6, seed=2, period=50),
            lambda g: AdversarialOpenWorkload(g, 0.6, seed=2),
        ],
        ids=["poisson", "onoff", "diurnal", "adversarial"],
    )
    def test_gen_times_nondecreasing(self, factory):
        g = topologies.clique(6)
        specs = [s for _, s in zip(range(120), factory(g).arrival_stream())]
        times = [s.gen_time for s in specs]
        assert times == sorted(times)
        assert all(s.objects for s in specs)

    def test_adversarial_bursts_conflict(self):
        g = topologies.clique(8)
        wl = AdversarialOpenWorkload(g, 0.5, burst=4, hot_objects=2, k=2, seed=0)
        specs = [s for _, s in zip(range(40), wl.arrival_stream())]
        hot = set(range(max(wl.k, wl.hot_objects)))
        assert all(set(s.objects) <= hot for s in specs)

    def test_diurnal_rate_oscillates(self):
        g = topologies.clique(4)
        wl = DiurnalWorkload(g, 1.0, amplitude=0.5, period=100, seed=0)
        assert wl.rate_at(25) == pytest.approx(1.5)
        assert wl.rate_at(75) == pytest.approx(0.5)
        assert wl.mean_rate == pytest.approx(1.0)

    def test_zero_rate_rejected(self):
        g = topologies.clique(4)
        with pytest.raises(WorkloadError):
            PoissonOpenWorkload(g, 0.0)
        with pytest.raises(WorkloadError):
            OnOffBurstyWorkload(g, lam_on=0.0, lam_off=0.0)


class TestWorkloadSpec:
    def test_round_trip(self):
        spec = WorkloadSpec.make("poisson-open", seed=4, lam=0.7, objects=10)
        clone = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.open_system
        assert clone.knob("lam") == 0.7

    def test_unknown_kind_and_knob_fail_loudly(self):
        with pytest.raises(WorkloadError, match="unknown workload kind"):
            WorkloadSpec.make("no-such-kind")
        with pytest.raises(WorkloadError, match="does not accept knobs"):
            WorkloadSpec.make("poisson-open", lamda=0.5)

    def test_with_seed_and_with_knobs(self):
        spec = WorkloadSpec.make("poisson-open", seed=1, lam=0.5)
        assert spec.with_seed(9).seed == 9
        assert spec.with_knobs(lam=1.5).knob("lam") == 1.5
        assert spec.knob("lam") == 0.5  # original untouched

    def test_build_closed_and_open(self):
        g = topologies.clique(6)
        closed = WorkloadSpec.make("batch", seed=3, objects=5, k=2).build(g)
        assert isinstance(closed, BatchWorkload)
        opened = WorkloadSpec.make("poisson-open", seed=3, lam=0.4).build(g)
        assert isinstance(opened, PoissonOpenWorkload)

    def test_spec_built_run_matches_instance_run(self):
        g = topologies.clique(6)
        spec = WorkloadSpec.make("poisson-open", seed=6, lam=0.5)
        a = run_stream(g, GreedyScheduler(), spec, until=150)
        b = run_stream(
            g, GreedyScheduler(), PoissonOpenWorkload(g, 0.5, seed=6), until=150
        )
        assert _trace_key(a.trace) == _trace_key(b.trace)
        assert a.slo == b.slo


class TestEngineOpenMode:
    def test_open_run_requires_horizon(self):
        g = topologies.clique(6)
        sim = Simulator(g, GreedyScheduler(), PoissonOpenWorkload(g, 0.5, seed=0))
        with pytest.raises(WorkloadError, match="until"):
            sim.run()

    def test_unstable_run_terminates_at_horizon(self):
        g = topologies.clique(6)
        wl = PoissonOpenWorkload(g, 3.0, seed=1)
        trace = Simulator(g, FifoSerialScheduler(), wl, config=SimConfig()).run(
            until=200, warmup=50
        )
        assert trace.end_time == 200
        meta = trace.meta["open"]
        assert meta["generated"] > meta["committed"]
        assert meta["backlog"] == meta["generated"] - meta["committed"]
        assert not stability_verdict(trace).stable

    def test_stable_run_drains_backlog(self):
        g = topologies.clique(8)
        wl = PoissonOpenWorkload(g, 0.3, seed=2)
        trace = Simulator(g, GreedyScheduler(), wl).run(until=300, warmup=75)
        assert stability_verdict(trace).stable
        series = backlog_series(trace)
        assert series[0][0] == 0 and series[-1][0] == 300
        assert series[-1][1] == trace.meta["open"]["backlog"]

    def test_warmup_validation(self):
        g = topologies.clique(4)
        sim = Simulator(g, GreedyScheduler(), PoissonOpenWorkload(g, 0.5, seed=0))
        with pytest.raises(WorkloadError, match="warmup"):
            sim.run(until=100, warmup=100)

    def test_closed_workloads_unaffected(self):
        g = topologies.clique(6)
        wl = BatchWorkload.uniform(g, 5, 2, seed=3)
        trace = Simulator(g, GreedyScheduler(), wl).run()
        assert "open" not in trace.meta
        assert trace.num_txns == g.num_nodes


class TestSloAnalysis:
    def _trace(self, lam=0.5, seed=3, until=300, warmup=75):
        g = topologies.clique(8)
        return Simulator(
            g, GreedyScheduler(), PoissonOpenWorkload(g, lam, seed=seed)
        ).run(until=until, warmup=warmup)

    def test_percentiles_ordered(self):
        pcts = latency_percentiles(self._trace(), warmup=75)
        assert pcts["p50"] <= pcts["p99"] <= pcts["p999"]

    def test_summary_consistent_with_meta(self):
        trace = self._trace()
        slo = slo_summary(trace)
        meta = trace.meta["open"]
        assert slo.generated == meta["generated"]
        assert slo.committed == meta["committed"]
        assert slo.backlog == meta["backlog"]
        assert slo.horizon == 300 and slo.warmup == 75
        assert slo.stable

    def test_requires_open_trace(self):
        g = topologies.clique(5)
        trace = Simulator(
            g, GreedyScheduler(), BatchWorkload.uniform(g, 4, 2, seed=0)
        ).run()
        with pytest.raises(ReproError, match="open"):
            slo_summary(trace)

    def test_throughput_absolute_warmup(self):
        trace = self._trace()
        tp = throughput(trace, warmup=75, horizon=300)
        committed_post = sum(1 for r in trace.txns.values() if r.exec_time > 75)
        assert tp == pytest.approx(committed_post / 225)
        with pytest.raises(ValueError, match="warmup"):
            throughput(trace, warmup=300, horizon=300)

    def test_stream_counters(self):
        g = topologies.clique(6)
        probe = CountersProbe()
        Simulator(
            g,
            GreedyScheduler(),
            PoissonOpenWorkload(g, 0.5, seed=1),
            config=SimConfig(probe=probe),
        ).run(until=100, warmup=25)
        out = probe.summary()
        assert out["stream.generated"] == out["stream.committed"] + out["stream.backlog"]
        assert out["stream.horizon"] == 100 and out["stream.warmup"] == 25


class TestDeterminismAcrossJobs:
    def test_stream_byte_identical_jobs_1_vs_4(self):
        """The tentpole determinism claim: traces and percentiles from a
        parallel fan-out are byte-identical to the serial run."""
        from repro.analysis import run_grid

        cases = [
            WorkloadSpec.make("poisson-open", seed=s, lam=0.6) for s in range(4)
        ]
        serial = run_grid(_stream_case, cases, jobs=1)
        parallel = run_grid(_stream_case, cases, jobs=4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_frontier_byte_identical_jobs_1_vs_4(self):
        wl = WorkloadSpec.make("poisson-open", seed=11)
        kwargs = dict(lam_min=0.1, lam_max=2.0, rounds=3, until=150, warmup=40)
        a = stability_frontier("clique:6", ["fifo", "greedy"], wl, jobs=1, **kwargs)
        b = stability_frontier("clique:6", ["fifo", "greedy"], wl, jobs=4, **kwargs)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_frontier_reproducible_from_seed(self):
        wl = WorkloadSpec.make("poisson-open", seed=11)
        kwargs = dict(lam_min=0.1, lam_max=2.0, rounds=3, until=150, warmup=40)
        a = stability_frontier("clique:6", ["fifo"], wl, **kwargs)
        b = stability_frontier("clique:6", ["fifo"], wl, **kwargs)
        c = stability_frontier("clique:6", ["fifo"], wl.with_seed(12), **kwargs)
        assert a.to_dict() == b.to_dict()
        assert a.schedulers[0].probes != c.schedulers[0].probes

    def test_frontier_finds_fifo_below_greedy(self):
        wl = WorkloadSpec.make("poisson-open", seed=7)
        res = stability_frontier(
            "clique:8",
            ["fifo", "greedy"],
            wl,
            lam_min=0.1,
            lam_max=3.0,
            rounds=4,
            until=200,
            warmup=50,
        )
        by_name = {s.scheduler: s for s in res.schedulers}
        assert by_name["fifo"].lambda_star < by_name["greedy"].lambda_star
        slo = by_name["fifo"].stable_slo
        assert slo is not None and slo["p50"] <= slo["p99"] <= slo["p999"]


def _stream_case(spec):
    g = topologies.clique(6)
    res = run_stream(g, GreedyScheduler(), spec, until=150, warmup=40)
    out = res.slo.to_dict()
    out["trace"] = _trace_key(res.trace)
    return out


class TestApiRedesign:
    def test_run_experiment_rejects_open_workload(self):
        g = topologies.clique(6)
        with pytest.raises(WorkloadError, match="run_stream"):
            run_experiment(
                g, GreedyScheduler(), WorkloadSpec.make("poisson-open", lam=0.5)
            )

    def test_run_stream_rejects_closed_workload(self):
        g = topologies.clique(6)
        with pytest.raises(WorkloadError, match="run_experiment"):
            run_stream(
                g, GreedyScheduler(), WorkloadSpec.make("batch"), until=100
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"object_speed_den": 2},
            {"departure_policy": DeparturePolicy.LAZY},
            {"probe": CountersProbe()},
        ],
        ids=["object_speed_den", "departure_policy", "probe"],
    )
    def test_shorthand_kwargs_warn(self, kwargs):
        g = topologies.clique(6)
        wl = BatchWorkload.uniform(g, 5, 2, seed=0)
        name = next(iter(kwargs))
        with pytest.warns(DeprecationWarning, match=name):
            run_experiment(g, GreedyScheduler(), wl, **kwargs)

    def test_replicate_reseeds_workload_spec(self):
        from repro.analysis import replicate

        spec = WorkloadSpec.make("batch", objects=5, k=2)
        seen = []

        def experiment(seed, config, workload):
            seen.append((seed, workload.seed))
            g = topologies.clique(6)
            res = run_experiment(g, GreedyScheduler(), workload, config=config)
            return {"makespan": res.makespan}

        aggs = replicate(experiment, [0, 1, 2], workload=spec)
        assert aggs["makespan"].n == 3
        assert seen == [(0, 0), (1, 1), (2, 2)]

    def test_episode_spec_accepts_workload_spec(self):
        spec = EpisodeSpec(
            topology="ring:8",
            scheduler="greedy",
            workload=WorkloadSpec.make("batch", seed=2, objects=5, k=2),
            plan=FaultPlan(seed=1),
        )
        clone = EpisodeSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.workload == spec.workload
        result = run_episode(clone)
        assert result.ok
        assert result.committed > 0

    def test_make_workload_dispatches_on_spec(self):
        g = topologies.clique(6)
        wl = make_workload(g, WorkloadSpec.make("batch", seed=1, objects=4, k=2))
        assert isinstance(wl, BatchWorkload)
