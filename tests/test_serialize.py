"""Tests for trace serialization."""

import json

from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.serialize import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.sim.validate import certify_trace
from repro.workloads import OnlineWorkload


def make_trace(read_fraction=0.0, seed=3):
    g = topologies.grid([3, 3])
    wl = OnlineWorkload.bernoulli(
        g, num_objects=4, k=2, rate=0.08, horizon=25, seed=seed, read_fraction=read_fraction
    )
    return g, run_experiment(g, GreedyScheduler(), wl).trace


class TestRoundTrip:
    def test_dict_round_trip_equal(self):
        g, trace = make_trace()
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.txns == trace.txns
        assert clone.legs == trace.legs
        assert clone.initial_placement == trace.initial_placement
        assert clone.object_speed_den == trace.object_speed_den

    def test_round_trip_with_reads(self):
        g, trace = make_trace(read_fraction=0.6)
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.copy_legs == trace.copy_legs
        assert all(clone.txns[t].reads == trace.txns[t].reads for t in trace.txns)

    def test_file_round_trip_and_recertify(self, tmp_path):
        g, trace = make_trace(read_fraction=0.4)
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        # an archived trace can be independently re-certified
        assert certify_trace(g, loaded) == []

    def test_json_is_plain(self):
        g, trace = make_trace()
        text = json.dumps(trace_to_dict(trace))
        assert isinstance(json.loads(text), dict)

    def test_tampered_trace_fails_certification(self, tmp_path):
        g, trace = make_trace()
        data = trace_to_dict(trace)
        # move one execution earlier than its object allows
        busiest = max(data["txns"], key=lambda r: r["exec_time"])
        busiest["exec_time"] = 0
        doctored = trace_from_dict(data)
        issues = certify_trace(g, doctored, raise_on_failure=False)
        assert issues
