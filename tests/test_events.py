"""Unit tests for the event spine (``repro.sim.events``)."""

from repro.sim.events import EventKind, EventQueue


class TestOrdering:
    def test_peek_is_earliest_across_kinds(self):
        q = EventQueue()
        q.push_exec(9, 1)
        q.push_arrival(4, 7)
        q.push_alarm(6)
        assert q.peek_time() == 4

    def test_same_time_kinds_pop_independently(self):
        # All kinds due at t=5; each pop_kind returns only its own.
        q = EventQueue()
        q.push_depart(5, 3)
        q.push_exec(5, 2)
        q.push_arrival(5, 1)
        q.push_spec(5, "spec")
        assert [e[2] for e in q.pop_kind(EventKind.ARRIVAL, 5)] == [1]
        assert [e[2] for e in q.pop_kind(EventKind.EXEC, 5)] == [2]
        assert [e[2] for e in q.pop_kind(EventKind.DEPART, 5)] == [3]
        assert [e[3] for e in q.pop_kind(EventKind.SPEC, 5)] == ["spec"]
        assert not q

    def test_per_kind_tiebreak_by_key(self):
        # Same-time arrivals come out in object-id order (the legacy
        # per-heap (time, oid) order).
        q = EventQueue()
        for oid in (5, 1, 3):
            q.push_arrival(2, oid)
        assert [e[2] for e in q.pop_kind(EventKind.ARRIVAL, 2)] == [1, 3, 5]

    def test_specs_keep_submission_order_at_same_time(self):
        q = EventQueue()
        q.push_spec(1, "first")
        q.push_spec(1, "second")
        q.push_spec(0, "earlier")
        assert [e[3] for e in q.pop_kind(EventKind.SPEC, 1)] == [
            "earlier",
            "first",
            "second",
        ]

    def test_times_interleave_within_kind(self):
        q = EventQueue()
        q.push_exec(3, 30)
        q.push_exec(1, 10)
        q.push_exec(2, 20)
        got = q.pop_kind(EventKind.EXEC, 3)
        assert [(e[0], e[2]) for e in got] == [(1, 10), (2, 20), (3, 30)]


class TestScoopSemantics:
    def test_future_events_stay_queued(self):
        q = EventQueue()
        q.push_exec(5, 1)
        q.push_exec(9, 2)
        assert [e[2] for e in q.pop_kind(EventKind.EXEC, 5)] == [1]
        assert q.peek_time() == 9

    def test_other_kinds_parked_not_lost(self):
        # Popping one kind scoops due entries of other kinds into their
        # bucket; they come out at their own phase, and peek still sees
        # them.
        q = EventQueue()
        q.push_depart(3, 8)
        q.push_arrival(3, 4)
        assert [e[2] for e in q.pop_kind(EventKind.ARRIVAL, 3)] == [4]
        assert len(q) == 1 and q.peek_time() == 3
        assert [e[2] for e in q.pop_kind(EventKind.DEPART, 3)] == [8]
        assert q.peek_time() is None

    def test_push_after_pop_waits_for_next_pop(self):
        # An event pushed for the current time after its kind was already
        # drained stays queued (the engine delivers it next step).
        q = EventQueue()
        q.push_exec(4, 1)
        q.pop_kind(EventKind.EXEC, 4)
        q.push_exec(4, 2)
        assert q.peek_time() == 4
        assert [e[2] for e in q.pop_kind(EventKind.EXEC, 4)] == [2]

    def test_len_and_bool_count_parked_entries(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push_arrival(1, 0)
        q.push_depart(1, 0)
        q.pop_kind(EventKind.ARRIVAL, 1)  # parks the depart entry
        assert q and len(q) == 1


class TestAlarmDedup:
    def test_duplicate_times_dropped(self):
        q = EventQueue()
        assert q.push_alarm(7) is True
        assert q.push_alarm(7) is False
        assert q.push_alarm(8) is True
        assert q.pending_alarms() == [7, 8]
        assert len(q.pop_kind(EventKind.ALARM, 7)) == 1

    def test_time_reusable_after_pop(self):
        q = EventQueue()
        q.push_alarm(3)
        q.pop_kind(EventKind.ALARM, 3)
        assert q.pending_alarms() == []
        assert q.push_alarm(3) is True
