"""Tests for the bounded egress-capacity extension (Section VI question)."""

import pytest

from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload, OnlineWorkload, hotspot_workload


def fan_out_instance(n=6):
    """Many objects co-located at node 0, each wanted elsewhere at once:
    classic egress burst."""
    g = topologies.clique(n)
    placement = {o: 0 for o in range(n - 1)}
    specs = [TxnSpec(0, i + 1, (i,)) for i in range(n - 1)]
    return g, ManualWorkload(placement, specs)


class TestCapacity:
    def test_unlimited_fan_out_parallel(self):
        g, wl = fan_out_instance()
        sim = Simulator(g, GreedyScheduler(), wl)
        trace = sim.run()
        departs = [l.depart_time for l in trace.legs]
        assert departs.count(0) == len(departs)  # all leave at t=0

    def test_capacity_staggers_departures(self):
        g, wl = fan_out_instance()
        sim = Simulator(
            g, GreedyScheduler(), wl, node_egress_capacity=1, strict=False
        )
        trace = sim.run()
        departs = sorted(l.depart_time for l in trace.legs)
        assert departs == list(range(len(departs)))  # one per step

    def test_congestion_delays_execution_not_correctness(self):
        g, wl = fan_out_instance()
        sim = Simulator(g, GreedyScheduler(), wl, node_egress_capacity=1, strict=False)
        trace = sim.run()
        # every txn still commits, later than planned, with violations logged
        assert len(trace.txns) == 5
        assert trace.violations
        assert trace.makespan() >= 5

    def test_strict_mode_raises_under_congestion(self):
        from repro.errors import InfeasibleScheduleError

        g, wl = fan_out_instance()
        sim = Simulator(g, GreedyScheduler(), wl, node_egress_capacity=1, strict=True)
        with pytest.raises(InfeasibleScheduleError):
            sim.run()

    def test_weight_slack_absorbs_capacity(self):
        """With enough scheduling slack the congested run has no
        violations: the scheduler's pessimism pays for serialization."""
        g = topologies.line(12)
        wl = hotspot_workload(g, seed=0)
        sim = Simulator(
            g, GreedyScheduler(weight_slack=2), wl, node_egress_capacity=1, strict=False
        )
        trace = sim.run()
        assert trace.violations == []

    def test_ample_capacity_equals_base_model(self):
        g = topologies.grid([3, 3])
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=20, seed=4)
        base = Simulator(g, GreedyScheduler(), mk()).run()
        roomy = Simulator(
            g, GreedyScheduler(), mk(), node_egress_capacity=100, strict=False
        ).run()
        assert {t: r.exec_time for t, r in base.txns.items()} == {
            t: r.exec_time for t, r in roomy.txns.items()
        }

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError):
            GreedyScheduler(weight_slack=-1)
