"""Tests for lower bounds, ratio estimation, metrics, and tables."""

import pytest

from repro.analysis import (
    batch_lower_bound,
    competitive_ratio,
    makespan_ratio,
    object_load_bound,
    object_mst_bound,
    render_table,
    run_experiment,
    summarize,
)
from repro.analysis.lower_bounds import live_set_lower_bound
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload, hotspot_workload


class TestLowerBounds:
    def test_object_mst_on_line(self):
        g = topologies.line(10)
        assert object_mst_bound(g, 0, [9]) == 9
        assert object_mst_bound(g, 5, [0, 9]) == 9
        assert object_mst_bound(g, 0, [], speed=3) == 0

    def test_speed_scaling(self):
        g = topologies.line(10)
        assert object_mst_bound(g, 0, [4], speed=2) == 8

    def test_object_load_bound(self):
        g = topologies.clique(8)
        assert object_load_bound(g, [0, 1, 2, 3]) == 3
        assert object_load_bound(g, [5]) == 0
        assert object_load_bound(g, [5, 5, 5]) == 0  # same node collapses

    def test_mst_dominates_load_on_clique(self):
        g = topologies.clique(8)
        homes = [0, 1, 2, 3]
        assert object_mst_bound(g, 7, homes) >= object_load_bound(g, homes)

    def test_batch_bound_hotspot(self):
        g = topologies.line(8)
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(8)]
        assert batch_lower_bound(g, {0: 0}, txns) == 7  # sweep the line

    def test_batch_bound_clamped_to_one(self):
        g = topologies.line(4)
        txns = [Transaction(0, 2, frozenset({0}), 0)]
        assert batch_lower_bound(g, {0: 2}, txns) == 1

    def test_live_set_bound_missing_positions_skipped(self):
        g = topologies.line(4)
        txns = [Transaction(0, 2, frozenset({9}), 0)]
        assert live_set_lower_bound(g, {}, txns) == 1


class TestRatios:
    def test_makespan_ratio_at_least_one_on_tight_instance(self):
        g = topologies.line(12)
        res = run_experiment(g, GreedyScheduler(), hotspot_workload(g, seed=0))
        assert res.makespan_ratio is not None
        assert res.makespan_ratio >= 1.0

    def test_makespan_ratio_rejects_online(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 1, (0,)), TxnSpec(3, 2, (0,))])
        res = run_experiment(g, GreedyScheduler(), wl, compute_ratios=False)
        with pytest.raises(ValueError):
            makespan_ratio(g, res.trace)

    def test_competitive_ratio_points(self):
        g = topologies.line(12)
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=20, seed=0)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.competitive_ratio > 0
        for p in res.ratio_points:
            assert p.lower_bound >= 1
            assert p.worst_duration >= 1
            assert p.ratio <= res.competitive_ratio + 1e-9

    def test_empty_trace_ratio(self):
        g = topologies.line(4)
        from repro.sim.trace import ExecutionTrace

        assert competitive_ratio(g, ExecutionTrace("t", {}))[0] == 0.0


class TestMetricsAndTables:
    def test_summarize(self):
        g = topologies.clique(8)
        res = run_experiment(g, GreedyScheduler(), BatchWorkload.uniform(g, 4, 2, seed=0))
        m = summarize(res.trace)
        assert m.num_txns == 8
        assert m.makespan == res.makespan
        assert m.max_latency >= m.mean_latency >= 1
        assert m.p99_latency <= m.max_latency
        assert len(m.row()) == 7

    def test_summarize_empty(self):
        from repro.sim.trace import ExecutionTrace

        m = summarize(ExecutionTrace("t", {}))
        assert m.num_txns == 0
        assert m.makespan == 0

    def test_render_table_alignment(self):
        out = render_table(["a", "long-header"], [[1, 2.5], [33, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[1]
        assert len({len(l) for l in lines[1:]}) == 1  # all rows equal width

    def test_render_table_float_format(self):
        out = render_table(["x"], [[1.23456]])
        assert "1.23" in out


class TestTraceHelpers:
    def test_trace_statistics(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 4, (0,))])
        res = run_experiment(g, GreedyScheduler(), wl)
        tr = res.trace
        assert tr.makespan() == tr.txns[0].exec_time
        assert tr.total_object_travel() == 4
        assert len(tr.legs_of(0)) == 1
        assert tr.executions_in_order()[0].tid == 0
