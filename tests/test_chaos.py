"""Chaos-search harness tests (repro.chaos).

1. **Monitors** — the :class:`InvariantMonitor` probe runs its checks on
   healthy and faulted runs without firing, costs nothing when absent
   (byte-identical golden traces), and raises a structured
   :class:`InvariantViolation` when the planted test hook trips.
2. **Sweeps** — a seeded sweep is deterministic, rotates schedulers, and
   reports zero violations on the bundled engine.
3. **Shrinking** — a deliberately planted violation minimizes to a
   <= 2-window plan, deterministically (same episode, same reproducer).
4. **Artifacts** — a shrunk failure round-trips through its JSON
   artifact and replays byte-identically (same invariant, message, and
   step).
"""

import json
from dataclasses import replace

import pytest

from repro.chaos import (
    DEFAULT_SCHEDULERS,
    InvariantMonitor,
    InvariantViolation,
    episode_spec,
    load_artifact,
    plan_size,
    replay_artifact,
    run_episode,
    run_sweep,
    save_artifact,
    shrink_spec,
)
from repro.chaos.artifact import artifact_dict
from repro.core import GreedyScheduler
from repro.errors import ReproError
from repro.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.network import topologies
from repro.sim import SimConfig, Simulator
from repro.sim.serialize import trace_to_dict
from repro.workloads import OnlineWorkload


def canonical(trace) -> str:
    return json.dumps(trace_to_dict(trace), sort_keys=True, indent=0)


def planted_spec():
    """An episode that provokes the test-only planted invariant: node 2
    crashes while edge (2, 3) is cut, amid decoy windows and noise."""
    spec = episode_spec(0, seed=3, topology="ring:10", horizon=30)
    plan = FaultPlan(
        seed=3,
        drop_prob=0.1,
        delay_prob=0.1,
        max_delay=3,
        crashes=(CrashWindow(2, 5, 15), CrashWindow(4, 6, 12)),
        partitions=(
            PartitionWindow(((2, 3),), 8, 18),
            PartitionWindow(((5, 6),), 4, 10),
        ),
    )
    return replace(spec, plan=plan, planted={"node": 2, "edge": (2, 3)})


# ----------------------------------------------------------------------
# invariant monitor
# ----------------------------------------------------------------------

class TestInvariantMonitor:
    def run_monitored(self, plan, monitor):
        g = topologies.ring(8)
        wl = OnlineWorkload.bernoulli(g, 5, 2, rate=0.15, horizon=25, seed=4)
        cfg = SimConfig(faults=plan, probe=monitor)
        return Simulator(g, GreedyScheduler(), wl, config=cfg).run()

    def test_clean_run_passes_and_counts_checks(self):
        mon = InvariantMonitor()
        self.run_monitored(None, mon)
        assert mon.checks_run > 0

    def test_faulted_run_passes(self):
        plan = FaultPlan(
            seed=2,
            drop_prob=0.1,
            delay_prob=0.1,
            max_delay=2,
            crashes=(CrashWindow(3, 4, 9),),
            partitions=(PartitionWindow(((0, 1),), 3, 11),),
        )
        mon = InvariantMonitor()
        trace = self.run_monitored(plan, mon)
        assert mon.checks_run > 0
        assert trace.num_txns > 0

    def test_monitor_leaves_trace_byte_identical(self):
        # Acceptance: monitors are observers only — enabling them must
        # not change the golden trace by a single byte.
        plan = FaultPlan(seed=2, drop_prob=0.1, crashes=(CrashWindow(3, 4, 9),))
        bare = self.run_monitored(plan, None)
        monitored = self.run_monitored(plan, InvariantMonitor())
        assert canonical(bare) == canonical(monitored)

    def test_planted_hook_fires_with_context(self):
        spec = planted_spec()
        result = run_episode(spec)
        assert result.violation is not None
        v = result.violation
        assert v["invariant"] == "planted"
        assert v["step"] == 8  # the cut starts at 8, inside the crash
        assert v["node"] == 2
        assert "node 2 crashed while edge (2, 3) cut" in v["message"]

    def test_violation_is_structured(self):
        exc = InvariantViolation(
            "single-holder", "two holders", step=7, tid=1, oid=2, node=3
        )
        assert exc.invariant == "single-holder"
        assert exc.step == 7 and exc.tid == 1 and exc.oid == 2 and exc.node == 3
        assert "invariant 'single-holder' violated" in str(exc)


# ----------------------------------------------------------------------
# episodes and sweeps
# ----------------------------------------------------------------------

class TestSweep:
    def test_episode_is_deterministic(self):
        spec = episode_spec(2, seed=11, topology="ring:10", horizon=25)
        a, b = run_episode(spec), run_episode(spec)
        assert a.to_dict() == b.to_dict()

    def test_sweep_rotates_schedulers_and_stays_clean(self):
        res = run_sweep(10, seed=6, topology="ring:10", horizon=25)
        assert res.ok and res.violations == []
        used = {e.spec.scheduler for e in res.episodes}
        assert len(used) >= 6
        assert used <= set(DEFAULT_SCHEDULERS)
        summary = res.summary()
        assert summary["episodes"] == 10 and summary["violations"] == 0

    def test_sweep_commits_everything(self):
        res = run_sweep(6, seed=1, topology="ring:10", horizon=25)
        for e in res.episodes:
            assert e.committed == e.generated

    def test_sweep_with_shrink_archives_minimized_artifact(self, tmp_path):
        # Force a failing sweep by planting the hook into episode 0.
        spec = planted_spec()
        result = run_episode(spec)
        small = shrink_spec(spec, result.violation["invariant"])
        shrunk = run_episode(small)
        path = save_artifact(shrunk, str(tmp_path))
        loaded_spec, recorded = load_artifact(path)
        assert loaded_spec == small
        assert recorded["invariant"] == "planted"


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

class TestShrinker:
    def test_minimizes_to_two_windows(self):
        spec = planted_spec()
        assert plan_size(spec.plan) == 6  # 2 crashes + 2 cuts + 2 knobs
        result = run_episode(spec)
        small = shrink_spec(spec, result.violation["invariant"]).plan
        # The planted hook needs exactly one crash and one partition.
        assert len(small.crashes) == 1 and len(small.partitions) == 1
        assert small.drop_prob == 0.0 and small.delay_prob == 0.0
        assert plan_size(small) == 2
        assert small.crashes[0].node == 2
        assert small.partitions[0].cut == ((2, 3),)

    def test_shrinking_is_deterministic(self):
        spec = planted_spec()
        inv = run_episode(spec).violation["invariant"]
        a = shrink_spec(spec, inv)
        b = shrink_spec(spec, inv)
        assert a == b

    def test_shrunk_plan_still_fails_identically(self):
        spec = planted_spec()
        v0 = run_episode(spec).violation
        small = shrink_spec(spec, v0["invariant"])
        v1 = run_episode(small).violation
        assert v1 is not None and v1["invariant"] == v0["invariant"]


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------

class TestArtifacts:
    def test_clean_episode_cannot_be_archived(self):
        spec = episode_spec(0, seed=1, topology="ring:10", horizon=25)
        result = run_episode(spec)
        assert result.ok
        with pytest.raises(ReproError, match="clean episode"):
            artifact_dict(result)

    def test_replay_reproduces_byte_identically(self, tmp_path):
        spec = planted_spec()
        result = run_episode(spec)
        small = shrink_spec(spec, result.violation["invariant"])
        shrunk = run_episode(small)
        path = save_artifact(shrunk, str(tmp_path), name="planted.json")
        replayed, reproduced = replay_artifact(path)
        assert reproduced
        assert replayed.violation == shrunk.violation

    def test_schema_checked(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ReproError, match="schema"):
            load_artifact(str(bad))

    def test_artifact_file_is_stable_json(self, tmp_path):
        spec = planted_spec()
        result = run_episode(spec)
        p1 = save_artifact(result, str(tmp_path), name="a.json")
        p2 = save_artifact(result, str(tmp_path), name="b.json")
        with open(p1) as f1, open(p2) as f2:
            assert f1.read() == f2.read()
