"""Additional end-to-end property tests across newer subsystems."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import run_experiment
from repro.baselines import OptimisticDTMSimulator
from repro.core import GreedyScheduler, WindowedBatchScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import ManualWorkload

SETTINGS = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def write_instances(draw):
    kind = draw(st.sampled_from(["line", "clique", "grid"]))
    if kind == "line":
        g = topologies.line(draw(st.integers(3, 10)))
    elif kind == "clique":
        g = topologies.clique(draw(st.integers(3, 8)))
    else:
        g = topologies.grid([draw(st.integers(2, 3)), draw(st.integers(2, 4))])
    n = g.num_nodes
    no = draw(st.integers(1, 4))
    placement = {o: draw(st.integers(0, n - 1)) for o in range(no)}
    specs = []
    t = 0
    for _ in range(draw(st.integers(1, 10))):
        t += draw(st.integers(0, 4))
        k = draw(st.integers(1, no))
        objs = draw(st.lists(st.integers(0, no - 1), min_size=k, max_size=k, unique=True))
        specs.append(TxnSpec(t, draw(st.integers(0, n - 1)), tuple(objs)))
    return g, placement, specs


class TestOptimisticProperties:
    @given(write_instances())
    @SETTINGS
    def test_all_commit_and_certify(self, inst):
        g, placement, specs = inst
        wl = ManualWorkload(placement, specs)
        trace = OptimisticDTMSimulator(g, wl, seed=2).run()
        assert len(trace.txns) == len(specs)
        assert certify_trace(g, trace) == []

    @given(write_instances())
    @SETTINGS
    def test_never_beats_exact_optimum_on_batches(self, inst):
        from repro.analysis import exact_optimal_makespan
        from repro.sim.transactions import Transaction

        g, placement, specs = inst
        batch = [TxnSpec(0, s.home, s.objects) for s in specs[:7]]
        wl = ManualWorkload(placement, batch)
        trace = OptimisticDTMSimulator(g, wl, seed=3).run()
        txns = [Transaction(i, s.home, frozenset(s.objects), 0) for i, s in enumerate(batch)]
        opt = exact_optimal_makespan(g, placement, txns)
        assert trace.makespan() >= opt


class TestWindowedProperties:
    @given(write_instances(), st.integers(1, 20))
    @SETTINGS
    def test_windowed_always_feasible(self, inst, window):
        g, placement, specs = inst
        wl = ManualWorkload(placement, specs)
        res = run_experiment(
            g, WindowedBatchScheduler(ColoringBatchScheduler(), window=window), wl
        )
        assert res.trace.num_txns == len(specs)

    @given(write_instances(), st.integers(2, 20))
    @SETTINGS
    def test_schedule_delay_bounded_by_window(self, inst, window):
        g, placement, specs = inst
        wl = ManualWorkload(placement, specs)
        res = run_experiment(
            g, WindowedBatchScheduler(ColoringBatchScheduler(), window=window), wl
        )
        for rec in res.trace.txns.values():
            assert rec.schedule_time - rec.gen_time <= window


class TestUniformBetaOnline:
    @given(write_instances())
    @SETTINGS
    def test_absolute_multiples_online(self, inst):
        """Lemma 2 online mode: execution times sit on absolute multiples
        of beta even for arrivals at arbitrary times."""
        g, placement, specs = inst
        beta = max(1, int(g.diameter()))
        wl = ManualWorkload(placement, specs)
        res = run_experiment(g, GreedyScheduler(uniform_beta=beta), wl)
        for rec in res.trace.txns.values():
            assert rec.exec_time % beta == 0
