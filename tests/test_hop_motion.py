"""Tests for hop-level object motion and per-link capacity."""

import pytest

from repro.core import GreedyScheduler
from repro.errors import WorkloadError
from repro.network import Graph, topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import ManualWorkload, OnlineWorkload, hotspot_workload


class TestHopMotion:
    def test_single_transfer_same_arrival(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        leg = Simulator(g, GreedyScheduler(), wl).run()
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        hop = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        assert leg.txns[0].exec_time == hop.txns[0].exec_time
        assert len(hop.legs) == 5  # five unit hops
        assert len(leg.legs) == 1
        assert hop.legs[-1].arrive_time == leg.legs[-1].arrive_time

    def test_hop_legs_are_tree_edges(self):
        g = topologies.grid([4, 4])
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 15, (0,))])
        hop = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        for leg in hop.legs:
            assert leg.dst in g.neighbors(leg.src)
            assert leg.arrive_time - leg.depart_time == g.neighbors(leg.src)[leg.dst]

    def test_hop_traces_certify(self):
        g = topologies.grid([4, 4])
        wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.06, horizon=30, seed=5)
        trace = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        assert certify_trace(g, trace) == []

    def test_hop_with_reads_certifies(self):
        g = topologies.line(12)
        wl = OnlineWorkload.bernoulli(
            g, num_objects=4, k=2, rate=0.06, horizon=30, seed=6, read_fraction=0.5
        )
        trace = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        assert certify_trace(g, trace) == []

    def test_weighted_shortcut_routed_around(self):
        # direct edge 0-2 weight 5; path 0-1-2 weight 2: hop motion takes
        # the path, never the heavy edge
        g = Graph(3, [(0, 1, 1), (1, 2, 1), (0, 2, 5)])
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 2, (0,))])
        trace = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        assert [(l.src, l.dst) for l in trace.legs] == [(0, 1), (1, 2)]


class TestLinkCapacity:
    def test_requires_hop_motion(self):
        g = topologies.line(4)
        with pytest.raises(WorkloadError):
            Simulator(g, GreedyScheduler(), None, link_capacity=1)

    def test_invalid_capacity(self):
        g = topologies.line(4)
        with pytest.raises(WorkloadError):
            Simulator(g, GreedyScheduler(), None, hop_motion=True, link_capacity=0)

    def test_bottleneck_edge_serializes(self):
        # two objects must cross the same bridge edge simultaneously
        g = topologies.line(4)  # edges 0-1, 1-2, 2-3
        placement = {0: 1, 1: 1}
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 2, (1,))]
        wl = ManualWorkload(placement, specs)
        free = Simulator(g, GreedyScheduler(), wl, hop_motion=True).run()
        wl = ManualWorkload(placement, specs)
        tight = Simulator(
            g, GreedyScheduler(), wl, hop_motion=True, link_capacity=1, strict=False
        ).run()
        # both cross 1-2 at once when unconstrained; serialized when capped
        crossings = sorted(
            l.depart_time for l in tight.legs if {l.src, l.dst} == {1, 2}
        )
        assert len(crossings) == 2
        assert crossings[1] > crossings[0]
        assert tight.makespan() >= free.makespan()

    def test_congested_run_completes_with_deferrals(self):
        g = topologies.line(12)
        wl = hotspot_workload(g, num_cold_objects=3, k_cold=1, seed=0)
        trace = Simulator(
            g, GreedyScheduler(), wl, hop_motion=True, link_capacity=1, strict=False
        ).run()
        assert len(trace.txns) == 12
        # leg physics still exact per hop even under stalls
        for leg in trace.legs:
            assert leg.arrive_time - leg.depart_time == g.neighbors(leg.src)[leg.dst]

    def test_ample_capacity_no_effect(self):
        g = topologies.grid([3, 3])
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=20, seed=4)
        free = Simulator(g, GreedyScheduler(), mk(), hop_motion=True).run()
        roomy = Simulator(
            g, GreedyScheduler(), mk(), hop_motion=True, link_capacity=50, strict=False
        ).run()
        assert {t: r.exec_time for t, r in free.txns.items()} == {
            t: r.exec_time for t, r in roomy.txns.items()
        }
        assert roomy.violations == []
