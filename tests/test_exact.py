"""Tests for the exact optimal solver."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ExactSolverLimit,
    batch_lower_bound,
    earliest_schedule_for_order,
    exact_optimal_makespan,
    exact_ratio,
    run_experiment,
)
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads import ManualWorkload


def T(tid, home, objs, gen=0):
    return Transaction(tid, home, frozenset(objs), gen)


class TestEarliestSchedule:
    def test_single_chain(self):
        g = topologies.line(8)
        txns = [T(0, 2, {0}), T(1, 6, {0})]
        plan = earliest_schedule_for_order(g, {0: 0}, txns)
        assert plan == {0: 2, 1: 6}

    def test_reverse_order_costs_more(self):
        g = topologies.line(8)
        txns = [T(0, 2, {0}), T(1, 6, {0})]
        fwd = earliest_schedule_for_order(g, {0: 0}, txns)
        rev = earliest_schedule_for_order(g, {0: 0}, txns[::-1])
        assert max(rev.values()) > max(fwd.values())  # 6 then back to 2

    def test_generation_time_respected(self):
        g = topologies.line(8)
        txns = [T(0, 0, {0}, gen=10)]
        plan = earliest_schedule_for_order(g, {0: 0}, txns)
        assert plan[0] == 10


class TestExactOptimal:
    def test_empty_and_single(self):
        g = topologies.line(6)
        assert exact_optimal_makespan(g, {0: 0}, []) == 0
        assert exact_optimal_makespan(g, {0: 0}, [T(0, 4, {0})]) == 4

    def test_hot_object_on_line_is_sweep(self):
        g = topologies.line(6)
        txns = [T(i, i, {0}) for i in range(6)]
        assert exact_optimal_makespan(g, {0: 0}, txns) == 5  # single sweep

    def test_independent_txns_parallel(self):
        g = topologies.clique(5)
        txns = [T(i, i, {i}) for i in range(3)]
        placement = {i: (i + 1) % 5 for i in range(3)}
        assert exact_optimal_makespan(g, placement, txns) == 1

    def test_beats_naive_order(self):
        # object at the right end: naive id-order sweeps wrong way first
        g = topologies.line(10)
        txns = [T(0, 0, {0}), T(1, 9, {0})]
        opt = exact_optimal_makespan(g, {0: 9}, txns)
        # optimal order serves node 9 first (object already there, t=0)
        # then ships to node 0 (t=9); id order would cost 9 + 9 = 18.
        assert opt == 9
        naive = max(earliest_schedule_for_order(g, {0: 9}, txns).values())
        assert naive == 18

    def test_size_cap(self):
        g = topologies.clique(12)
        txns = [T(i, i, {0}) for i in range(12)]
        with pytest.raises(ExactSolverLimit):
            exact_optimal_makespan(g, {0: 0}, txns)

    def test_reads_rejected(self):
        g = topologies.line(4)
        txn = Transaction(0, 1, frozenset(), 0, reads=frozenset({0}))
        with pytest.raises(ExactSolverLimit):
            exact_optimal_makespan(g, {0: 0}, [txn])


@st.composite
def small_batches(draw):
    g = draw(st.sampled_from([topologies.line(6), topologies.clique(5), topologies.grid([2, 3])]))
    n = g.num_nodes
    no = draw(st.integers(1, 3))
    placement = {o: draw(st.integers(0, n - 1)) for o in range(no)}
    txns = []
    for i in range(draw(st.integers(1, 6))):
        k = draw(st.integers(1, no))
        objs = draw(st.lists(st.integers(0, no - 1), min_size=k, max_size=k, unique=True))
        txns.append(T(i, draw(st.integers(0, n - 1)), set(objs)))
    return g, placement, txns


class TestExactProperties:
    @given(small_batches())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_optimum_between_lb_and_any_order(self, inst):
        g, placement, txns = inst
        opt = exact_optimal_makespan(g, placement, txns)
        lb = batch_lower_bound(g, placement, txns)
        naive = max(earliest_schedule_for_order(g, placement, txns).values())
        assert lb <= max(1, opt) or opt == 0
        assert opt <= naive

    @given(small_batches())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_measured_schedulers_never_beat_optimum(self, inst):
        g, placement, txns = inst
        specs = [TxnSpec(0, t.home, tuple(sorted(t.objects))) for t in txns]
        wl = ManualWorkload(placement, specs)
        res = run_experiment(g, GreedyScheduler(), wl, compute_ratios=False)
        opt = exact_optimal_makespan(g, placement, txns)
        assert res.makespan >= opt


class TestExactRatio:
    def test_ratio_components(self):
        g = topologies.line(8)
        txns = [T(0, 2, {0}), T(1, 6, {0})]
        true_r, lb_r, opt, lb = exact_ratio(g, {0: 0}, txns, measured_makespan=8)
        assert opt == 6 and lb == 6
        assert true_r == pytest.approx(8 / 6)
        assert lb_r >= true_r or lb >= opt  # LB-based never smaller than true
