"""Unit and property tests for weighted coloring (Lemmas 1 and 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import (
    coloring_violations,
    greedy_color_sequence,
    min_valid_color,
    min_valid_color_multiple,
)


class TestMinValidColor:
    def test_no_constraints(self):
        assert min_valid_color([]) == 1

    def test_single_constraint(self):
        # neighbor color 0 weight 3 forbids (-3, 3) -> smallest valid is 3
        assert min_valid_color([(0, 3)]) == 3

    def test_candidate_fits_below(self):
        # neighbor color 10 weight 3 forbids (7, 13); 1 is fine
        assert min_valid_color([(10, 3)]) == 1

    def test_stacked_intervals(self):
        cons = [(0, 2), (3, 2), (6, 2)]  # forbids (-2,2),(1,5),(4,8)
        assert min_valid_color(cons) == 8

    def test_gap_between_intervals(self):
        cons = [(0, 2), (10, 3)]  # forbids (-2,2),(7,13): 2 fits
        assert min_valid_color(cons) == 2

    def test_zero_weight_ignored(self):
        assert min_valid_color([(5, 0)]) == 1

    def test_floor_respected(self):
        assert min_valid_color([], floor=7) == 7
        assert min_valid_color([(7, 2)], floor=7) == 9

    def test_unsorted_input(self):
        cons = [(6, 2), (0, 2), (3, 2)]
        assert min_valid_color(cons) == 8


class TestMinValidColorMultiple:
    def test_multiples_only(self):
        c = min_valid_color_multiple([(0, 4)], beta=4)
        assert c == 4

    def test_bumps_to_next_multiple(self):
        # forbids (1, 9) around color 5 weight 4 -> 4 and 8 invalid, 12 valid
        c = min_valid_color_multiple([(5, 4)], beta=4)
        assert c == 12

    def test_no_constraints(self):
        assert min_valid_color_multiple([], beta=3) == 3

    def test_mixed_weights(self):
        c = min_valid_color_multiple([(0, 2), (6, 3)], beta=3)
        # forbids (-2,2),(3,9): 3 is inside? 3<=3 boundary of (3,9) open -> 3 valid
        assert c == 3
        assert abs(c - 0) >= 2 and abs(c - 6) >= 3


@st.composite
def constraint_lists(draw):
    n = draw(st.integers(0, 12))
    return [
        (draw(st.integers(0, 50)), draw(st.integers(0, 10)))
        for _ in range(n)
    ]


class TestColoringProperties:
    @given(constraint_lists())
    @settings(max_examples=200)
    def test_result_is_valid(self, cons):
        c = min_valid_color(cons)
        assert c >= 1
        for color, w in cons:
            assert abs(c - color) >= w

    @given(constraint_lists())
    @settings(max_examples=200)
    def test_lemma1_bound(self, cons):
        """Lemma 1 (floor-shifted): the sweep finds a valid color at most
        ``floor + 2*Gamma - Delta``.  (The paper's bound 2*Gamma - Delta
        allows color 0; our colors are positive, adding the floor.)"""
        c = min_valid_color(cons)
        gamma = sum(w for _, w in cons)
        delta = sum(1 for _, w in cons if w > 0)
        if delta:
            assert c <= 1 + 2 * gamma - delta
        else:
            assert c == 1

    @given(constraint_lists(), st.integers(1, 6))
    @settings(max_examples=200)
    def test_multiple_variant_valid_and_multiple(self, cons, beta):
        c = min_valid_color_multiple(cons, beta)
        assert c >= beta and c % beta == 0
        for color, w in cons:
            assert abs(c - color) >= w

    @given(st.integers(2, 10), st.integers(1, 4))
    @settings(max_examples=50)
    def test_lemma2_bound_uniform(self, n_neighbors, beta):
        """Lemma 2: with uniform weight beta and neighbor colors that are
        multiples of beta, the chosen color is <= Gamma = n*beta."""
        cons = [(i * beta, beta) for i in range(n_neighbors)]
        c = min_valid_color_multiple(cons, beta)
        gamma = n_neighbors * beta
        assert c <= gamma
        for color, w in cons:
            assert abs(c - color) >= w


class TestGreedySequence:
    def test_sequence_produces_valid_coloring(self):
        # Path graph a-b-c with weights 2: classic interval stacking.
        edges = {("a", "b"): 2, ("b", "c"): 2}

        def neigh(node, colors):
            cons = []
            for (u, v), w in edges.items():
                if u == node and v in colors:
                    cons.append((colors[v], w))
                elif v == node and u in colors:
                    cons.append((colors[u], w))
            return cons

        colors = greedy_color_sequence(["a", "b", "c"], neigh)
        violations = coloring_violations(colors, [(u, v, w) for (u, v), w in edges.items()])
        assert violations == []

    def test_existing_colors_respected(self):
        def neigh(node, colors):
            return [(colors["x"], 5)] if "x" in colors else []

        colors = greedy_color_sequence(["y"], neigh, existing={"x": 3})
        assert abs(colors["y"] - 3) >= 5

    def test_violations_detector(self):
        colors = {"a": 1, "b": 2}
        assert coloring_violations(colors, [("a", "b", 5)]) == [("a", "b", 5)]
        assert coloring_violations(colors, [("a", "b", 1)]) == []
        # uncolored endpoints ignored
        assert coloring_violations(colors, [("a", "z", 9)]) == []
