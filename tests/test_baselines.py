"""Tests for the baseline schedulers (FIFO serial, TSP tours)."""

import pytest

from repro.analysis import run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.baselines.tsp import nearest_neighbor_order
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload, hotspot_workload


class TestFifo:
    def test_serializes_everything(self):
        g = topologies.clique(6)
        specs = [TxnSpec(0, i, (i,)) for i in range(6)]  # all independent!
        wl = ManualWorkload({i: i for i in range(6)}, specs)
        res = run_experiment(g, FifoSerialScheduler(), wl)
        times = sorted(r.exec_time for r in res.trace.txns.values())
        assert len(set(times)) == 6  # strictly serial despite independence

    def test_feasible_online(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=0)
        res = run_experiment(g, FifoSerialScheduler(), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_greedy_dominates_fifo_on_parallel_work(self):
        g = topologies.clique(10)
        mk = lambda: BatchWorkload.uniform(g, num_objects=10, k=1, seed=4)
        fifo = run_experiment(g, FifoSerialScheduler(), mk())
        greedy = run_experiment(g, GreedyScheduler(), mk())
        assert greedy.makespan < fifo.makespan


class TestNearestNeighbor:
    def test_order_on_line(self):
        g = topologies.line(10)
        txns = [Transaction(i, h, frozenset({0}), 0) for i, h in enumerate([9, 1, 5])]
        order = nearest_neighbor_order(g, 0, txns)
        assert [t.home for t in order] == [1, 5, 9]

    def test_ties_by_tid(self):
        g = topologies.clique(5)
        txns = [Transaction(i, i + 1, frozenset({0}), 0) for i in range(3)]
        order = nearest_neighbor_order(g, 0, txns)
        assert [t.tid for t in order] == [0, 1, 2]


class TestTsp:
    def test_feasible_on_hotspot(self):
        g = topologies.line(12)
        res = run_experiment(g, TspTourScheduler(), hotspot_workload(g, seed=0))
        assert res.trace.num_txns == 12

    def test_tour_behaviour_on_line(self):
        # hot object at node 0, requesters everywhere: NN tour = sweep,
        # so the TSP baseline matches the sweep makespan on this instance.
        g = topologies.line(10)
        res = run_experiment(g, TspTourScheduler(), hotspot_workload(g, seed=1))
        assert res.makespan <= 2 * (g.num_nodes - 1) + 2

    def test_feasible_online_multiobject(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=1)
        res = run_experiment(g, TspTourScheduler(), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_zero_object_txn(self):
        g = topologies.line(4)
        wl = ManualWorkload({}, [TxnSpec(0, 2, ())])
        res = run_experiment(g, TspTourScheduler(), wl)
        assert res.trace.num_txns == 1
