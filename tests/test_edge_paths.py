"""Coverage for less-travelled branches across modules."""

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler, DistributedBucketScheduler, GreedyScheduler
from repro.directory import ArrowDirectory, SpanningTree
from repro.network import topologies
from repro.offline import (
    ClusterBatchScheduler,
    ColoringBatchScheduler,
    LineBatchScheduler,
    StarBatchScheduler,
    StandaloneView,
)
from repro.sim.transactions import Transaction, TxnSpec
from repro.workloads import ManualWorkload, OnlineWorkload
from repro.sim import SimConfig


class TestOfflineFallbacks:
    """Topology-aware schedulers degrade gracefully off their home turf."""

    def test_cluster_scheduler_without_layout(self):
        g = topologies.grid([3, 3])  # no ClusterLayout attribute
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(4)]
        view = StandaloneView(g, {0: 0})
        plan = ClusterBatchScheduler().plan(view, txns)
        assert len(plan) == 4

    def test_star_scheduler_without_layout(self):
        g = topologies.line(6)
        txns = [Transaction(i, i, frozenset({0}), 0) for i in range(3)]
        view = StandaloneView(g, {0: 0})
        plan = StarBatchScheduler().plan(view, txns)
        assert len(plan) == 3

    def test_star_center_txn_first(self):
        g = topologies.star_graph(3, 2)
        txns = [
            Transaction(0, 3, frozenset({0}), 0),
            Transaction(1, 0, frozenset({0}), 0),  # center node
        ]
        order = StarBatchScheduler().order(StandaloneView(g, {0: 0}), txns)
        assert order[0].home == 0

    def test_line_scheduler_on_ring(self):
        g = topologies.ring(8)
        txns = [Transaction(i, (3 * i) % 8, frozenset({0}), 0) for i in range(5)]
        view = StandaloneView(g, {0: 0})
        plan = LineBatchScheduler().plan(view, txns)
        assert len(plan) == 5

    def test_coloring_orders_distinct(self):
        g = topologies.line(8)
        txns = [
            Transaction(0, 6, frozenset({0, 1}), 0),
            Transaction(1, 2, frozenset({0}), 0),
            Transaction(2, 4, frozenset({1}), 0),
        ]
        view = StandaloneView(g, {0: 0, 1: 7})
        by_home = ColoringBatchScheduler("home").order(view, txns)
        by_degree = ColoringBatchScheduler("degree").order(view, txns)
        assert [t.tid for t in by_home] == [1, 2, 0]
        assert by_degree[0].tid == 0  # most-conflicting first


class TestBucketEdges:
    def test_unaligned_wake_times(self):
        g = topologies.line(8)
        sched = BucketScheduler(ColoringBatchScheduler(), align=False)
        wl = OnlineWorkload.bernoulli(g, num_objects=3, k=1, rate=0.2, horizon=10, seed=1)
        run_experiment(g, sched, wl)
        # rate-limited activations recorded with their own cadence
        assert sched.activation_log

    def test_bucket_respects_max_level_zero(self):
        g = topologies.line(4)
        wl = ManualWorkload({0: 3}, [TxnSpec(0, 3, (0,))])
        sched = BucketScheduler(ColoringBatchScheduler(), max_level=0)
        res = run_experiment(g, sched, wl)
        assert res.trace.num_txns == 1


class TestDistributedEdges:
    def test_prebuilt_cover_reused(self):
        from repro.cover import build_sparse_cover

        g = topologies.line(10)
        cover = build_sparse_cover(g, seed=5)
        sched = DistributedBucketScheduler(ColoringBatchScheduler(), cover=cover)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 7, (0,))])
        run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert sched.cover is cover

    def test_activation_skips_already_scheduled(self):
        """A transaction in two partial buckets cannot happen, but a
        duplicated report must not double-schedule (exec_time guard)."""
        g = topologies.line(8)
        sched = DistributedBucketScheduler(ColoringBatchScheduler(), seed=0)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        res = run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == 1


class TestSpanningTreeEdges:
    def test_root_choice_changes_tree(self):
        g = topologies.ring(8)
        t0 = SpanningTree(g, root=0)
        t4 = SpanningTree(g, root=4)
        assert t0.parent != t4.parent

    def test_find_messages_counter(self):
        g = topologies.line(8)
        d = ArrowDirectory(g)
        d.register(0, 7)
        d.find(0, 0)
        assert d.find_messages == 7
        d.find(0, 7)
        assert d.find_messages == 7  # zero-hop find costs nothing


class TestGreedyDegreeOrderEffect:
    def test_degree_order_changes_schedule_sometimes(self):
        g = topologies.clique(8)
        placement = {0: 0, 1: 1, 2: 2}
        specs = [
            TxnSpec(0, 3, (0, 1, 2)),
            TxnSpec(0, 4, (0,)),
            TxnSpec(0, 5, (1,)),
        ]
        arrival = run_experiment(g, GreedyScheduler(), ManualWorkload(placement, specs))
        degree = run_experiment(
            g, GreedyScheduler(order="degree"), ManualWorkload(placement, specs)
        )
        assert arrival.trace.num_txns == degree.trace.num_txns == 3
        # degree order colors the least-constrained txns first: the two
        # single-object txns commit at t=1, the heavy txn waits
        assert degree.trace.txns[1].exec_time == 1
        assert degree.trace.txns[2].exec_time == 1
        assert degree.trace.txns[0].exec_time >= arrival.trace.txns[0].exec_time
