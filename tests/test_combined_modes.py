"""Combined-mode integration: extensions composed together must still
produce certified schedules.

Each extension is tested alone elsewhere; real deployments turn several
on at once.  The matrix here crosses schedulers with (reads, hop motion,
half speed, lazy departure) combinations.
"""

import pytest

from repro._types import DeparturePolicy
from repro.core import (
    AdaptiveScheduler,
    BucketScheduler,
    CoordinatedGreedyScheduler,
    DistributedBucketScheduler,
    GreedyScheduler,
    WindowedBatchScheduler,
)
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, ImprovedBatchScheduler
from repro.sim.engine import Simulator
from repro.sim.validate import certify_trace
from repro.workloads import OnlineWorkload


def make_wl(g, read_fraction, seed=11):
    return OnlineWorkload.bernoulli(
        g, num_objects=6, k=2, rate=1.0 / g.num_nodes, horizon=40,
        seed=seed, read_fraction=read_fraction,
    )


COMBOS = [
    # (label, scheduler factory, speed, engine kwargs, read_fraction)
    ("greedy+reads+hop", lambda: GreedyScheduler(), 1, {"hop_motion": True}, 0.5),
    ("greedy+reads+lazy", lambda: GreedyScheduler(), 1,
     {"departure_policy": DeparturePolicy.LAZY}, 0.5),
    ("greedy+halfspeed+hop+reads", lambda: GreedyScheduler(), 2, {"hop_motion": True}, 0.4),
    ("bucket+reads+hop", lambda: BucketScheduler(ColoringBatchScheduler()), 1,
     {"hop_motion": True}, 0.5),
    ("bucket-improved+reads", lambda: BucketScheduler(
        ImprovedBatchScheduler(ColoringBatchScheduler(), iterations=10, seed=1)), 1, {}, 0.5),
    ("windowed+reads+hop", lambda: WindowedBatchScheduler(ColoringBatchScheduler(), window=8),
     1, {"hop_motion": True}, 0.5),
    ("coordinated+reads+hop", lambda: CoordinatedGreedyScheduler(), 1, {"hop_motion": True}, 0.5),
    ("adaptive+reads+hop", lambda: AdaptiveScheduler(), 1, {"hop_motion": True}, 0.3),
    ("distributed+reads", lambda: DistributedBucketScheduler(ColoringBatchScheduler(), seed=0),
     2, {}, 0.5),
    ("distributed+reads+hop", lambda: DistributedBucketScheduler(ColoringBatchScheduler(), seed=0),
     2, {"hop_motion": True}, 0.5),
    ("distributed-arrow+reads+hop", lambda: DistributedBucketScheduler(
        ColoringBatchScheduler(), seed=0, discovery="arrow"), 2, {"hop_motion": True}, 0.4),
]


@pytest.mark.parametrize("label,factory,speed,kwargs,rf", COMBOS, ids=[c[0] for c in COMBOS])
@pytest.mark.parametrize("graph_fn", [lambda: topologies.grid([3, 4]), lambda: topologies.line(12)],
                         ids=["grid", "line"])
def test_combined_modes_certified(label, factory, speed, kwargs, rf, graph_fn):
    g = graph_fn()
    wl = make_wl(g, rf)
    sim = Simulator(g, factory(), wl, object_speed_den=speed, **kwargs)
    trace = sim.run()
    assert len(trace.txns) == wl.num_txns
    assert certify_trace(g, trace) == []
