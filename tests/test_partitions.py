"""Network-partition fault tests (PR: chaos + partitions).

Layers mirror ``test_faults.py``:

1. **Plan validity** — :class:`PartitionWindow` construction rules and
   :meth:`FaultPlan.validate_against` naming the offending node/edge
   when a plan references things the bound graph does not have.
2. **Physics** — a cut either blocks object legs until the heal
   (``partition-block``) or reroutes them along an intact detour
   (``reroute`` with the exact extra travel), under both direct and hop
   transports; control messages across the cut are deferred to the heal
   (``partition-msg``).
3. **Liveness + accountability** — partitioned runs still commit every
   transaction, the trace carries :class:`PartitionRecord`\\ s that the
   certifier checks cover every partition-dependent fault record, and
   everything round-trips through JSON byte-identically.
"""

import json

import pytest

from repro.core import GreedyScheduler
from repro.errors import WorkloadError
from repro.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.network import topologies
from repro.network.graph import normalize_cut
from repro.sim import PartitionRecord, SimConfig, Simulator, certify_trace
from repro.sim.serialize import trace_from_dict, trace_to_dict
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload, OnlineWorkload


def canonical(trace) -> str:
    return json.dumps(trace_to_dict(trace), sort_keys=True, indent=0)


def fault_kinds(trace):
    return {f.kind for f in trace.faults}


def ring_run(plan, *, transport="direct", specs=None, placement=None, n=8):
    g = topologies.ring(n)
    placement = placement if placement is not None else {0: 4}
    specs = specs if specs is not None else [TxnSpec(0, 0, (0,))]
    wl = ManualWorkload(placement, specs)
    cfg = SimConfig(faults=plan, transport=transport)
    trace = Simulator(g, GreedyScheduler(), wl, config=cfg).run()
    return g, trace


# ----------------------------------------------------------------------
# windows and plan validation
# ----------------------------------------------------------------------

class TestPartitionWindow:
    def test_cut_is_normalized_and_sorted(self):
        p = PartitionWindow(((5, 4), (2, 1)), 3, 7)
        assert p.cut == ((1, 2), (4, 5))
        assert p.duration == 4
        assert p.cut_set == normalize_cut([(4, 5), (1, 2)])

    def test_bad_interval_rejected(self):
        with pytest.raises(WorkloadError):
            PartitionWindow(((0, 1),), 5, 5)
        with pytest.raises(WorkloadError):
            PartitionWindow(((0, 1),), -1, 4)

    def test_empty_cut_rejected(self):
        with pytest.raises(WorkloadError):
            PartitionWindow((), 1, 4)

    def test_record_covers(self):
        r = PartitionRecord(((0, 1),), 3, 7)
        assert not r.covers(2)
        assert r.covers(3) and r.covers(6)
        assert not r.covers(7)


class TestValidateAgainst:
    """The engine validates the plan against G when it binds it; errors
    must name the offending value (satellite: value-naming errors)."""

    def test_crash_node_out_of_range_named(self):
        g = topologies.ring(4)
        plan = FaultPlan(seed=0, crashes=(CrashWindow(9, 1, 4),))
        with pytest.raises(WorkloadError, match=r"names node 9"):
            plan.validate_against(g)

    def test_partition_node_out_of_range_named(self):
        g = topologies.ring(4)
        plan = FaultPlan(seed=0, partitions=(PartitionWindow(((3, 7),), 1, 4),))
        with pytest.raises(WorkloadError, match=r"\(3, 7\)"):
            plan.validate_against(g)

    def test_partition_nonexistent_edge_named(self):
        g = topologies.ring(6)  # (0, 3) is a chord, not a ring edge
        plan = FaultPlan(seed=0, partitions=(PartitionWindow(((0, 3),), 1, 4),))
        with pytest.raises(WorkloadError, match=r"\(0, 3\).*not an edge"):
            plan.validate_against(g)

    def test_engine_binds_and_rejects(self):
        plan = FaultPlan(seed=0, crashes=(CrashWindow(99, 1, 4),))
        with pytest.raises(WorkloadError, match="99"):
            ring_run(plan)

    def test_valid_plan_accepted(self):
        g = topologies.ring(6)
        plan = FaultPlan(
            seed=0,
            crashes=(CrashWindow(2, 1, 4),),
            partitions=(PartitionWindow(((2, 3),), 1, 4),),
        )
        plan.validate_against(g)  # no raise


# ----------------------------------------------------------------------
# cut-aware shortest paths
# ----------------------------------------------------------------------

class TestCutAwarePaths:
    def test_detour_distance(self):
        g = topologies.ring(8)
        cut = normalize_cut([(0, 1)])
        assert g.distance(1, 0) == 1
        assert g.distance_avoiding(1, 0, cut) == 7  # the long way round

    def test_separation_is_inf(self):
        g = topologies.ring(8)
        cut = normalize_cut([(3, 4), (4, 5)])  # isolates node 4
        assert g.distance_avoiding(4, 0, cut) == float("inf")
        assert g.shortest_path_avoiding(4, 0, cut) is None

    def test_empty_cut_matches_plain(self):
        g = topologies.grid([3, 3])
        for s in range(g.num_nodes):
            for d in range(g.num_nodes):
                assert g.distance_avoiding(s, d, frozenset()) == g.distance(s, d)

    def test_path_avoids_cut_edges(self):
        g = topologies.grid([3, 3])
        cut = normalize_cut([(0, 1)])
        path = g.shortest_path_avoiding(0, 2, cut)
        legs = normalize_cut(zip(path, path[1:]))
        assert not (legs & cut)


# ----------------------------------------------------------------------
# transport + engine semantics
# ----------------------------------------------------------------------

class TestPartitionPhysics:
    def test_blocked_leg_waits_for_heal(self):
        # Node 4's edges are all cut until t=12: the object cannot leave.
        plan = FaultPlan(
            seed=0, partitions=(PartitionWindow(((3, 4), (4, 5)), 0, 12),)
        )
        g, trace = ring_run(plan)
        assert trace.num_txns == 1
        kinds = fault_kinds(trace)
        assert {"partition", "partition-block", "heal"} <= kinds
        block = next(f for f in trace.faults if f.kind == "partition-block")
        assert block.extra == 12 - block.time  # wait is exactly to the heal
        assert trace.partitions == [PartitionRecord(((3, 4), (4, 5)), 0, 12)]
        assert certify_trace(g, trace) == []

    @pytest.mark.parametrize("transport", ["direct", "hop"])
    def test_reroute_takes_detour(self, transport):
        # The object sits one hop from home but that edge is cut: the
        # leg must take the long way round, with the extra travel
        # recorded for the certifier.
        plan = FaultPlan(seed=0, partitions=(PartitionWindow(((0, 1),), 0, 30),))
        g, trace = ring_run(plan, transport=transport, placement={0: 1})
        assert trace.num_txns == 1
        assert "reroute" in fault_kinds(trace)
        assert certify_trace(g, trace) == []

    def test_hop_reroute_makes_progress(self):
        # Regression: under a cut, hop transports must follow the
        # cut-aware next hop; following the plain next hop oscillates
        # between two nodes until the heal.
        plan = FaultPlan(
            seed=0, partitions=(PartitionWindow(((1, 2), (2, 3)), 0, 40),)
        )
        g, trace = ring_run(plan, transport="hop", placement={0: 2})
        # Node 2 is isolated: the object waits for the heal, then hops.
        assert trace.num_txns == 1
        assert certify_trace(g, trace) == []

    def test_messages_deferred_across_cut(self):
        # A message-passing scheduler whose control traffic crosses the
        # cut: deliveries are held to the heal and recorded.
        from repro.cli import make_scheduler

        g = topologies.ring(8)
        plan = FaultPlan(
            seed=3, partitions=(PartitionWindow(((3, 4), (4, 5)), 2, 12),)
        )
        wl = OnlineWorkload.bernoulli(g, 5, 2, rate=0.2, horizon=20, seed=5)
        scheduler, speed = make_scheduler("coordinated", g)
        cfg = SimConfig(faults=plan, object_speed_den=speed)
        trace = Simulator(g, scheduler, wl, config=cfg).run()
        assert certify_trace(g, trace) == []
        held = [f for f in trace.faults if f.kind == "partition-msg"]
        for f in held:
            assert any(p.covers(f.time) for p in trace.partitions)

    def test_partition_records_deterministic(self):
        plan = FaultPlan(
            seed=9,
            drop_prob=0.1,
            partitions=(PartitionWindow(((0, 1),), 1, 9),),
        )
        _, a = ring_run(plan)
        _, b = ring_run(plan)
        assert canonical(a) == canonical(b)


# ----------------------------------------------------------------------
# serialization + certifier reconciliation
# ----------------------------------------------------------------------

class TestPartitionTraceRoundTrip:
    def test_round_trip_preserves_partitions(self):
        plan = FaultPlan(
            seed=1, partitions=(PartitionWindow(((3, 4), (4, 5)), 0, 12),)
        )
        g, trace = ring_run(plan)
        back = trace_from_dict(json.loads(canonical(trace)))
        assert back.partitions == trace.partitions
        assert canonical(back) == canonical(trace)
        assert certify_trace(g, back) == []

    def test_unpartitioned_trace_has_no_partitions_key(self):
        g, trace = ring_run(None)
        assert "partitions" not in trace_to_dict(trace)

    def test_certifier_rejects_uncovered_reroute(self):
        # Strip the PartitionRecords: every reroute record is now
        # unexplained and certification must fail.
        plan = FaultPlan(seed=0, partitions=(PartitionWindow(((0, 1),), 0, 30),))
        g, trace = ring_run(plan, placement={0: 1})
        assert "reroute" in fault_kinds(trace)
        data = json.loads(canonical(trace))
        del data["partitions"]
        tampered = trace_from_dict(data)
        issues = certify_trace(g, tampered, raise_on_failure=False)
        assert issues and any("partition" in str(i) for i in issues)

    def test_certifier_rejects_bogus_window(self):
        plan = FaultPlan(seed=0, partitions=(PartitionWindow(((0, 1),), 0, 30),))
        g, trace = ring_run(plan, placement={0: 1})
        data = json.loads(canonical(trace))
        data["partitions"][0][0] = [[0, 3]]  # not an edge of ring(8)
        tampered = trace_from_dict(data)
        issues = certify_trace(g, tampered, raise_on_failure=False)
        assert issues and any("partition" in str(i) for i in issues)


class TestPartitionLiveness:
    def test_full_mix_still_commits(self):
        g = topologies.ring(10)
        plan = FaultPlan(
            seed=4,
            drop_prob=0.05,
            delay_prob=0.1,
            max_delay=2,
            crashes=(CrashWindow(3, 5, 11),),
            partitions=(PartitionWindow(((6, 7),), 4, 14),),
        )
        wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.15, horizon=25, seed=2)
        specs = wl.arrivals()
        cfg = SimConfig(faults=plan)
        trace = Simulator(g, GreedyScheduler(), wl, config=cfg).run()
        assert trace.num_txns == len(specs)
        assert certify_trace(g, trace) == []
