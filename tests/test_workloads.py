"""Tests for workload generators and arrival processes."""

import numpy as np
import pytest

from repro.analysis import run_experiment
from repro.core import GreedyScheduler
from repro.errors import WorkloadError
from repro.network import topologies
from repro.workloads import (
    BatchWorkload,
    ClosedLoopWorkload,
    LocalityChooser,
    OnlineWorkload,
    UniformChooser,
    ZipfChooser,
    chain_workload,
    hotspot_workload,
)
from repro.workloads.generators import place_objects_uniform


class TestChoosers:
    def test_uniform_distinct(self):
        ch = UniformChooser(10)
        rng = np.random.default_rng(0)
        for _ in range(20):
            picks = ch.choose(0, 4, rng)
            assert len(set(picks)) == 4
            assert all(0 <= p < 10 for p in picks)

    def test_k_too_large(self):
        with pytest.raises(WorkloadError):
            UniformChooser(3).choose(0, 4, np.random.default_rng(0))

    def test_zipf_skews_to_low_ids(self):
        ch = ZipfChooser(20, s=1.5)
        rng = np.random.default_rng(1)
        counts = np.zeros(20)
        for _ in range(500):
            for p in ch.choose(0, 2, rng):
                counts[p] += 1
        assert counts[0] > counts[10]
        assert counts[:3].sum() > counts[10:].sum()

    def test_zipf_s0_is_uniformish(self):
        ch = ZipfChooser(10, s=0.0)
        assert np.allclose(ch._probs, 0.1)

    def test_locality_prefers_near_objects(self):
        g = topologies.line(20)
        placement = {0: 0, 1: 19}
        ch = LocalityChooser(g, placement, bias=3.0)
        rng = np.random.default_rng(2)
        near = sum(ch.choose(0, 1, rng)[0] == 0 for _ in range(200))
        assert near > 150


class TestBatchWorkload:
    def test_one_txn_per_node(self):
        g = topologies.clique(9)
        wl = BatchWorkload.uniform(g, num_objects=5, k=2, seed=0)
        specs = wl.arrivals()
        assert len(specs) == 9
        assert sorted(s.home for s in specs) == list(range(9))
        assert all(s.gen_time == 0 for s in specs)
        assert all(len(s.objects) == 2 for s in specs)

    def test_subset_of_nodes(self):
        g = topologies.clique(9)
        wl = BatchWorkload.uniform(g, num_objects=5, k=1, seed=0, num_txns=4)
        assert len(wl.arrivals()) == 4

    def test_num_txns_capped(self):
        g = topologies.clique(4)
        with pytest.raises(WorkloadError):
            BatchWorkload.uniform(g, num_objects=3, k=1, num_txns=9)

    def test_deterministic(self):
        g = topologies.clique(9)
        a = BatchWorkload.uniform(g, num_objects=5, k=2, seed=7)
        b = BatchWorkload.uniform(g, num_objects=5, k=2, seed=7)
        assert a.arrivals() == b.arrivals()
        assert a.initial_objects() == b.initial_objects()


class TestOnlineWorkload:
    def test_bernoulli_rate_bounds(self):
        g = topologies.line(10)
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=1, rate=0.5, horizon=40, seed=0)
        n = len(wl.arrivals())
        assert 100 < n < 300  # ~200 expected

    def test_invalid_rate(self):
        g = topologies.line(4)
        with pytest.raises(WorkloadError):
            OnlineWorkload.bernoulli(g, 2, 1, rate=1.5, horizon=10)

    def test_poisson_bulk(self):
        g = topologies.line(10)
        wl = OnlineWorkload.poisson_bulk(g, num_objects=4, k=1, lam=0.5, horizon=40, seed=0)
        specs = wl.arrivals()
        assert all(0 <= s.gen_time < 40 for s in specs)


class TestClosedLoop:
    def test_rounds_respected(self):
        g = topologies.clique(6)
        wl = ClosedLoopWorkload(g, num_objects=4, k=1, rounds=4, seed=0)
        res = run_experiment(g, GreedyScheduler(), wl)
        assert res.trace.num_txns == 6 * 4
        # each node generated exactly `rounds` txns
        homes = [r.home for r in res.trace.txns.values()]
        assert all(homes.count(h) == 4 for h in range(6))

    def test_one_live_txn_per_node(self):
        g = topologies.clique(5)
        wl = ClosedLoopWorkload(g, num_objects=3, k=1, rounds=3, seed=1)
        res = run_experiment(g, GreedyScheduler(), wl)
        from repro.sim.validate import certify_trace

        assert certify_trace(g, res.trace, one_txn_per_node=True) == []

    def test_next_txn_issued_next_step(self):
        g = topologies.clique(4)
        wl = ClosedLoopWorkload(g, num_objects=2, k=1, rounds=2, seed=2)
        res = run_experiment(g, GreedyScheduler(), wl)
        by_home = {}
        for r in res.trace.txns.values():
            by_home.setdefault(r.home, []).append(r)
        for recs in by_home.values():
            recs.sort(key=lambda r: r.gen_time)
            assert recs[1].gen_time >= recs[0].exec_time + 1


class TestAdversarial:
    def test_hotspot_everyone_wants_object0(self):
        g = topologies.line(8)
        wl = hotspot_workload(g, seed=0)
        assert all(0 in s.objects for s in wl.arrivals())

    def test_hotspot_with_cold_objects(self):
        g = topologies.line(8)
        wl = hotspot_workload(g, num_cold_objects=5, k_cold=2, seed=0)
        for s in wl.arrivals():
            assert len(s.objects) == 3

    def test_chain_adjacent_overlap(self):
        g = topologies.line(10)
        wl = chain_workload(g)
        specs = wl.arrivals()
        for a, b in zip(specs, specs[1:]):
            assert set(a.objects) & set(b.objects)

    def test_chain_runs_feasibly(self):
        g = topologies.line(10)
        res = run_experiment(g, GreedyScheduler(), chain_workload(g))
        assert res.trace.num_txns == 10

    def test_chain_too_short(self):
        with pytest.raises(WorkloadError):
            chain_workload(topologies.line(4), length=1)


def test_place_objects_uniform_range():
    g = topologies.line(7)
    placement = place_objects_uniform(g, 30, np.random.default_rng(0))
    assert set(placement) == set(range(30))
    assert all(0 <= n < 7 for n in placement.values())
