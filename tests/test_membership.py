"""Elastic membership (``repro.faults.MembershipPlan``): churn beyond
partitions.

Joins mutate the graph under the no-shortcut admission condition (so no
pre-existing distance ever changes); leaves are data-plane events — the
departed node's incident edges are cut for object routing, live
transactions are re-homed, resting objects are recovered to the nearest
member.  The tests here pin the validation story, the engine semantics,
liveness across every bundled scheduler, and the certifier/invariant
extensions.
"""

import json

import pytest

from repro.chaos import InvariantMonitor, run_sweep
from repro.cli import SCHEDULER_NAMES, make_scheduler
from repro.errors import GraphError, WorkloadError
from repro.faults import (
    FaultPlan,
    JoinEvent,
    LeaveEvent,
    MembershipPlan,
)
from repro.network.topologies import grid, ring
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.serialize import trace_from_dict, trace_to_dict
from repro.sim.validate import certify_trace
from repro.workloads import OnlineWorkload

CHURN = MembershipPlan(
    joins=(JoinEvent(9, 8, ((4, 1),)),),
    leaves=(LeaveEvent(1, 10, graceful=False), LeaveEvent(7, 14, graceful=True)),
)


def _run(scheduler_name, plan, *, seed=9, horizon=40, probe=None):
    g = grid([3, 3])
    sched, speed = make_scheduler(scheduler_name, g)
    wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.4, horizon=horizon, seed=seed)
    sim = Simulator(
        g, sched, wl,
        config=SimConfig(object_speed_den=speed, faults=plan, probe=probe),
    )
    return sim, sim.run()


class TestGraphJoin:
    def test_add_node_dense_id_and_distances(self):
        g = ring(6)
        new = g.add_node(((0, 2), (3, 2)))
        assert new == 6
        assert g.num_nodes == 7
        assert g.distance(6, 0) == 2 and g.distance(6, 3) == 2
        # no-shortcut weights: pre-existing distances unchanged
        assert g.distance(0, 3) == 3

    def test_add_node_rejects_bad_edges(self):
        g = ring(4)
        with pytest.raises(GraphError):
            g.add_node(())
        with pytest.raises(GraphError):
            g.add_node(((0, 0),))


class TestPlanValidation:
    def test_leave_names_offending_node(self):
        plan = FaultPlan(
            seed=1,
            membership=MembershipPlan(leaves=(LeaveEvent(99, 5),)),
        )
        with pytest.raises(WorkloadError, match="99"):
            plan.validate_against(grid([3, 3]))

    def test_joined_nodes_cannot_leave(self):
        plan = FaultPlan(
            seed=1,
            membership=MembershipPlan(
                joins=(JoinEvent(9, 3, ((4, 1),)),),
                leaves=(LeaveEvent(9, 8),),
            ),
        )
        with pytest.raises(WorkloadError, match="joined nodes cannot leave"):
            plan.validate_against(grid([3, 3]))

    def test_disconnecting_leave_rejected(self):
        # grid(3x3) corner 0 has neighbours {1, 3}: removing both strands it
        plan = FaultPlan(
            seed=1,
            membership=MembershipPlan(
                leaves=(LeaveEvent(1, 5), LeaveEvent(3, 7)),
            ),
        )
        with pytest.raises(WorkloadError, match="disconnects"):
            plan.validate_against(grid([3, 3]))

    def test_join_id_must_be_dense(self):
        plan = FaultPlan(
            seed=1,
            membership=MembershipPlan(joins=(JoinEvent(12, 3, ((4, 1),)),)),
        )
        with pytest.raises(WorkloadError, match="dense"):
            plan.validate_against(grid([3, 3]))

    def test_no_shortcut_condition_enforced(self):
        # ring(6): d(0, 3) = 3; anchor weights 1+1 = 2 < 3 would shortcut
        bad = FaultPlan(
            seed=1,
            membership=MembershipPlan(joins=(JoinEvent(6, 3, ((0, 1), (3, 1))),)),
        )
        with pytest.raises(WorkloadError, match="shortcut"):
            bad.validate_against(ring(6))
        ok = FaultPlan(
            seed=1,
            membership=MembershipPlan(joins=(JoinEvent(6, 3, ((0, 2), (3, 2))),)),
        )
        ok.validate_against(ring(6))  # weights 2+2 >= 3: admitted

    def test_dict_roundtrip_and_parse(self):
        plan = FaultPlan(seed=3, drop_prob=0.1, membership=CHURN)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        assert "membership" not in FaultPlan(seed=3, drop_prob=0.1).to_dict()
        g = grid([3, 3])
        parsed = FaultPlan.parse(
            "seed=5,join=1,leave=1",
            num_nodes=g.num_nodes,
            horizon=30,
            edges=[(u, v) for u, v, _ in g.edges()],
        )
        assert parsed.membership is not None
        assert len(parsed.membership.joins) == 1
        assert len(parsed.membership.leaves) == 1

    def test_random_plans_are_deterministic(self):
        g = grid([3, 3])
        kw = dict(
            num_nodes=9, horizon=30, join_count=2, leave_count=2,
            edges=[(u, v) for u, v, _ in g.edges()],
        )
        a = FaultPlan.random(7, **kw)
        b = FaultPlan.random(7, **kw)
        assert a == b
        a.validate_against(g)


class TestEngineChurn:
    def test_mid_run_churn_semantics(self):
        plan = FaultPlan(seed=5, drop_prob=0.05, membership=CHURN)
        sim, trace = _run("greedy", plan)
        assert len(trace.txns) == len(sim.txns), "churn lost transactions"
        kinds = trace.fault_counts()
        assert kinds.get("join") == 1
        assert kinds.get("leave") == 2
        assert kinds.get("drain") == 1
        # membership records mirror the fault records, with join edges
        mk = [(m.kind, m.node) for m in trace.membership]
        assert ("join", 9) in mk and ("leave", 1) in mk and ("drain", 7) in mk
        join = next(m for m in trace.membership if m.kind == "join")
        assert join.edges == ((4, 1),)
        # nothing commits at a departed home after its leave
        leave_t = {m.node: m.time for m in trace.membership if m.kind == "leave"}
        for rec in trace.txns.values():
            if rec.home in leave_t:
                assert rec.exec_time <= leave_t[rec.home]

    def test_joined_nodes_never_home_transactions(self):
        plan = FaultPlan(seed=5, membership=CHURN)
        sim, trace = _run("greedy", plan)
        assert all(rec.home < 9 for rec in trace.txns.values())

    def test_certifier_accepts_churn_live_and_archival(self):
        plan = FaultPlan(seed=5, drop_prob=0.05, membership=CHURN)
        sim, trace = _run("bucket", plan)
        assert certify_trace(sim.graph, trace, raise_on_failure=False) == []
        archived = trace_from_dict(json.loads(json.dumps(trace_to_dict(trace))))
        pristine = grid([3, 3])
        assert certify_trace(pristine, archived, raise_on_failure=False) == []
        assert pristine.num_nodes == 9, "certifier mutated the caller's graph"

    def test_serialized_membership_roundtrip(self):
        plan = FaultPlan(seed=5, membership=CHURN)
        _, trace = _run("greedy", plan)
        again = trace_from_dict(trace_to_dict(trace))
        assert [str(m) for m in again.membership] == [
            str(m) for m in trace.membership
        ]

    def test_churn_is_deterministic(self):
        plan = FaultPlan(seed=5, drop_prob=0.05, membership=CHURN)
        _, a = _run("greedy", plan)
        _, b = _run("greedy", plan)
        assert json.dumps(trace_to_dict(a), sort_keys=True) == json.dumps(
            trace_to_dict(b), sort_keys=True
        )

    def test_monitor_clean_under_churn(self):
        probe = InvariantMonitor(stall_k=512)
        plan = FaultPlan(seed=5, drop_prob=0.05, membership=CHURN)
        sim, trace = _run("adaptive", plan, probe=probe)
        assert probe.checks_run > 0
        assert len(trace.txns) == len(sim.txns)


class TestChurnLiveness:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_every_scheduler_commits_everything(self, scheduler):
        g = grid([3, 3])
        plan = FaultPlan.random(
            11,
            num_nodes=9,
            horizon=40,
            drop_prob=0.08,
            join_count=2,
            leave_count=2,
            edges=[(u, v) for u, v, _ in g.edges()],
        )
        sim, trace = _run(scheduler, plan, seed=11)
        assert len(trace.txns) == len(sim.txns), (
            f"{scheduler} stranded {len(sim.txns) - len(trace.txns)} txns"
        )


class TestChaosChurn:
    def test_sweep_with_churn_no_violations(self, tmp_path):
        res = run_sweep(
            6,
            seed=42,
            topology="grid:3x3",
            joins=1,
            leaves=1,
            drop=0.05,
            horizon=30,
        )
        assert res.ok, [r.violation for r in res.violations]
        totals = res.summary()["fault_counts"]
        assert totals.get("join", 0) > 0 and totals.get("leave", 0) > 0

    def test_sweep_resume_identical(self, tmp_path):
        kw = dict(
            seed=42, topology="grid:3x3", joins=1, leaves=1,
            drop=0.05, horizon=30,
        )
        full_log = tmp_path / "full.jsonl"
        full = run_sweep(5, resume_path=str(full_log), **kw)
        # keep only the first 2 episode records plus a torn tail
        lines = full_log.read_text().splitlines(keepends=True)
        part_log = tmp_path / "part.jsonl"
        part_log.write_text("".join(lines[:2]) + '{"index": 2, "resu')
        resumed = run_sweep(5, resume_path=str(part_log), **kw)
        assert [r.to_dict() for r in resumed.episodes] == [
            r.to_dict() for r in full.episodes
        ]
