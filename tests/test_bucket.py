"""Tests for Algorithm 2 (online bucket scheduler) and Lemmas 3-4."""

import math

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.sim.transactions import TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload


def make(scheduler_cls=ColoringBatchScheduler, **kw):
    return BucketScheduler(scheduler_cls(), **kw)


class TestStructure:
    def test_max_level_is_lemma3(self):
        g = topologies.line(16)  # n=16, D=15
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0)
        sched = make()
        run_experiment(g, sched, wl)
        assert sched.max_level == math.ceil(math.log2(16 * 15)) + 1

    def test_override_max_level(self):
        g = topologies.line(8)
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0)
        sched = make(max_level=4)
        run_experiment(g, sched, wl)
        assert sched.max_level == 4

    def test_insertions_logged_within_levels(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.05, horizon=40, seed=1)
        sched = make()
        run_experiment(g, sched, wl)
        assert sched.insert_log
        for tid, level, t in sched.insert_log:
            assert 0 <= level <= sched.max_level

    def test_lowest_levels_first_on_shared_activation(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.08, horizon=40, seed=5)
        sched = make()
        run_experiment(g, sched, wl)
        by_time = {}
        for level, t, size in sched.activation_log:
            by_time.setdefault(t, []).append(level)
        for t, levels in by_time.items():
            assert levels == sorted(levels)


class TestLemma4:
    """A txn inserted into B_i at time t executes by t + (i+1)*2**(i+2)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_latency_bound(self, seed):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.06, horizon=60, seed=seed)
        sched = make()
        res = run_experiment(g, sched, wl)
        level_of = {tid: level for tid, level, _ in sched.insert_log}
        insert_time = {tid: t for tid, _, t in sched.insert_log}
        for rec in res.trace.txns.values():
            i = level_of[rec.tid]
            assert rec.exec_time <= insert_time[rec.tid] + (i + 1) * 2 ** (i + 2)


class TestSchedulingBehavior:
    def test_light_txn_lands_in_low_bucket(self):
        # a single local-object txn: batch completes in 1 step -> B_0
        g = topologies.line(8)
        wl = ManualWorkload({0: 3}, [TxnSpec(0, 3, (0,))])
        sched = make()
        res = run_experiment(g, sched, wl)
        assert sched.insert_log[0][1] == 0
        assert res.trace.txns[0].exec_time <= 2

    def test_heavy_txn_lands_in_higher_bucket(self):
        g = topologies.line(16)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 15, (0,))])  # needs 15 travel
        sched = make()
        run_experiment(g, sched, wl)
        assert sched.insert_log[0][1] == 4  # 2**4 = 16 >= 15+

    def test_batch_at_time_zero_schedules_immediately(self):
        g = topologies.clique(8)
        wl = BatchWorkload.uniform(g, num_objects=4, k=2, seed=2)
        sched = make()
        res = run_experiment(g, sched, wl)
        # t=0 is divisible by every period: all buckets activate at once
        assert all(r.schedule_time == 0 for r in res.trace.txns.values())

    def test_feasible_online_line(self):
        g = topologies.line(24)
        wl = OnlineWorkload.bernoulli(g, num_objects=8, k=2, rate=0.04, horizon=60, seed=3)
        res = run_experiment(g, BucketScheduler(LineBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns  # certified by run_experiment

    def test_unaligned_mode_feasible(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.05, horizon=40, seed=6)
        res = run_experiment(g, make(align=False), wl)
        assert res.trace.num_txns == wl.num_txns

    def test_has_pending_drains(self):
        g = topologies.line(8)
        wl = OnlineWorkload.bernoulli(g, num_objects=3, k=1, rate=0.1, horizon=20, seed=7)
        sched = make()
        run_experiment(g, sched, wl)
        assert not sched.has_pending()
        assert sched.pending_count() == 0
