"""Tests for the placement optimizer."""

import pytest

from repro.analysis import (
    optimize_placement,
    replace_placement,
    run_experiment,
    weighted_one_median,
)
from repro.core import GreedyScheduler
from repro.network import topologies
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload, OnlineWorkload


class TestOneMedian:
    def test_line_median(self):
        g = topologies.line(10)
        assert weighted_one_median(g, [0, 5, 9]) == 5
        assert weighted_one_median(g, [2, 2, 9]) == 2  # majority wins

    def test_weights_shift_median(self):
        g = topologies.line(10)
        assert weighted_one_median(g, [0, 9], [10.0, 1.0]) == 0

    def test_empty(self):
        g = topologies.line(4)
        assert weighted_one_median(g, []) == 0


class TestOptimizePlacement:
    def test_single_accessor_object_moves_home(self):
        g = topologies.line(12)
        specs = [TxnSpec(0, 7, (0,))]
        placement = optimize_placement(g, specs)
        assert placement[0] == 7

    def test_discount_prefers_early_accessors(self):
        g = topologies.line(20)
        specs = [TxnSpec(0, 2, (0,)), TxnSpec(5, 19, (0,)), TxnSpec(6, 19, (0,))]
        flat = optimize_placement(g, specs)
        early = optimize_placement(g, specs, discount=0.8)
        assert early[0] <= flat[0]  # pulled toward node 2

    def test_reads_count_as_accesses(self):
        g = topologies.line(10)
        specs = [TxnSpec(0, 8, (), reads=(0,))]
        assert optimize_placement(g, specs)[0] == 8

    def test_replace_placement_merges(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0, 1: 7}, [TxnSpec(0, 3, (0,))])
        new = replace_placement(wl, {0: 3})
        assert new.initial_objects() == {0: 3, 1: 7}
        assert new.arrivals() == wl.arrivals()

    def test_optimized_placement_reduces_travel_on_average(self):
        """Per-seed improvement isn't guaranteed (schedule dynamics can
        dominate the static first-approach metric), but the mean across
        seeds must improve."""
        g = topologies.grid([5, 5])
        base_total, opt_total = 0, 0
        for seed in range(5):
            wl = OnlineWorkload.bernoulli(g, num_objects=8, k=2, rate=0.04, horizon=60, seed=seed)
            base = run_experiment(g, GreedyScheduler(), wl)
            wl2 = replace_placement(wl, optimize_placement(g, wl.arrivals()))
            opt = run_experiment(g, GreedyScheduler(), wl2)
            base_total += base.trace.total_object_travel()
            opt_total += opt.trace.total_object_travel()
        assert opt_total < base_total
