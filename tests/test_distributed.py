"""Tests for Algorithm 3 (distributed bucket scheduler)."""

import pytest

from repro.analysis import run_experiment
from repro.core import BucketScheduler, DistributedBucketScheduler
from repro.errors import SchedulingError
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload
from repro.sim import SimConfig


def dist_sched(batch_cls=ColoringBatchScheduler, **kw):
    return DistributedBucketScheduler(batch_cls(), seed=0, **kw)


class TestPreconditions:
    def test_requires_half_speed(self):
        g = topologies.line(8)
        wl = BatchWorkload.uniform(g, num_objects=2, k=1, seed=0)
        with pytest.raises(SchedulingError, match="half-speed"):
            Simulator(g, dist_sched(), wl, object_speed_den=1)


class TestProtocol:
    def test_single_txn_completes_with_messages(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        sched = dist_sched()
        res = run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == 1
        # discovery probe + response + report, at minimum
        assert sched.message_counts["probe"] >= 1
        assert sched.message_counts["probe-resp"] >= 1
        assert sched.message_counts["report"] == 1
        # latency includes discovery round-trip and half-speed travel
        assert res.trace.txns[0].exec_time >= 2 * 5

    def test_probe_chases_moving_object(self):
        # txn A takes the object far away; B's probe must follow it.
        g = topologies.line(16)
        # A's schedule sends the object 0 -> 12 at half speed; B arrives
        # while it is in flight, so B's probe must wait/chase.
        specs = [TxnSpec(0, 12, (0,)), TxnSpec(40, 0, (0,))]
        wl = ManualWorkload({0: 0}, specs)
        sched = dist_sched(LineBatchScheduler)
        res = run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == 2
        assert sched.message_counts["probe"] >= 3  # at least one chase hop

    def test_zero_object_txn(self):
        g = topologies.line(8)
        wl = ManualWorkload({}, [TxnSpec(0, 3, ())])
        res = run_experiment(g, dist_sched(), wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == 1

    def test_insert_log_has_heights(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.06, horizon=30, seed=2)
        sched = dist_sched()
        run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        assert sched.insert_log
        for tid, level, height, t in sched.insert_log:
            assert 0 <= level <= sched.max_level
            assert len(height) == 2


class TestFeasibilityAcrossTopologies:
    @pytest.mark.parametrize(
        "graph",
        [
            topologies.line(12),
            topologies.grid([3, 4]),
            topologies.clique(10),
            topologies.star_graph(3, 3),
            topologies.cluster_graph(2, 4, gamma=5),
        ],
        ids=lambda g: g.name,
    )
    def test_online_workload_certified(self, graph):
        wl = OnlineWorkload.bernoulli(
            graph, num_objects=4, k=2, rate=0.05, horizon=25, seed=3
        )
        res = run_experiment(graph, dist_sched(), wl, config=SimConfig(object_speed_den=2))
        assert res.trace.num_txns == wl.num_txns  # certification is implicit


class TestLemma6:
    """Empirical check of Lemma 6 / Corollary 1: two conflicting live
    transactions never report to *different* clusters at the same
    (layer, sub-layer) height."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_same_sublayer_split(self, seed):
        g = topologies.grid([4, 4])
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.06, horizon=40, seed=seed)
        sched = dist_sched()
        res = run_experiment(g, sched, wl, config=SimConfig(object_speed_den=2))
        recs = res.trace.txns
        rep = {tid: (c, t) for tid, c, t in sched.report_log}
        tids = sorted(rep)
        for i, a in enumerate(tids):
            for b in tids[i + 1 :]:
                ra, rb = recs[a], recs[b]
                shared = (set(ra.objects) | set(ra.reads)) & (set(rb.objects) | set(rb.reads))
                if not shared:
                    continue
                ca, ta = rep[a]
                cb, tb = rep[b]
                later = max(ta, tb)
                both_live = (
                    ra.gen_time <= later < ra.exec_time
                    and rb.gen_time <= later < rb.exec_time
                )
                if both_live and ca.height == cb.height:
                    assert ca is cb, (
                        f"Lemma 6 violated: txns {a},{b} share {shared} but reported "
                        f"to different clusters at height {ca.height}"
                    )


class TestOverheadVsCentralized:
    def test_distributed_pays_overhead_but_bounded(self):
        g = topologies.line(16)
        mk = lambda: OnlineWorkload.bernoulli(
            g, num_objects=5, k=2, rate=0.04, horizon=40, seed=4
        )
        central = run_experiment(
            g, BucketScheduler(LineBatchScheduler()), mk(),
            config=SimConfig(object_speed_den=2),
        )
        distributed = run_experiment(
            g, DistributedBucketScheduler(LineBatchScheduler(), seed=0), mk(),
            config=SimConfig(object_speed_den=2),
        )
        assert distributed.metrics.messages_sent > 0
        assert central.metrics.messages_sent == 0
        # Theorem 5's poly-log penalty: generous sanity envelope.
        assert distributed.makespan <= 50 * max(1, central.makespan)
