"""Tests for timeline analytics."""

from repro.analysis import (
    hottest_nodes,
    live_count_series,
    node_utilization,
    peak_concurrency,
    run_experiment,
    transit_series,
    waiting_time_breakdown,
)
from repro.core import BucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.transactions import TxnSpec
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload


def simple_trace():
    g = topologies.line(8)
    specs = [TxnSpec(0, 2, (0,)), TxnSpec(0, 6, (0,)), TxnSpec(5, 4, (1,))]
    wl = ManualWorkload({0: 0, 1: 4}, specs)
    return run_experiment(g, GreedyScheduler(), wl).trace


class TestSeries:
    def test_live_series_starts_and_drains(self):
        trace = simple_trace()
        series = live_count_series(trace)
        assert series[0][1] >= 1
        assert series[-1][1] == 0

    def test_live_series_levels_consistent(self):
        trace = simple_trace()
        for t, level in live_count_series(trace):
            manual = sum(
                1 for r in trace.txns.values() if r.gen_time <= t < r.exec_time
            )
            assert level == manual

    def test_transit_series_bounded_by_objects(self):
        trace = simple_trace()
        for _, level in transit_series(trace):
            assert 0 <= level <= len(trace.initial_placement)
        if transit_series(trace):
            assert transit_series(trace)[-1][1] == 0

    def test_peak_concurrency(self):
        g = topologies.clique(8)
        wl = BatchWorkload.uniform(g, num_objects=8, k=1, seed=0)
        trace = run_experiment(g, GreedyScheduler(), wl).trace
        assert peak_concurrency(trace) == 8

    def test_empty_trace(self):
        from repro.sim.trace import ExecutionTrace

        empty = ExecutionTrace("t", {})
        assert live_count_series(empty) == []
        assert peak_concurrency(empty) == 0
        assert waiting_time_breakdown(empty)["scheduling_delay"] == 0.0


class TestNodeStats:
    def test_counts_match_trace(self):
        trace = simple_trace()
        stats = node_utilization(trace)
        assert sum(s.txns_executed for s in stats.values()) == trace.num_txns
        assert sum(s.objects_departed for s in stats.values()) == len(trace.legs)
        assert sum(s.objects_arrived for s in stats.values()) == len(trace.legs)

    def test_hottest_nodes_ordering(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.1, horizon=25, seed=2)
        trace = run_experiment(g, GreedyScheduler(), wl).trace
        top = hottest_nodes(trace, top=3)
        assert len(top) <= 3
        assert all(a.txns_executed >= b.txns_executed for a, b in zip(top, top[1:]))

    def test_mean_latency(self):
        trace = simple_trace()
        stats = node_utilization(trace)
        for s in stats.values():
            if s.txns_executed:
                assert s.mean_latency >= 1.0


class TestWaitingBreakdown:
    def test_greedy_has_zero_scheduling_delay(self):
        g = topologies.grid([3, 3])
        wl = OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=1)
        trace = run_experiment(g, GreedyScheduler(), wl).trace
        parts = waiting_time_breakdown(trace)
        assert parts["scheduling_delay"] == 0.0
        assert parts["execution_wait"] > 0.0

    def test_bucket_accumulates_scheduling_delay(self):
        g = topologies.line(16)
        wl = OnlineWorkload.bernoulli(g, num_objects=5, k=2, rate=0.05, horizon=40, seed=1)
        trace = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl).trace
        parts = waiting_time_breakdown(trace)
        assert parts["scheduling_delay"] > 0.0
