"""Public-API audit: every symbol the docs promise must import.

``docs/api.md`` (and ``docs/observability.md``) are the contract; this
test walks the documented module paths and asserts each named symbol
resolves.  A rename or dropped re-export fails here before it fails for
a user.  The map below mirrors the docs section by section — update both
together.
"""

import importlib

import pytest

# module path -> symbols documented as importable from it
DOCUMENTED_API = {
    "repro": [
        "Simulator", "SimConfig", "GreedyScheduler", "OnlineScheduler",
        "BucketScheduler", "DistributedBucketScheduler",
        "CoordinatedGreedyScheduler", "certify_trace", "Graph",
        "DeparturePolicy", "topologies", "workloads",
        "FaultPlan", "CrashWindow",
        "pmap", "WorkerPool", "resolve_jobs",
    ],
    "repro.parallel": ["WorkerPool", "pmap", "resolve_jobs"],
    "repro.network.topologies": [
        "clique", "line", "grid", "hypercube", "butterfly",
        "cluster_graph", "star_graph", "tree", "random_geometric",
    ],
    "repro.workloads": [
        "BatchWorkload", "OnlineWorkload", "ClosedLoopWorkload",
        "ManualWorkload", "TxnSpec",
        "WorkloadSpec", "WORKLOAD_KINDS",
        "OpenWorkload", "PoissonOpenWorkload", "OnOffBurstyWorkload",
        "DiurnalWorkload", "AdversarialOpenWorkload",
        "ObjectChooser", "UniformChooser", "ZipfChooser", "LocalityChooser",
        "hotspot_workload", "chain_workload", "grid_crossing_workload",
        "bank_workload", "vacation_workload", "inventory_workload",
        "workload_from_trace", "place_objects_uniform",
    ],
    "repro.workloads.spec": ["WorkloadSpec", "WORKLOAD_KINDS", "allowed_knobs"],
    "repro.workloads.streaming": [
        "OpenWorkload", "PoissonOpenWorkload", "OnOffBurstyWorkload",
        "DiurnalWorkload", "AdversarialOpenWorkload",
    ],
    "repro.core": [
        "OnlineScheduler", "GreedyScheduler", "BucketScheduler",
        "DistributedBucketScheduler", "CoordinatedGreedyScheduler",
        "AdaptiveScheduler", "WindowedBatchScheduler", "ReplayScheduler",
        "constraints_for", "min_valid_color",
    ],
    "repro.core.base": ["OnlineScheduler"],
    "repro.core.dependency": ["constraints_for"],
    "repro.offline": [
        "BatchScheduler", "SimStateView", "LineBatchScheduler",
        "ColoringBatchScheduler", "ClusterBatchScheduler",
        "StarBatchScheduler",
    ],
    "repro.baselines": [
        "FifoSerialScheduler", "TspTourScheduler", "OptimisticDTMSimulator",
    ],
    "repro.faults": ["FaultPlan", "CrashWindow", "FaultInjector"],
    "repro.sim": ["Simulator", "SimConfig", "certify_trace"],
    "repro.sim.config": ["SimConfig"],
    "repro.sim.events": ["EventKind", "EventQueue"],
    "repro.sim.transport": [
        "Transport", "DirectTransport", "HopTransport",
        "EgressCapacity", "LinkCapacity", "FaultyTransport",
        "build_transport",
    ],
    "repro.sim.serialize": ["save_trace", "load_trace", "trace_to_dict"],
    "repro.analysis": [
        "run_experiment", "RunResult", "summarize", "RunMetrics",
        "competitive_ratio", "makespan_ratio",
        "batch_lower_bound", "object_mst_bound", "object_load_bound",
        "replicate", "Aggregate", "render_table", "run_grid",
        "exact_optimal_makespan", "exact_ratio",
        "optimize_placement", "replace_placement",
        "throughput", "response_time_series", "saturation_point",
        "edge_betweenness", "predicted_vs_measured",
        "jain_fairness", "latency_fairness",
        "render_gantt", "run_report", "comparison_report", "obs_section",
        "live_count_series", "transit_series", "node_utilization",
        "hottest_nodes", "waiting_time_breakdown", "peak_concurrency",
        "run_stream", "StreamResult",
        "slo_summary", "SloSummary", "stability_verdict", "StabilityVerdict",
        "latency_percentiles", "backlog_series",
        "stability_frontier", "FrontierResult", "SchedulerFrontier",
    ],
    "repro.analysis.slo": [
        "SloSummary", "StabilityVerdict", "slo_summary", "stability_verdict",
        "latency_percentiles", "backlog_series",
    ],
    "repro.analysis.frontier": [
        "FrontierProbe", "FrontierResult", "SchedulerFrontier",
        "stability_frontier", "rate_knob",
    ],
    "repro.obs": [
        "Probe", "NullProbe", "NULL_PROBE", "MultiProbe",
        "CountersProbe", "JsonlProbe", "GanttProbe",
        "load_events", "iter_events", "SCHEMA_VERSION", "PHASES",
    ],
    "repro.testing": ["random_instance", "check_plan", "fuzz_scheduler"],
    "repro.directory": ["ArrowDirectory", "SpanningTree"],
}


@pytest.mark.parametrize("module", sorted(DOCUMENTED_API))
def test_documented_symbols_importable(module):
    mod = importlib.import_module(module)
    missing = [n for n in DOCUMENTED_API[module]
               if not (hasattr(mod, n)
                       or _is_submodule(module, n))]
    assert not missing, f"{module} is missing documented symbols: {missing}"


def _is_submodule(package: str, name: str) -> bool:
    try:
        importlib.import_module(f"{package}.{name}")
        return True
    except ImportError:
        return False


def test_all_exports_resolve():
    """Everything a package lists in __all__ must actually exist."""
    for module in sorted(DOCUMENTED_API):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", ()):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"
