"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, make_scheduler, parse_topology
from repro.network import topologies


class TestParseTopology:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("clique:8", 8),
            ("line:12", 12),
            ("ring:10", 10),
            ("grid:3x4", 12),
            ("torus:3x3", 9),
            ("hypercube:3", 8),
            ("butterfly:2", 12),
            ("cluster:3x4:6", 12),
            ("star:3x4", 13),
            ("tree:2x3", 15),
            ("rgg:15:0.4", 15),
        ],
    )
    def test_specs(self, spec, n):
        assert parse_topology(spec).num_nodes == n

    def test_bad_kind(self):
        with pytest.raises(SystemExit):
            parse_topology("moebius:9")

    def test_bad_params(self):
        with pytest.raises(SystemExit):
            parse_topology("grid:axb")


class TestMakeScheduler:
    def test_all_names_resolve(self):
        from repro.cli import SCHEDULER_NAMES

        g = topologies.line(8)
        for name in SCHEDULER_NAMES:
            sched, speed = make_scheduler(name, g)
            assert sched is not None
            assert speed in (1, 2)

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            make_scheduler("quantum", topologies.line(4))


class TestCommands:
    def test_run_json(self, capsys):
        rc = main([
            "run", "--topology", "clique:8", "--scheduler", "greedy",
            "--workload", "batch", "--objects", "4", "--k", "2",
            "--seed", "1", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["txns"] == 8
        assert out["makespan"] >= 1

    def test_run_table(self, capsys):
        rc = main([
            "run", "--topology", "line:10", "--scheduler", "bucket-line",
            "--workload", "hotspot",
        ])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_run_trace_export(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        rc = main([
            "run", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "4", "--rate", "0.08", "--horizon", "20",
            "--trace", str(path), "--json",
        ])
        assert rc == 0
        from repro.sim.serialize import load_trace

        assert load_trace(str(path)).num_txns > 0

    def test_run_distributed_forces_half_speed(self, capsys):
        rc = main([
            "run", "--topology", "line:8", "--scheduler", "distributed",
            "--workload", "batch", "--objects", "3", "--k", "1", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["messages"] > 0

    def test_compare(self, capsys):
        rc = main([
            "compare", "--topology", "clique:8", "--workload", "batch",
            "--objects", "4", "--schedulers", "greedy,fifo", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert [d["scheduler"] for d in out] == ["greedy", "fifo"]
        greedy, fifo = out
        assert greedy["makespan"] <= fifo["makespan"]

    def test_cover(self, capsys):
        rc = main(["cover", "--topology", "grid:3x3", "--seed", "0"])
        assert rc == 0
        assert "verified" in capsys.readouterr().out

    def test_run_readwrite(self, capsys):
        rc = main([
            "run", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "4", "--rate", "0.08", "--horizon", "20",
            "--read-fraction", "0.5", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["txns"] > 0

    def test_run_congested_reports_misses(self, capsys):
        rc = main([
            "run", "--topology", "line:10", "--workload", "hotspot",
            "--link-capacity", "1", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert "deadline_misses" in out
        assert out["txns"] == 10

    def test_run_report_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        rc = main([
            "run", "--topology", "clique:6", "--workload", "batch",
            "--objects", "3", "--k", "1", "--report", str(path), "--json",
        ])
        assert rc == 0
        text = path.read_text()
        assert text.startswith("# ")
        assert "## Metrics" in text

    def test_replay_round_trip(self, tmp_path, capsys):
        trace_file = tmp_path / "t.json"
        rc = main([
            "run", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "4", "--rate", "0.08", "--horizon", "20",
            "--seed", "2", "--trace", str(trace_file), "--json",
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "replay", "--topology", "grid:3x3", "--trace", str(trace_file), "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["archived_makespan"] == out["replayed_makespan"]
        assert out["deadline_misses"] == 0

    def test_replay_under_congestion(self, tmp_path, capsys):
        trace_file = tmp_path / "t.json"
        main([
            "run", "--topology", "line:10", "--workload", "hotspot",
            "--trace", str(trace_file), "--json",
        ])
        capsys.readouterr()
        rc = main([
            "replay", "--topology", "line:10", "--trace", str(trace_file),
            "--link-capacity", "1", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["replayed_makespan"] >= out["archived_makespan"]

    def test_replay_rejects_corrupt_archive(self, tmp_path, capsys):
        import json as _json

        trace_file = tmp_path / "t.json"
        main([
            "run", "--topology", "line:8", "--workload", "hotspot",
            "--trace", str(trace_file), "--json",
        ])
        capsys.readouterr()
        data = _json.loads(trace_file.read_text())
        data["txns"][0]["exec_time"] = 0  # forge an impossible commit
        trace_file.write_text(_json.dumps(data))
        rc = main(["replay", "--topology", "line:8", "--trace", str(trace_file)])
        assert rc == 1

    def test_suite_runs_entries(self, tmp_path, capsys):
        import json as _json

        suite = [
            {"name": "a", "topology": "clique:6", "workload": "batch", "objects": 3, "k": 1},
            {"name": "b", "topology": "line:8", "scheduler": "bucket-line",
             "workload": "hotspot"},
        ]
        path = tmp_path / "suite.json"
        path.write_text(_json.dumps(suite))
        rc = main(["suite", "--file", str(path), "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert [d["name"] for d in out] == ["a", "b"]
        assert all(d["txns"] > 0 for d in out)

    def test_suite_rejects_unknown_keys(self, tmp_path, capsys):
        import json as _json

        path = tmp_path / "suite.json"
        path.write_text(_json.dumps([{"topology": "clique:4", "typo_key": 1}]))
        assert main(["suite", "--file", str(path)]) == 2

    def test_suite_rejects_empty(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("[]")
        assert main(["suite", "--file", str(path)]) == 2

    def test_run_transport_hop(self, capsys):
        rc = main([
            "run", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "4", "--rate", "0.08", "--horizon", "20",
            "--transport", "hop", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["txns"] > 0

    def test_run_transport_direct_explicit(self, capsys):
        rc = main([
            "run", "--topology", "clique:6", "--workload", "batch",
            "--objects", "3", "--k", "1", "--transport", "direct", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["txns"] == 6

    def test_run_rejects_link_capacity_with_direct_transport(self, capsys):
        with pytest.raises(SystemExit, match="hop transport"):
            main([
                "run", "--topology", "line:10", "--workload", "hotspot",
                "--transport", "direct", "--link-capacity", "1", "--json",
            ])

    def test_run_rejects_direct_transport_with_hop_motion(self):
        with pytest.raises(SystemExit, match="hop"):
            main([
                "run", "--topology", "line:10", "--workload", "hotspot",
                "--transport", "direct", "--hop-motion", "--json",
            ])

    def test_compare_accepts_transport(self, capsys):
        rc = main([
            "compare", "--topology", "grid:3x3", "--workload", "batch",
            "--objects", "3", "--k", "1", "--schedulers", "greedy,fifo",
            "--transport", "hop", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert [d["scheduler"] for d in out] == ["greedy", "fifo"]

    def test_run_faults(self, capsys):
        rc = main([
            "run", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "5", "--rate", "0.08", "--horizon", "30", "--seed", "1",
            "--faults", "seed=7,drop=0.1,crash=1,crash-len=6",
            "--obs-counters", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["reschedules"] > 0
        assert out["faults"].get("drop", 0) > 0
        assert out["obs"]["recovery.reschedules"] == out["reschedules"]
        assert out["deadline_misses"] == 0  # recovery, not deferral

    def test_run_rejects_bad_faults_spec(self, capsys):
        rc = main([
            "run", "--topology", "clique:6", "--workload", "batch",
            "--objects", "3", "--k", "1", "--faults", "drop=1.5", "--json",
        ])
        assert rc == 2  # WorkloadError surfaces as exit code 2
        assert "drop_prob" in capsys.readouterr().err

    def test_compare_with_faults(self, capsys):
        rc = main([
            "compare", "--topology", "grid:3x3", "--workload", "bernoulli",
            "--objects", "5", "--rate", "0.08", "--horizon", "30", "--seed", "1",
            "--schedulers", "greedy,fifo",
            "--faults", "seed=7,drop=0.1,crash=1,crash-len=6", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert all(d["reschedules"] > 0 for d in out)

    def test_run_zipf_closed_loop(self, capsys):
        rc = main([
            "run", "--topology", "clique:6", "--workload", "closed-loop",
            "--objects", "5", "--rounds", "2", "--zipf", "1.2", "--json",
        ])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["txns"] == 12


class TestTopoInfo:
    def test_golden_stdout_oracle(self, capsys):
        rc = main(["topo", "info", "grid:100x100"])
        assert rc == 0
        assert capsys.readouterr().out == (
            "topology : grid(100x100)\n"
            "nodes    : 10000\n"
            "edges    : 19800\n"
            "diameter : 198\n"
            "oracle   : grid\n"
            "distance-cache estimate: 763.5 MiB (avoided by oracle)\n"
        )

    def test_golden_stdout_fallback(self, capsys):
        rc = main(["topo", "info", "butterfly:2"])
        assert rc == 0
        assert capsys.readouterr().out == (
            "topology : butterfly(d=2)\n"
            "nodes    : 12\n"
            "edges    : 16\n"
            "diameter : 4\n"
            "oracle   : none (cached Dijkstra)\n"
            "distance-cache estimate: 1.8 KiB (worst case if all rows touched)\n"
        )

    def test_every_oracle_kind_reported(self, capsys):
        kinds = {
            "clique:6": "clique", "line:6": "line", "ring:6": "ring",
            "grid:3x3": "grid", "torus:3x3": "torus", "hypercube:3": "hypercube",
            "cluster:2x3:4": "cluster", "star:2x3": "star", "tree:2x2": "tree",
        }
        for spec, kind in kinds.items():
            assert main(["topo", "info", spec]) == 0
            assert f"oracle   : {kind}\n" in capsys.readouterr().out

    def test_bad_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["topo", "info", "blorp:9"])


class TestServeCli:
    def test_serve_json_reports_service_fields(self, capsys):
        rc = main([
            "serve", "--topology", "grid:4x4", "--until", "200",
            "--lam", "2.0", "--deadline", "40", "--queue-cap", "32",
            "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["admission"] == "fifo"  # serve defaults the policy on
        assert out["goodput"] > 0
        assert 0 <= out["shed_rate"] <= 1

    def test_stream_without_admission_emits_no_service_fields(self, capsys):
        rc = main([
            "stream", "--topology", "grid:4x4", "--until", "120",
            "--lam", "0.3", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert "goodput" not in out and "admission" not in out

    def test_stream_admission_flag_enables_service(self, capsys):
        rc = main([
            "stream", "--topology", "grid:4x4", "--until", "200",
            "--lam", "2.0", "--admission", "deadline-edf",
            "--deadline", "30", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["admission"] == "deadline-edf"
        assert out["deadline_hit_rate"] <= 1

    def test_stream_latency_dist(self, capsys):
        rc = main([
            "stream", "--topology", "ring:8", "--until", "120",
            "--lam", "0.2", "--latency-dist", "empirical:0,1,2", "--json",
        ])
        assert rc == 0
        json.loads(capsys.readouterr().out)

    def test_chaos_sweep_overload_flags(self, capsys):
        rc = main([
            "chaos", "sweep", "--episodes", "4", "--lambda-mult", "2.0",
            "--deadline-frac", "0.5", "--json",
        ])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["violations"] == 0
        assert out["shed"] + out["expired"] > 0


class TestProfile:
    """Golden-stdout checks for ``repro profile``: the deterministic
    skeleton (field names, table titles, row shape) is pinned; timing
    values themselves are machine-dependent and only sanity-checked."""

    ARGS = [
        "profile", "--topology", "clique:6", "--scheduler", "greedy",
        "--workload", "batch", "--objects", "4", "--k", "2", "--seed", "0",
    ]

    def test_json_skeleton(self, capsys):
        rc = main(self.ARGS + ["--top", "3", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert list(out) == [
            "topology", "scheduler", "txns", "makespan", "seconds", "calls", "top",
        ]
        assert out["topology"] == "clique(n=6)"
        assert out["scheduler"] == "greedy"
        assert out["txns"] == 6
        assert len(out["top"]) == 3
        for entry in out["top"]:
            assert list(entry) == ["function", "ncalls", "tottime", "cumtime"]
            assert entry["ncalls"] >= 1

    def test_top_limits_rows(self, capsys):
        rc = main(self.ARGS + ["--top", "1", "--json"])
        assert rc == 0
        assert len(json.loads(capsys.readouterr().out)["top"]) == 1

    def test_cumtime_alias_matches_cumulative(self, capsys):
        rc = main(self.ARGS + ["--top", "5", "--sort", "cumulative", "--json"])
        assert rc == 0
        cumulative = [t["function"] for t in json.loads(capsys.readouterr().out)["top"]]
        rc = main(self.ARGS + ["--top", "5", "--sort", "cumtime", "--json"])
        assert rc == 0
        cumtime = [t["function"] for t in json.loads(capsys.readouterr().out)["top"]]
        assert cumtime == cumulative

    def test_table_skeleton(self, capsys):
        rc = main(self.ARGS + ["--top", "2", "--sort", "tottime"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile: clique(n=6) / greedy" in out
        assert "top 2 by tottime" in out
        for header in ("ncalls", "tottime", "cumtime", "function"):
            assert header in out
