"""Additional engine, graph, and error-path coverage."""

import pytest

from repro._types import DeparturePolicy
from repro.core import GreedyScheduler
from repro.core.base import OnlineScheduler
from repro.core.coloring import greedy_color_sequence
from repro.errors import InfeasibleScheduleError
from repro.network import Graph, topologies
from repro.sim.engine import Simulator
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload


class TestEngineExtras:
    def test_max_time_stops_early(self):
        g = topologies.line(8)
        specs = [TxnSpec(0, 1, (0,)), TxnSpec(500, 2, (0,))]
        wl = ManualWorkload({0: 1}, specs)
        sim = Simulator(g, GreedyScheduler(), wl, max_time=100)
        trace = sim.run()
        assert len(trace.txns) == 1  # second txn never generated

    def test_add_alarm_wakes_scheduler(self):
        g = topologies.line(4)
        seen = []

        class Waker(OnlineScheduler):
            def bind(self, sim):
                super().bind(sim)
                sim.add_alarm(7)

            def on_step(self, t, new_txns):
                seen.append(t)
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 1)

        wl = ManualWorkload({0: 0}, [TxnSpec(0, 0, (0,))])
        Simulator(g, Waker(), wl).run()
        assert 7 in seen

    def test_object_observer_events(self):
        g = topologies.line(8)
        events = []

        class Observing(GreedyScheduler):
            def bind(self, sim):
                super().bind(sim)
                sim.add_object_observer(lambda e, obj, t: events.append((e, obj.oid, t)))

        specs = [TxnSpec(0, 5, (0,)), TxnSpec(0, 2, (), creates=(9,))]
        wl = ManualWorkload({0: 0}, specs)
        Simulator(g, Observing(), wl).run()
        kinds = [e for e, _, _ in events]
        assert "arrive" in kinds  # object 0 reached node 5
        assert ("register", 9, 1) in events  # created object

    def test_scheduler_on_commit_hook(self):
        g = topologies.line(4)
        commits = []

        class Hooked(GreedyScheduler):
            def on_commit(self, txn, t):
                commits.append((txn.tid, t))

        wl = ManualWorkload({0: 1}, [TxnSpec(0, 1, (0,))])
        Simulator(g, Hooked(), wl).run()
        assert commits == [(0, 1)]

    def test_lazy_plus_egress_capacity(self):
        g = topologies.clique(6)
        placement = {o: 0 for o in range(4)}
        specs = [TxnSpec(0, i + 1, (i,)) for i in range(4)]
        wl = ManualWorkload(placement, specs)
        sim = Simulator(
            g, GreedyScheduler(), wl,
            departure_policy=DeparturePolicy.LAZY,
            node_egress_capacity=1, strict=False,
        )
        trace = sim.run()
        assert len(trace.txns) == 4
        departs = sorted(l.depart_time for l in trace.legs)
        assert len(set(departs)) == len(departs)  # strictly staggered

    def test_violation_message_preview_truncates(self):
        from repro.sim.trace import Violation

        err = InfeasibleScheduleError([Violation(i, 0, (0,)) for i in range(9)])
        assert "+4 more" in str(err)


class TestGraphExtras:
    def test_distance_cache_reuses_either_endpoint(self):
        g = topologies.line(12)
        g.oracle = None  # force the Dijkstra fallback path
        g.distances_from(7)  # cache source 7
        assert g.distance(2, 7) == 5  # uses the cached row via swap
        assert len(g._dist) == 1  # no second Dijkstra

    def test_oracle_graph_builds_no_dijkstra_rows(self):
        g = topologies.line(12)
        assert g.oracle is not None
        g.distances_from(7)
        assert g.distance(2, 7) == 5
        assert len(g._dist) == 0  # closed form: no SSSP row materialised

    def test_shortest_path_same_node(self):
        g = topologies.grid([3, 3])
        assert g.shortest_path(4, 4) == [4]

    def test_edges_listed_once(self):
        g = topologies.clique(5)
        edges = list(g.edges())
        assert len(edges) == 10
        assert all(u < v for u, v, _ in edges)


class TestColoringExtras:
    def test_greedy_sequence_with_beta(self):
        def neigh(node, colors):
            return [(c, 3) for c in colors.values()]

        colors = greedy_color_sequence(["a", "b", "c"], neigh, beta=3)
        vals = sorted(colors.values())
        assert all(v % 3 == 0 for v in vals)
        assert len(set(vals)) == 3

    def test_trace_meta_roundtrip(self):
        from repro.sim.serialize import trace_from_dict, trace_to_dict
        from repro.sim.trace import ExecutionTrace

        trace = ExecutionTrace("t", {0: 1})
        trace.meta["note"] = "hello"
        clone = trace_from_dict(trace_to_dict(trace))
        assert clone.meta["note"] == "hello"
