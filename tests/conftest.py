"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.network import topologies
from repro.analysis.experiments import run_experiment


@pytest.fixture
def clique8():
    return topologies.clique(8)


@pytest.fixture
def line16():
    return topologies.line(16)


@pytest.fixture
def grid4x4():
    return topologies.grid([4, 4])


@pytest.fixture
def cube3():
    return topologies.hypercube(3)


def run_certified(graph, scheduler, workload, **kw):
    """Run and certify; the certifier raises on any infeasibility."""
    return run_experiment(graph, scheduler, workload, certify=True, **kw)
