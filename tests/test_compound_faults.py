"""Satellite regressions: fault-spec parsing, backoff caps, and compound
fault interactions (crash+drop on one leg, partition during recovery).

These pin the corners that single-fault tests miss: two fault classes
hitting the same object leg at the same step, a partition isolating the
node recovery is about to re-request from, exponential backoff saturing
at the 2**10 shift cap, and the ``--faults`` mini-language rejecting
duplicate/unknown keys by name.
"""

import pytest

from repro.core import GreedyScheduler
from repro.errors import InfeasibleScheduleError, WorkloadError
from repro.faults import (
    BACKOFF_SHIFT_CAP,
    CrashWindow,
    FaultInjector,
    FaultPlan,
    PartitionWindow,
)
from repro.network import topologies
from repro.sim import SimConfig, Simulator, certify_trace
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload


def drop_first_leg(monkeypatch):
    """Force exactly the first planned object leg to be dropped."""
    orig = FaultInjector.should_drop
    state = {"armed": True}

    def fake(self, oid, t):
        if state["armed"]:
            state["armed"] = False
            return True
        return orig(self, oid, t)

    monkeypatch.setattr(FaultInjector, "should_drop", fake)


def one_txn_run(graph, plan, *, obj_node, home, config=None):
    wl = ManualWorkload({0: obj_node}, [TxnSpec(0, home, (0,))])
    cfg = config if config is not None else SimConfig(faults=plan)
    trace = Simulator(graph, GreedyScheduler(), wl, config=cfg).run()
    return trace


def fault_kinds(trace):
    return {f.kind for f in trace.faults}


# ----------------------------------------------------------------------
# --faults mini-language (satellite: parser hardening)
# ----------------------------------------------------------------------

class TestFaultsParser:
    def test_duplicate_key_rejected_by_name(self):
        with pytest.raises(WorkloadError, match=r"duplicate --faults key 'seed'"):
            FaultPlan.parse("seed=1,seed=2", num_nodes=8, horizon=20)

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(WorkloadError, match=r"'sed=1'"):
            FaultPlan.parse("sed=1", num_nodes=8, horizon=20)

    def test_bad_value_rejected_by_name(self):
        with pytest.raises(WorkloadError, match=r"'drop'.*'oops'"):
            FaultPlan.parse("drop=oops", num_nodes=8, horizon=20)

    def test_partition_windows_accepted(self):
        g = topologies.ring(8)
        edges = [(u, v) for u, v, _ in g.edges()]
        plan = FaultPlan.parse(
            "seed=1,partition=2,partition-len=5",
            num_nodes=8,
            horizon=20,
            edges=edges,
        )
        assert len(plan.partitions) == 2
        assert all(p.duration == 5 for p in plan.partitions)
        plan.validate_against(g)  # drawn cuts name real edges

    def test_partition_requires_edges(self):
        with pytest.raises(WorkloadError, match="edges"):
            FaultPlan.parse("partition=1", num_nodes=8, horizon=20)

    def test_backoff_cap_key(self):
        plan = FaultPlan.parse("seed=1,backoff-cap=16", num_nodes=8, horizon=20)
        assert plan.backoff_cap == 16


# ----------------------------------------------------------------------
# backoff saturation (satellite: 2**10 shift cap)
# ----------------------------------------------------------------------

class TestBackoffCap:
    def test_shift_saturates_at_cap(self):
        inj = FaultInjector(FaultPlan(seed=0, backoff_base=1, backoff_cap=10**9))
        assert inj.backoff_for(1) == 1
        assert inj.backoff_for(BACKOFF_SHIFT_CAP + 1) == 2**BACKOFF_SHIFT_CAP
        # A pathological reschedule count must not blow the shift up —
        # backoff_for(10**6) without the cap would be a ~300 kB integer.
        assert inj.backoff_for(10**6) == 2**BACKOFF_SHIFT_CAP

    def test_plan_cap_still_binds_first(self):
        inj = FaultInjector(FaultPlan(seed=0))  # default backoff_cap=64
        assert inj.backoff_for(100) == 64

    def test_tiny_reschedule_budget_fails_fast(self, monkeypatch):
        # Every leg drops: recovery burns its budget and must raise
        # rather than loop (regression for the budget + shift cap).
        monkeypatch.setattr(FaultInjector, "should_drop", lambda self, oid, t: True)
        g = topologies.line(4)
        plan = FaultPlan(seed=0, max_reschedules=2)
        with pytest.raises(InfeasibleScheduleError):
            one_txn_run(g, plan, obj_node=3, home=0)

    def test_backoff_floor_clamped_to_max_time(self, monkeypatch):
        # One drop with a huge backoff base: the retry floor (t + 50)
        # lands past max_time and without the clamp the transaction
        # would silently never run again.
        drop_first_leg(monkeypatch)
        g = topologies.line(4)
        plan = FaultPlan(seed=0, backoff_base=50, backoff_cap=50)
        cfg = SimConfig(faults=plan, max_time=12)
        trace = one_txn_run(g, plan, obj_node=3, home=0, config=cfg)
        assert trace.num_txns == 1
        rec = trace.txns[0]
        assert rec.exec_time <= 12
        assert certify_trace(g, trace) == []


# ----------------------------------------------------------------------
# compound faults (satellite: same leg, same step; partition vs recovery)
# ----------------------------------------------------------------------

class TestCompoundFaults:
    def test_crash_and_drop_same_leg_same_step(self, monkeypatch):
        # The home node is down from the start, so the object's first
        # leg is crash-deferred to the restart step — and at that very
        # step the leg is dropped.  Two fault classes hit the same leg
        # at the same step; recovery must untangle both (re-request the
        # lost object after the restart) and still commit.
        drop_first_leg(monkeypatch)
        g = topologies.line(6)
        plan = FaultPlan(seed=0, crashes=(CrashWindow(0, 0, 8),))
        trace = one_txn_run(g, plan, obj_node=5, home=0)
        assert trace.num_txns == 1
        kinds = fault_kinds(trace)
        assert {"drop", "rerequest", "crash", "restart"} <= kinds
        drop = next(f for f in trace.faults if f.kind == "drop")
        assert drop.time == 8  # dropped at the restart step itself
        rerequest = next(f for f in trace.faults if f.kind == "rerequest")
        assert rerequest.node == 5  # the drop left node 5 as the holder
        assert trace.txns[0].exec_time >= 8 + g.distance(5, 0)
        assert certify_trace(g, trace) == []

    def test_partition_isolates_holder_during_rerequest(self, monkeypatch):
        # The first leg is dropped, so node 4 is the object's last
        # confirmed holder.  By the time recovery re-requests it, a
        # partition has isolated node 4 entirely: the re-requested leg
        # must block until the heal, then deliver, then commit.
        drop_first_leg(monkeypatch)
        g = topologies.ring(8)
        plan = FaultPlan(
            seed=0, partitions=(PartitionWindow(((3, 4), (4, 5)), 1, 14),)
        )
        trace = one_txn_run(g, plan, obj_node=4, home=0)
        assert trace.num_txns == 1
        kinds = fault_kinds(trace)
        assert {"drop", "rerequest", "partition", "partition-block", "heal"} <= kinds
        rerequest = next(f for f in trace.faults if f.kind == "rerequest")
        assert rerequest.node == 4  # re-requested from the last holder
        block = next(f for f in trace.faults if f.kind == "partition-block")
        assert block.time >= rerequest.time  # blocked while re-requesting
        assert trace.txns[0].exec_time >= 14  # only after the heal
        assert certify_trace(g, trace) == []
