"""End-to-end property tests: random instances, invariant certification.

The central invariant of the whole library: *every* scheduler, on *any*
workload, produces a schedule the independent certifier accepts — objects
physically reach every transaction by its execution time, per-object
serialization respects travel times, and committed execution times are
never revised.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import run_experiment
from repro.baselines import FifoSerialScheduler, TspTourScheduler
from repro.core import BucketScheduler, DistributedBucketScheduler, GreedyScheduler
from repro.network import topologies
from repro.offline import ColoringBatchScheduler
from repro.sim.transactions import TxnSpec
from repro.workloads import ManualWorkload
from repro.sim import SimConfig

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_instances(draw):
    """A random small graph + object placement + online arrival sequence."""
    kind = draw(st.sampled_from(["line", "clique", "grid", "star", "ring"]))
    if kind == "line":
        g = topologies.line(draw(st.integers(3, 12)))
    elif kind == "clique":
        g = topologies.clique(draw(st.integers(3, 10)))
    elif kind == "grid":
        g = topologies.grid([draw(st.integers(2, 4)), draw(st.integers(2, 4))])
    elif kind == "star":
        g = topologies.star_graph(draw(st.integers(2, 4)), draw(st.integers(1, 3)))
    else:
        g = topologies.ring(draw(st.integers(3, 10)))
    n = g.num_nodes
    num_objects = draw(st.integers(1, 5))
    placement = {
        o: draw(st.integers(0, n - 1)) for o in range(num_objects)
    }
    num_txns = draw(st.integers(1, 12))
    specs = []
    t = 0
    for _ in range(num_txns):
        t += draw(st.integers(0, 6))
        home = draw(st.integers(0, n - 1))
        k = draw(st.integers(1, num_objects))
        objs = draw(
            st.lists(
                st.integers(0, num_objects - 1), min_size=k, max_size=k, unique=True
            )
        )
        specs.append(TxnSpec(t, home, tuple(objs)))
    return g, ManualWorkload(placement, specs)


class TestFeasibilityInvariant:
    @given(random_instances())
    @SETTINGS
    def test_greedy_always_feasible(self, inst):
        g, wl = inst
        res = run_experiment(g, GreedyScheduler(), wl)  # certifier raises on failure
        assert res.trace.num_txns == wl.num_txns

    @given(random_instances())
    @SETTINGS
    def test_bucket_always_feasible(self, inst):
        g, wl = inst
        res = run_experiment(g, BucketScheduler(ColoringBatchScheduler()), wl)
        assert res.trace.num_txns == wl.num_txns

    @given(random_instances())
    @SETTINGS
    def test_distributed_always_feasible(self, inst):
        g, wl = inst
        res = run_experiment(
            g,
            DistributedBucketScheduler(ColoringBatchScheduler(), seed=0),
            wl,
            config=SimConfig(object_speed_den=2),
        )
        assert res.trace.num_txns == wl.num_txns

    @given(random_instances())
    @SETTINGS
    def test_baselines_always_feasible(self, inst):
        g, wl = inst
        r1 = run_experiment(g, FifoSerialScheduler(), wl)
        r2 = run_experiment(g, TspTourScheduler(), wl)
        assert r1.trace.num_txns == r2.trace.num_txns == wl.num_txns


class TestScheduleSemantics:
    @given(random_instances())
    @SETTINGS
    def test_exec_strictly_after_generation(self, inst):
        g, wl = inst
        res = run_experiment(g, GreedyScheduler(), wl)
        for rec in res.trace.txns.values():
            assert rec.exec_time > rec.gen_time

    @given(random_instances())
    @SETTINGS
    def test_greedy_schedules_at_generation_step(self, inst):
        g, wl = inst
        res = run_experiment(g, GreedyScheduler(), wl)
        for rec in res.trace.txns.values():
            assert rec.schedule_time == rec.gen_time

    @given(random_instances())
    @SETTINGS
    def test_object_exclusivity(self, inst):
        """Per object, acquisition order matches execution order and each
        handover leaves enough travel time (certifier rule re-checked here
        against the engine's committed times)."""
        g, wl = inst
        res = run_experiment(g, GreedyScheduler(), wl)
        by_obj = {}
        for rec in res.trace.txns.values():
            for oid in rec.objects:
                by_obj.setdefault(oid, []).append(rec)
        for oid, recs in by_obj.items():
            recs.sort(key=lambda r: (r.exec_time, r.tid))
            for a, b in zip(recs, recs[1:]):
                assert b.exec_time - a.exec_time >= g.distance(a.home, b.home)
