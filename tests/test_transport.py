"""Transport layer tests (``repro.sim.transport``).

Pillars:

* **Byte-identity** — ``DirectTransport`` (explicitly selected) matches
  the default-config goldens; the hop-motion and link-capacity goldens
  pin the congestion transports against the pre-refactor engine.
* **Legacy mapping** — ``hop_motion=True`` and ``transport="hop"`` (and a
  bare ``HopTransport()`` instance) are the same simulator.
* **Composition** — capacity knobs wrap the selected base transport in
  decorators, validated against bad combinations.
"""

import json
import os

import pytest

from repro.core import BucketScheduler, GreedyScheduler
from repro.errors import WorkloadError
from repro.network import topologies
from repro.offline import ColoringBatchScheduler, LineBatchScheduler
from repro.sim import SimConfig, Simulator, certify_trace
from repro.sim.serialize import trace_to_dict
from repro.sim.transport import (
    DirectTransport,
    EgressCapacity,
    HopTransport,
    LinkCapacity,
    Transport,
    build_transport,
)
from repro.workloads import ClosedLoopWorkload, OnlineWorkload, hotspot_workload

DATA = os.path.join(os.path.dirname(__file__), "data")


def _dumps(trace):
    return json.dumps(trace_to_dict(trace), sort_keys=True, indent=0)


def _golden(name):
    with open(os.path.join(DATA, name)) as fh:
        return fh.read()


def _default_cases():
    """The pre-transport goldens, run with transport explicitly "direct"."""
    return {
        "golden_greedy_clique16.json": (
            lambda: topologies.clique(16),
            lambda: GreedyScheduler(uniform_beta=1),
            lambda g: ClosedLoopWorkload(g, num_objects=8, k=2, rounds=3, seed=0),
        ),
        "golden_bucket_grid5x5.json": (
            lambda: topologies.grid([5, 5]),
            lambda: BucketScheduler(ColoringBatchScheduler()),
            lambda g: OnlineWorkload.bernoulli(g, 8, 2, rate=0.05, horizon=80, seed=0),
        ),
        "golden_bucket_line32.json": (
            lambda: topologies.line(32),
            lambda: BucketScheduler(LineBatchScheduler()),
            lambda g: OnlineWorkload.bernoulli(g, 8, 2, rate=0.05, horizon=80, seed=0),
        ),
    }


def _hop_sim(transport_cfg):
    g = topologies.grid([4, 4])
    wl = OnlineWorkload.bernoulli(g, num_objects=6, k=2, rate=0.06, horizon=40, seed=5)
    return Simulator(g, GreedyScheduler(), wl, config=transport_cfg), g


@pytest.mark.parametrize("golden", sorted(_default_cases()))
def test_direct_transport_byte_identical_to_goldens(golden):
    """transport="direct" is the paper default — goldens must not drift."""
    graph_f, sched_f, wl_f = _default_cases()[golden]
    g = graph_f()
    sim = Simulator(g, sched_f(), wl_f(g), config=SimConfig(transport="direct"))
    trace = sim.run()
    assert _dumps(trace) == _golden(golden), f"trace drifted from {golden}"
    certify_trace(g, trace)


def test_hop_transport_byte_identical_to_golden():
    sim, g = _hop_sim(SimConfig(transport="hop"))
    trace = sim.run()
    assert _dumps(trace) == _golden("golden_hop_grid4x4.json")
    certify_trace(g, trace)
    # every leg is a single edge
    assert all(leg.dst in g.neighbors(leg.src) for leg in trace.legs)


def test_link_capacity_byte_identical_to_golden():
    g = topologies.line(12)
    wl = hotspot_workload(g, num_cold_objects=3, k_cold=1, seed=0)
    cfg = SimConfig(transport="hop", link_capacity=1, strict=False)
    trace = Simulator(g, GreedyScheduler(), wl, config=cfg).run()
    assert _dumps(trace) == _golden("golden_linkcap_line12.json")


def test_legacy_hop_motion_equals_transport_string():
    a, _ = _hop_sim(SimConfig(hop_motion=True))
    b, _ = _hop_sim(SimConfig(transport="hop"))
    assert _dumps(a.run()) == _dumps(b.run())


def test_transport_instance_equals_string():
    a, _ = _hop_sim(SimConfig(transport=HopTransport()))
    b, _ = _hop_sim(SimConfig(transport="hop"))
    assert _dumps(a.run()) == _dumps(b.run())


def test_transport_kwarg_on_simulator():
    g = topologies.line(4)
    sim = Simulator(g, GreedyScheduler(), transport="hop")
    assert sim.hop_motion is True
    assert sim.config.transport_kind == "hop"
    assert isinstance(sim.transport, HopTransport)


class TestBuildAndCompose:
    def test_default_is_direct(self):
        t = build_transport(SimConfig())
        assert isinstance(t, DirectTransport) and t.kind == "direct"

    def test_legacy_flag_selects_hop(self):
        t = build_transport(SimConfig(hop_motion=True))
        assert isinstance(t, HopTransport) and t.kind == "hop"

    def test_capacity_decorators_wrap_outermost_egress(self):
        cfg = SimConfig(transport="hop", link_capacity=2, node_egress_capacity=1)
        t = build_transport(cfg)
        assert isinstance(t, EgressCapacity)
        assert isinstance(t.inner, LinkCapacity)
        assert isinstance(t.inner.inner, HopTransport)
        assert t.kind == "hop"  # decorators report the base granularity

    def test_custom_instance_used_as_given(self):
        class Teleport(Transport):
            kind = "direct"

            def plan_leg(self, obj, target, t):
                return target, t + 1

        inst = Teleport()
        assert build_transport(SimConfig(transport=inst)) is inst

    def test_base_transport_plan_leg_abstract(self):
        with pytest.raises(NotImplementedError):
            Transport().plan_leg(None, 0, 0)

    def test_capacity_decorator_order_is_immaterial(self):
        """EgressCapacity(LinkCapacity(hop)) and LinkCapacity(
        EgressCapacity(hop)) produce the same trace on the line-12
        hotspot — a slot consumed in one layer while the other blocks
        must not change the schedule, whichever layer is outermost."""
        def run(transport):
            g = topologies.line(12)
            wl = hotspot_workload(g, num_cold_objects=3, k_cold=1, seed=0)
            cfg = SimConfig(transport=transport, strict=False)
            trace = Simulator(g, GreedyScheduler(), wl, config=cfg).run()
            return g, trace

        _, a = run(EgressCapacity(LinkCapacity(HopTransport(), 1), 1))
        _, b = run(LinkCapacity(EgressCapacity(HopTransport(), 1), 1))
        assert _dumps(a) == _dumps(b)
        assert a.legs  # the hotspot actually moves objects


class TestValidation:
    def test_unknown_transport_string(self):
        with pytest.raises(WorkloadError):
            SimConfig(transport="teleport")

    def test_link_capacity_requires_hop(self):
        with pytest.raises(WorkloadError):
            SimConfig(link_capacity=1)
        with pytest.raises(WorkloadError):
            SimConfig(transport="direct", link_capacity=1)

    def test_direct_conflicts_with_hop_motion(self):
        with pytest.raises(WorkloadError):
            SimConfig(transport="direct", hop_motion=True)

    def test_capacities_must_be_positive(self):
        with pytest.raises(WorkloadError):
            SimConfig(node_egress_capacity=0)
        with pytest.raises(WorkloadError):
            SimConfig(transport="hop", link_capacity=0)

    def test_hop_string_with_legacy_flag_is_consistent(self):
        cfg = SimConfig(transport="hop", hop_motion=True)
        assert cfg.transport_kind == "hop"
