"""Tests for the optimistic (abort/retry) DTM baseline."""

import pytest

from repro.analysis import run_experiment
from repro.baselines import OptimisticDTMSimulator
from repro.core import GreedyScheduler
from repro.errors import SchedulingError
from repro.network import topologies
from repro.sim.transactions import TxnSpec
from repro.sim.validate import certify_trace
from repro.workloads import BatchWorkload, ManualWorkload, OnlineWorkload, hotspot_workload


class TestBasics:
    def test_single_txn(self):
        g = topologies.line(8)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        trace = OptimisticDTMSimulator(g, wl).run()
        assert trace.txns[0].exec_time == 5
        assert trace.meta["aborts"] == 0
        certify_trace(g, trace)

    def test_uncontended_parallel(self):
        g = topologies.clique(6)
        specs = [TxnSpec(0, i, (i,)) for i in range(4)]
        wl = ManualWorkload({i: (i + 1) % 6 for i in range(4)}, specs)
        trace = OptimisticDTMSimulator(g, wl).run()
        assert all(r.exec_time == 1 for r in trace.txns.values())

    def test_fcfs_on_hot_object(self):
        g = topologies.clique(6)
        specs = [TxnSpec(0, i, (0,)) for i in range(1, 5)]
        wl = ManualWorkload({0: 0}, specs)
        trace = OptimisticDTMSimulator(g, wl).run()
        assert len(trace.txns) == 4
        certify_trace(g, trace)

    def test_zero_object_txn(self):
        g = topologies.line(4)
        wl = ManualWorkload({}, [TxnSpec(3, 2, ())])
        trace = OptimisticDTMSimulator(g, wl).run()
        assert trace.txns[0].exec_time >= 3

    def test_reads_rejected(self):
        g = topologies.line(4)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 2, (), reads=(0,))])
        with pytest.raises(SchedulingError):
            OptimisticDTMSimulator(g, wl)


class TestConflictResolution:
    def test_deadlock_broken_by_abort(self):
        """A wants (0,1), B wants (1,0): classic hold-and-wait; aborts must
        resolve it and both commit eventually."""
        g = topologies.line(10)
        # objects placed so each txn instantly gets its near object
        placement = {0: 1, 1: 8}
        specs = [TxnSpec(0, 1, (0, 1)), TxnSpec(0, 8, (0, 1))]
        wl = ManualWorkload(placement, specs)
        trace = OptimisticDTMSimulator(g, wl, hold_timeout=10, seed=5).run()
        assert len(trace.txns) == 2
        certify_trace(g, trace)

    def test_determinism(self):
        g = topologies.grid([3, 3])
        mk = lambda: OnlineWorkload.bernoulli(g, num_objects=4, k=2, rate=0.08, horizon=25, seed=2)
        a = OptimisticDTMSimulator(g, mk(), seed=9).run()
        b = OptimisticDTMSimulator(g, mk(), seed=9).run()
        assert {t: r.exec_time for t, r in a.txns.items()} == {
            t: r.exec_time for t, r in b.txns.items()
        }

    def test_livelock_guard(self):
        g = topologies.line(6)
        wl = ManualWorkload({0: 0}, [TxnSpec(0, 5, (0,))])
        with pytest.raises(SchedulingError, match="livelock"):
            OptimisticDTMSimulator(g, wl, max_steps=2).run()


class TestVsScheduled:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scheduled_wins_under_contention(self, seed):
        """The paper's motivation, measured: conflict-free scheduling beats
        optimistic execution when transactions collide."""
        g = topologies.clique(12)
        mk = lambda: BatchWorkload.uniform(g, num_objects=4, k=2, seed=seed)
        optimistic = OptimisticDTMSimulator(g, mk(), seed=1).run()
        scheduled = run_experiment(g, GreedyScheduler(), mk())
        assert scheduled.makespan <= optimistic.makespan()

    def test_trace_certifies_under_heavy_contention(self):
        g = topologies.line(16)
        trace = OptimisticDTMSimulator(g, hotspot_workload(g, seed=3), seed=4).run()
        assert certify_trace(g, trace) == []
        assert len(trace.txns) == 16
