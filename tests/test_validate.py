"""Unit tests for the independent trace certifier."""

import pytest

from repro.errors import InfeasibleScheduleError
from repro.network import topologies
from repro.sim.trace import ExecutionTrace, ObjectLeg, TxnRecord, Violation
from repro.sim.validate import certify_trace


def make_trace(placement, txns, legs, speed=1):
    trace = ExecutionTrace("test", dict(placement), object_speed_den=speed)
    for rec in txns:
        trace.txns[rec.tid] = rec
    trace.legs.extend(legs)
    return trace


class TestCleanTraces:
    def test_empty_trace(self):
        g = topologies.line(4)
        assert certify_trace(g, make_trace({}, [], [])) == []

    def test_stationary_object(self):
        g = topologies.line(4)
        trace = make_trace(
            {0: 2}, [TxnRecord(0, 2, (0,), 0, 0, 1)], []
        )
        assert certify_trace(g, trace) == []

    def test_moving_object(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 5, (0,), 0, 0, 5)],
            [ObjectLeg(0, 0, 0, 5, 5)],
        )
        assert certify_trace(g, trace) == []

    def test_chain(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 2, (0,), 0, 0, 2), TxnRecord(1, 6, (0,), 0, 0, 6)],
            [ObjectLeg(0, 0, 0, 2, 2), ObjectLeg(0, 2, 2, 6, 6)],
        )
        assert certify_trace(g, trace) == []


class TestDetection:
    def test_wrong_leg_speed(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 5, (0,), 0, 0, 3)],
            [ObjectLeg(0, 0, 0, 5, 3)],  # 3 steps for distance 5
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "leg-speed" for i in issues)

    def test_teleporting_object(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 5, (0,), 0, 0, 10)],
            [ObjectLeg(0, 3, 2, 5, 6)],  # departs from node 2, was at 0
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "leg-gap" for i in issues)

    def test_overlapping_legs(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 5, (0,), 0, 0, 20)],
            [ObjectLeg(0, 0, 0, 4, 4), ObjectLeg(0, 2, 4, 5, 3)],
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert issues  # both overlap and speed problems

    def test_absent_object(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 5, (0,), 0, 0, 2)],  # executed before arrival
            [ObjectLeg(0, 0, 0, 5, 5)],
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "absent-object" for i in issues)

    def test_too_fast_serialization(self):
        g = topologies.line(8)
        # both executed with the object "present" per forged legs but the
        # schedule-level gap is impossible
        trace = make_trace(
            {0: 0},
            [TxnRecord(0, 0, (0,), 0, 0, 1), TxnRecord(1, 7, (0,), 0, 0, 2)],
            [ObjectLeg(0, 1, 0, 7, 8)],
        )
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind in ("too-fast", "absent-object") for i in issues)

    def test_engine_violations_propagate(self):
        g = topologies.line(4)
        trace = make_trace({0: 0}, [], [])
        trace.violations.append(Violation(0, 5, (0,)))
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "engine-violation" for i in issues)

    def test_raise_on_failure(self):
        g = topologies.line(8)
        trace = make_trace(
            {0: 0}, [TxnRecord(0, 5, (0,), 0, 0, 2)], [ObjectLeg(0, 0, 0, 5, 5)]
        )
        with pytest.raises(InfeasibleScheduleError):
            certify_trace(g, trace)

    def test_unknown_object(self):
        g = topologies.line(8)
        trace = make_trace({}, [TxnRecord(0, 5, (9,), 0, 0, 2)], [])
        issues = certify_trace(g, trace, raise_on_failure=False)
        assert any(i.kind == "unknown-object" for i in issues)


class TestOneTxnPerNode:
    def test_overlap_detected(self):
        g = topologies.line(4)
        trace = make_trace(
            {0: 1},
            [
                TxnRecord(0, 1, (0,), 0, 0, 10),
                TxnRecord(1, 1, (0,), 5, 5, 12),  # generated while tid 0 live
            ],
            [],
        )
        issues = certify_trace(g, trace, one_txn_per_node=True, raise_on_failure=False)
        assert any(i.kind == "node-overlap" for i in issues)

    def test_sequential_ok(self):
        g = topologies.line(4)
        trace = make_trace(
            {0: 1},
            [
                TxnRecord(0, 1, (0,), 0, 0, 4),
                TxnRecord(1, 1, (0,), 5, 5, 6),
            ],
            [],
        )
        assert certify_trace(g, trace, one_txn_per_node=True) == []
