"""Tests for networkx interop and the public testing helpers."""

import networkx as nx
import pytest

from repro.core import GreedyScheduler
from repro.errors import GraphError, InfeasibleScheduleError
from repro.network import from_networkx, to_networkx, topologies
from repro.testing import check_plan, fuzz_scheduler, random_instance
from repro.sim.transactions import Transaction


class TestNetworkxInterop:
    def test_round_trip_preserves_metric(self):
        g = topologies.cluster_graph(2, 3, gamma=4)
        nxg = to_networkx(g)
        g2, mapping = from_networkx(nxg)
        assert g2.num_nodes == g.num_nodes
        for u in g.nodes():
            for v in g.nodes():
                assert g.distance(u, v) == g2.distance(mapping[u], mapping[v])

    def test_from_networkx_labels(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b", weight=3)
        nxg.add_edge("b", "c")
        g, mapping = from_networkx(nxg)
        assert set(mapping) == {"a", "b", "c"}
        assert g.distance(mapping["a"], mapping["b"]) == 3
        assert g.distance(mapping["b"], mapping["c"]) == 1  # default weight

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph())

    def test_networkx_generator_usable(self):
        nxg = nx.petersen_graph()
        g, _ = from_networkx(nxg)
        assert g.num_nodes == 10
        assert g.diameter() == 2

    def test_to_networkx_attributes(self):
        g = topologies.line(4, weight=2)
        nxg = to_networkx(g)
        assert nxg[0][1]["weight"] == 2
        assert nxg.number_of_edges() == 3


class TestRandomInstance:
    def test_deterministic(self):
        g1, wl1 = random_instance(7)
        g2, wl2 = random_instance(7)
        assert g1.name == g2.name
        assert wl1.arrivals() == wl2.arrivals()

    def test_reads_generated(self):
        found = False
        for s in range(10):
            _, wl = random_instance(s, read_fraction=0.9)
            if any(spec.reads for spec in wl.arrivals()):
                found = True
                break
        assert found

    def test_objects_exist(self):
        for s in range(5):
            g, wl = random_instance(s)
            placement = wl.initial_objects()
            for spec in wl.arrivals():
                for o in (*spec.objects, *spec.reads):
                    assert o in placement


class TestCheckPlan:
    def test_valid_plan_clean(self):
        g = topologies.line(8)
        txns = [Transaction(0, 2, frozenset({0}), 0), Transaction(1, 6, frozenset({0}), 0)]
        plan = {0: 2, 1: 7}
        assert check_plan(g, {0: 0}, txns, plan) == []

    def test_too_tight_flagged(self):
        g = topologies.line(8)
        txns = [Transaction(0, 2, frozenset({0}), 0), Transaction(1, 6, frozenset({0}), 0)]
        plan = {0: 2, 1: 4}  # 2 steps for distance 4
        problems = check_plan(g, {0: 0}, txns, plan)
        assert problems and "txn 1" in problems[0]


class TestFuzzScheduler:
    def test_greedy_passes_fuzz(self):
        results = fuzz_scheduler(GreedyScheduler, trials=15, seed=100)
        assert len(results) == 15
        assert all(r.metrics.num_txns >= 1 for r in results)

    def test_broken_scheduler_caught(self):
        from repro.core.base import OnlineScheduler

        class TooEager(OnlineScheduler):
            """Schedules everything one step out: infeasible whenever an
            object is remote."""

            def on_step(self, t, new_txns):
                for txn in new_txns:
                    self.sim.commit_schedule(txn, t + 1)

        with pytest.raises(InfeasibleScheduleError):
            fuzz_scheduler(TooEager, trials=30, seed=0)

    def test_fuzz_with_reads(self):
        results = fuzz_scheduler(
            GreedyScheduler, trials=10, seed=50, read_fraction=0.5
        )
        assert len(results) == 10
