"""Differential suite for the incremental (delta-driven) scheduling path.

The engine can feed a scheduler either the legacy full per-step call
(``on_step(t, new_txns)``) or the incremental delta feed
(``on_deltas(t, StepDeltas)`` backed by the shared pending index — see
docs/performance.md).  The two paths must be *observationally identical*:
for every bundled scheduler, every workload regime, and several seeds,
the serialized execution traces must match byte for byte.

The fallback path is forced engine-side (``sim._sched_wants_deltas =
False`` plus ``sim.deps.collect = False`` right after construction) so
the very same scheduler object model is exercised — including schedulers
whose ``wants_deltas`` is a read-only property (adaptive).  Schedulers
that never opted in (e.g. tsp) run the same code twice; the assertion is
then trivially true and guards against accidental future divergence.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import SCHEDULER_NAMES, make_scheduler
from repro.faults import CrashWindow, FaultPlan, PartitionWindow
from repro.network import topologies
from repro.service.config import ServiceConfig
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.sim.serialize import trace_to_dict
from repro.workloads.arrivals import OnlineWorkload
from repro.workloads.streaming import PoissonOpenWorkload

SEEDS = (0, 1, 2)

#: 2x3 grid: small enough for 300+ runs, non-trivial diameter, and the
#: cluster/star batch planners take their (feasible) fallback orders.
def _graph():
    return topologies.grid([2, 3])


def _run(name: str, *, seed: int, mode: str, incremental: bool) -> dict:
    g = _graph()
    sched, speed = make_scheduler(name, g)
    config = None
    run_kwargs = {}
    if mode == "closed":
        wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.2, horizon=10, seed=seed)
    elif mode == "streaming":
        wl = PoissonOpenWorkload(g, 0.6, num_objects=6, k=2, seed=seed)
        run_kwargs["until"] = 24
    elif mode == "faulty":
        wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.2, horizon=10, seed=seed)
        edge = next(iter(g.edges()))
        config = SimConfig(
            faults=FaultPlan(
                seed=seed,
                drop_prob=0.15,
                crashes=(CrashWindow(1, 3, 8),),
                partitions=(PartitionWindow(((edge[0], edge[1]),), 5, 10),),
            )
        )
    elif mode == "service":
        wl = PoissonOpenWorkload(g, 0.8, num_objects=6, k=2, seed=seed)
        config = SimConfig(
            service=ServiceConfig(policy="deadline-edf", deadline=20, queue_cap=8)
        )
        run_kwargs["until"] = 24
    else:  # pragma: no cover - parametrization guard
        raise AssertionError(mode)

    sim = Simulator(g, sched, wl, config=config, object_speed_den=speed)
    if not incremental:
        # Force the legacy full-scan dispatch without touching the
        # scheduler: the engine resolves the protocol choice once, here.
        sim._sched_wants_deltas = False
        sim.deps.collect = False
    trace = sim.run(**run_kwargs)
    return trace_to_dict(trace)


def _assert_identical(name: str, *, seed: int, mode: str) -> None:
    inc = _run(name, seed=seed, mode=mode, incremental=True)
    full = _run(name, seed=seed, mode=mode, incremental=False)
    # Byte-identical serialized form, not merely equal structures.
    assert json.dumps(inc, sort_keys=True) == json.dumps(full, sort_keys=True), (
        f"incremental vs full-scan trace divergence: "
        f"scheduler={name} mode={mode} seed={seed}"
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_closed_runs_identical(name, seed):
    _assert_identical(name, seed=seed, mode="closed")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_streaming_runs_identical(name, seed):
    _assert_identical(name, seed=seed, mode="streaming")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_faulty_runs_identical(name, seed):
    _assert_identical(name, seed=seed, mode="faulty")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_service_runs_identical(name, seed):
    _assert_identical(name, seed=seed, mode="service")


def test_delta_feed_matches_arrivals():
    """The delta feed's ``arrived`` stream equals the legacy ``new_txns``
    argument step for step (recorded via a shim scheduler)."""
    from repro.core.base import OnlineScheduler

    class Recorder(OnlineScheduler):
        wants_deltas = True

        def __init__(self):
            super().__init__()
            self.seen = []
            self._horizon = 0

        def on_deltas(self, t, deltas):
            self.seen.append((t, tuple(x.tid for x in deltas.arrived)))
            super().on_deltas(t, deltas)

        def on_step(self, t, new_txns):
            # Serialize with a gap larger than any travel time (diameter
            # 3 at unit speed) so every schedule is trivially feasible.
            for txn in new_txns:
                self._horizon = max(self._horizon, t) + 10
                self.sim.commit_schedule(txn, self._horizon)

    g = _graph()
    wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.3, horizon=8, seed=7)
    rec = Recorder()
    sim = Simulator(g, rec, wl)
    sim.run()
    arrivals = {}
    for t, tids in rec.seen:
        if tids:
            arrivals.setdefault(t, []).extend(tids)
    expected = {}
    for tid, r in sim.trace.txns.items():
        expected.setdefault(r.gen_time, []).append(tid)
    assert {t: sorted(v) for t, v in arrivals.items()} == {
        t: sorted(v) for t, v in expected.items()
    }


def test_dirty_set_shrinks_to_pending():
    """Dirty tids delivered to ``on_deltas`` are always a subset of the
    currently unscheduled pending set (never retired/scheduled noise)."""
    from repro.core.greedy import GreedyScheduler

    class Checker(GreedyScheduler):
        def on_deltas(self, t, deltas):
            pending = set(self.sim.pending._unscheduled)
            assert set(deltas.dirty) <= pending, (t, deltas.dirty, pending)
            super().on_deltas(t, deltas)

    g = _graph()
    wl = OnlineWorkload.bernoulli(g, 6, 2, rate=0.3, horizon=10, seed=3)
    sim = Simulator(g, Checker(), wl)
    sim.run()
    assert sim.trace.txns
